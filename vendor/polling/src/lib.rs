//! Offline shim of the `polling` crate (portable epoll/kqueue readiness),
//! mirroring the 2.x surface this workspace uses: a [`Poller`] holding
//! **oneshot** per-fd interests, [`Event`] with a caller-chosen `key`, a
//! blocking [`Poller::wait`] with an optional timeout, and a thread-safe
//! [`Poller::notify`] that interrupts a concurrent `wait`.
//!
//! Like the other `vendor/` shims this is a from-scratch reimplementation
//! against the documented API, not vendored upstream source; swap the
//! workspace path for a registry version to use the real crate. The
//! workspace has no `libc` dependency, so the OS interface is declared
//! here directly (`std` already links the platform C library; the
//! declarations below resolve against it at link time):
//!
//! * **Linux/Android** — `epoll` with `EPOLLONESHOT`, the kernel ABI
//!   `epoll_event` layout (packed on x86-64 only).
//! * **macOS/iOS/FreeBSD/OpenBSD/DragonFly** — `kqueue` with
//!   `EV_ONESHOT`, the classic BSD `struct kevent` layout.
//! * **any other Unix** — a portable `poll(2)` backend with interests
//!   tracked in user space.
//!
//! Oneshot semantics: a delivered event disarms that fd until the caller
//! re-arms it with [`Poller::modify`]. The internal notification channel
//! (a nonblocking `UnixStream` pair) is invisible to callers — `wait`
//! drains and re-arms it without reporting an event.
//!
//! Non-Unix platforms are not supported by this shim (the workspace's
//! daemons are Unix-only); the real crate supports more.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Key reserved for the internal notifier; user registrations must not
/// use it.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness interest or delivered readiness state for one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back on delivery.
    pub key: usize,
    /// Interest in (or delivery of) read readiness.
    pub readable: bool,
    /// Interest in (or delivery of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// No interest: keeps the source registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Anything registerable with a [`Poller`]: a raw fd or a reference to an
/// fd-backed type.
pub trait Source {
    /// The underlying descriptor.
    fn raw(&self) -> RawFd;
}

impl Source for RawFd {
    fn raw(&self) -> RawFd {
        *self
    }
}

impl<T: AsRawFd> Source for &T {
    fn raw(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// A selector holding oneshot readiness interests.
///
/// All methods take `&self` and are safe to call from any thread; `wait`
/// is intended to be called from one thread at a time.
pub struct Poller {
    backend: sys::Backend,
    /// Write side of the notifier; reading side is registered with the
    /// backend under [`NOTIFY_KEY`].
    notify_tx: UnixStream,
    notify_rx: UnixStream,
}

impl Poller {
    /// Creates a new poller with its notification channel armed.
    ///
    /// # Errors
    ///
    /// Propagates OS failures creating the selector or the notifier pair.
    pub fn new() -> io::Result<Poller> {
        let (notify_tx, notify_rx) = UnixStream::pair()?;
        notify_tx.set_nonblocking(true)?;
        notify_rx.set_nonblocking(true)?;
        let backend = sys::Backend::new()?;
        backend.add(notify_rx.as_raw_fd(), Event::readable(NOTIFY_KEY))?;
        Ok(Poller {
            backend,
            notify_tx,
            notify_rx,
        })
    }

    /// Registers a source with an initial oneshot interest.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the reserved key; OS errors otherwise (e.g. the
    /// fd is already registered).
    pub fn add(&self, source: impl Source, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved by the poller",
            ));
        }
        self.backend.add(source.raw(), interest)
    }

    /// Re-arms (or changes) a registered source's oneshot interest.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the reserved key; OS errors otherwise (e.g. the
    /// fd was never added).
    pub fn modify(&self, source: impl Source, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved by the poller",
            ));
        }
        self.backend.modify(source.raw(), interest)
    }

    /// Deregisters a source.
    ///
    /// # Errors
    ///
    /// OS errors (deleting an unregistered fd is reported by the OS).
    pub fn delete(&self, source: impl Source) -> io::Result<()> {
        self.backend.delete(source.raw())
    }

    /// Blocks until at least one armed source is ready, the timeout
    /// elapses, or [`notify`](Poller::notify) is called; appends delivered
    /// events to `events` and returns how many were appended.
    ///
    /// A delivered event disarms its source until `modify` re-arms it.
    /// `None` blocks indefinitely. Notifications are coalesced and never
    /// surface as events.
    ///
    /// # Errors
    ///
    /// OS failures of the underlying wait call (`EINTR` is retried).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        self.backend.wait(events, timeout)?;
        let mut notified = false;
        events.retain(|ev| {
            if ev.key == NOTIFY_KEY {
                notified = true;
                false
            } else {
                true
            }
        });
        if notified {
            self.drain_notifications()?;
        }
        Ok(events.len() - before)
    }

    /// Wakes a concurrent (or the next) [`wait`](Poller::wait) call.
    /// Multiple notifications before a wait coalesce into one wakeup.
    ///
    /// # Errors
    ///
    /// OS write failures other than a full pipe (which already guarantees
    /// a pending wakeup).
    pub fn notify(&self) -> io::Result<()> {
        use std::io::Write;
        match (&self.notify_tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            // A full buffer means wakeups are already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Empties the notifier and re-arms its oneshot registration.
    fn drain_notifications(&self) -> io::Result<()> {
        use std::io::Read;
        let mut buf = [0u8; 64];
        loop {
            match (&self.notify_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        self.backend
            .modify(self.notify_rx.as_raw_fd(), Event::readable(NOTIFY_KEY))
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

/// Converts an optional timeout to whole milliseconds, rounding up so a
/// sub-millisecond timeout does not spin, with `-1` meaning forever.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && t.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! `epoll` backend. `EPOLLONESHOT` gives the shim's disarm-on-delivery
    //! contract directly; the fd stays registered, so re-arming is one
    //! `EPOLL_CTL_MOD`.

    use super::{timeout_ms, Event};
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;

    /// The kernel ABI for `struct epoll_event`: packed on x86-64 (where the
    /// kernel declares it `__attribute__((packed))` for 32/64-bit compat),
    /// naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn last_os_error_if(failed: bool) -> io::Result<()> {
        if failed {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn mask(interest: Event) -> u32 {
        let mut events = EPOLLONESHOT;
        if interest.readable {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    pub(super) struct Backend {
        epfd: RawFd,
    }

    // SAFETY: the epoll fd is a kernel object; every syscall on it is
    // thread-safe.
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall, no pointer arguments.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            last_os_error_if(epfd < 0)?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            // DEL ignores the event argument on modern kernels but must
            // still receive a valid pointer on pre-2.6.9 ones.
            let mut ev = EpollEvent {
                events: interest.map(mask).unwrap_or(0),
                data: interest.map(|i| i.key as u64).unwrap_or(0),
            };
            // SAFETY: `ev` outlives the call and matches the kernel ABI
            // layout declared above.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            last_os_error_if(rc < 0)
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            loop {
                // SAFETY: `buf` is valid for `buf.len()` entries and the
                // kernel writes at most `maxevents` of them.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for ev in &buf[..n as usize] {
                    let bits = ev.events;
                    let hangup = bits & (EPOLLERR | EPOLLHUP) != 0;
                    out.push(Event {
                        key: ev.data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP) != 0 || hangup,
                        writable: bits & EPOLLOUT != 0 || hangup,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: the fd was returned by epoll_create1 and is closed
            // exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod sys {
    //! `kqueue` backend. Read and write interests are separate filters;
    //! `EV_ONESHOT` deletes a filter on delivery, so re-arming re-adds it.

    use super::Event;
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_ONESHOT: u16 = 0x0010;
    const EV_EOF: u16 = 0x8000;

    /// Classic BSD `struct kevent` layout (macOS, FreeBSD, OpenBSD,
    /// DragonFly; NetBSD's differs and takes the `poll` backend instead).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(super) struct Backend {
        kq: RawFd,
        /// Keys by fd, so delivered events can be labeled (kqueue's udata
        /// would also work, but a side table keeps the unsafe surface to
        /// the syscalls themselves).
        keys: std::sync::Mutex<std::collections::HashMap<RawFd, usize>>,
    }

    // SAFETY: the kqueue fd is a kernel object; syscalls on it are
    // thread-safe, and the key table is behind a mutex.
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall, no pointer arguments.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend {
                kq,
                keys: std::sync::Mutex::new(std::collections::HashMap::new()),
            })
        }

        fn apply(&self, changes: &[KEvent]) -> io::Result<()> {
            // SAFETY: `changes` is a valid slice; no eventlist is passed.
            let rc = unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as c_int,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // Deleting an already-fired oneshot filter is routine.
                if err.raw_os_error() != Some(2) {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn arm(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.keys
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fd, interest.key);
            let mut changes = Vec::with_capacity(2);
            for (filter, wanted) in [
                (EVFILT_READ, interest.readable),
                (EVFILT_WRITE, interest.writable),
            ] {
                changes.push(KEvent {
                    ident: fd as usize,
                    filter,
                    flags: if wanted {
                        EV_ADD | EV_ONESHOT
                    } else {
                        EV_DELETE
                    },
                    fflags: 0,
                    data: 0,
                    udata: std::ptr::null_mut(),
                });
            }
            for change in changes {
                self.apply(std::slice::from_ref(&change))?;
            }
            Ok(())
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.arm(fd, interest)
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.arm(fd, interest)
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.keys
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&fd);
            for filter in [EVFILT_READ, EVFILT_WRITE] {
                self.apply(&[KEvent {
                    ident: fd as usize,
                    filter,
                    flags: EV_DELETE,
                    fflags: 0,
                    data: 0,
                    udata: std::ptr::null_mut(),
                }])?;
            }
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let ts = timeout.map(|t| Timespec {
                tv_sec: t.as_secs() as isize,
                tv_nsec: t.subsec_nanos() as isize,
            });
            let mut buf = [KEvent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            }; 256];
            loop {
                // SAFETY: `buf` is valid for `buf.len()` entries; `ts`
                // outlives the call when present.
                let n = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        ts.as_ref().map_or(std::ptr::null(), |t| t as *const _),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                let keys = self.keys.lock().unwrap_or_else(|e| e.into_inner());
                for ev in &buf[..n as usize] {
                    let Some(&key) = keys.get(&(ev.ident as RawFd)) else {
                        continue;
                    };
                    let eof = ev.flags & EV_EOF != 0;
                    out.push(Event {
                        key,
                        readable: ev.filter == EVFILT_READ || eof,
                        writable: ev.filter == EVFILT_WRITE || eof,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: the fd was returned by kqueue and is closed once.
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(all(
    unix,
    not(any(
        target_os = "linux",
        target_os = "android",
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))
))]
mod sys {
    //! Portable `poll(2)` backend for Unixes without an epoll/kqueue
    //! binding above. Interests live in a user-space table; oneshot
    //! semantics are emulated by clearing delivered interest bits.

    use super::{timeout_ms, Event};
    use std::collections::HashMap;
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    pub(super) struct Backend {
        table: Mutex<HashMap<RawFd, Event>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Ok(Backend {
                table: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.table
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fd, interest);
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.add(fd, interest)
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.table
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<(PollFd, usize)> = {
                let table = self.table.lock().unwrap_or_else(|e| e.into_inner());
                table
                    .iter()
                    .map(|(&fd, ev)| {
                        let mut bits = 0i16;
                        if ev.readable {
                            bits |= POLLIN;
                        }
                        if ev.writable {
                            bits |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd,
                                events: bits,
                                revents: 0,
                            },
                            ev.key,
                        )
                    })
                    .collect()
            };
            let mut raw: Vec<PollFd> = fds.iter().map(|(p, _)| *p).collect();
            loop {
                // SAFETY: `raw` is a valid slice of PollFd for its length.
                let rc = unsafe { poll(raw.as_mut_ptr(), raw.len(), timeout_ms(timeout)) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                break;
            }
            let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
            for (raw_fd, (_, key)) in raw.iter().zip(fds.drain(..)) {
                let bits = raw_fd.revents;
                if bits == 0 {
                    continue;
                }
                let hangup = bits & (POLLERR | POLLHUP) != 0;
                let delivered = Event {
                    key,
                    readable: bits & POLLIN != 0 || hangup,
                    writable: bits & POLLOUT != 0 || hangup,
                };
                out.push(delivered);
                // Oneshot: clear the delivered interest bits.
                if let Some(ev) = table.get_mut(&raw_fd.fd) {
                    if delivered.readable {
                        ev.readable = false;
                    }
                    if delivered.writable {
                        ev.writable = false;
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn notify_interrupts_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let remote = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notifications are not surfaced as events");
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn oneshot_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Oneshot: without re-arming, further readiness is not delivered.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "fd must be disarmed after delivery");

        // Re-arm and observe the still-pending data again.
        poller.modify(&server, Event::readable(7)).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");
        poller.delete(&server).unwrap();
    }

    #[test]
    fn write_readiness_and_disarm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // A fresh socket is immediately writable.
        poller.add(&client, Event::writable(3)).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);

        // Interest `none` keeps it registered but silent.
        poller.modify(&client, Event::none(3)).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn reserved_key_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        let err = poller
            .add(&listener, Event::readable(usize::MAX))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
