//! Offline shim of the `bytes` API surface this workspace uses.
//!
//! [`BytesMut`] is a growable buffer filled through [`BufMut`] put-calls and
//! frozen into an immutable, cheaply clonable [`Bytes`]. Unlike upstream
//! there is no refcounted zero-copy splitting — the HBM channel model only
//! builds beat-sized buffers and reads them back.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (shim of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v.into())
    }
}

/// A mutable, growable byte buffer (shim of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.buf.into())
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a byte buffer (shim of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn build_freeze_read_back() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u64_le(u64::MAX);
        assert_eq!(buf.len(), 16);
        let bytes = buf.freeze();
        assert_eq!(&bytes[..8], &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            u64::MAX
        );
        let alias = bytes.clone();
        assert_eq!(alias.len(), 16);
        assert_eq!(&*alias, &*bytes);
    }

    #[test]
    fn empty_and_from_vec() {
        assert!(BytesMut::with_capacity(0).is_empty());
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert!(!b.is_empty());
    }
}
