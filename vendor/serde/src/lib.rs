//! Offline shim of the serde trait facade.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the minimal `serde` surface the workspace compiles against:
//! `Serialize`/`Deserialize` as *marker* traits plus the derive macros. The
//! workspace deliberately ships no serde format crate, so nothing ever calls
//! a serializer — the traits only assert that the public data structures are
//! plain data a real serde could handle (C-SERDE). Swapping this shim for
//! the real `serde` is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

/// Marker for types whose data can be serialized (shim of `serde::Serialize`).
pub trait Serialize {}

/// Marker for types whose data can be deserialized for lifetime `'de`
/// (shim of `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {}

/// Deserializer-side traits (shim of `serde::de`).
pub mod de {
    /// Types deserializable without borrowing from the input
    /// (shim of `serde::de::DeserializeOwned`).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
extern crate self as serde; // lets the derive's `::serde::` paths resolve in our own tests

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        _a: u32,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Either {
        _Left(f64),
        _Right { _b: Vec<u8> },
    }

    fn assert_serde<T: super::Serialize + super::de::DeserializeOwned>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_serde::<Plain>();
        assert_serde::<Either>();
    }
}
