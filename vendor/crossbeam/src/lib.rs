//! Offline shim of the `crossbeam` APIs this workspace uses.
//!
//! Scoped threads are backed by `std::thread::scope` (stable since 1.63),
//! which provides the same borrow-stack-data guarantee crossbeam's scoped
//! threads pioneered. The [`channel`] module shims
//! `crossbeam::channel::bounded` — a blocking bounded MPMC queue — on a
//! `Mutex<VecDeque>` plus two condvars. Only the surface the workspace
//! actually calls is provided: `crossbeam::scope` / `Scope::spawn` for the
//! parallel SpMV baselines and window planner, and the bounded channel for
//! the `chason-serve` worker pool (including one documented extension,
//! [`channel::Receiver::try_recv_if`], used for same-matrix request
//! batching).

#![deny(unsafe_code)]

pub use thread::scope;

/// Bounded MPMC channels (shim of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Under `model-check` the queue's synchronization is the instrumented
    // chason-race primitives: the deterministic scheduler owns every
    // acquire/release/wait/notify and explores interleavings. The types are
    // API-compatible with std (chason-race's `WaitTimeoutResult` mirrors
    // std's, which has no public constructor), and they pass through to
    // plain std whenever no model execution is active, so behavior outside
    // `cargo xtask race` is identical. Normal builds compile the std types
    // directly — zero overhead, nothing to opt out of at runtime.
    #[cfg(feature = "model-check")]
    use chason_race::sync::{Condvar, Mutex, MutexGuard};
    #[cfg(not(feature = "model-check"))]
    use std::sync::{Condvar, Mutex, MutexGuard};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error for [`Sender::try_send`]: the value is handed back.
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full queue (backpressure) rather than
        /// a disconnect.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Error for [`Sender::send`]: every receiver was dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error for [`Receiver::recv`]: the queue is empty and every sender
    /// was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// The queue is empty and every sender was dropped.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// The queue is empty and every sender was dropped.
        Disconnected,
    }

    /// The producer half of a bounded channel. Cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The consumer half of a bounded channel. Cloneable.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a bounded MPMC channel with room for `capacity` queued
    /// values (`capacity` is clamped to at least 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[allow(clippy::expect_used)] // a poisoned queue mutex means a consumer
                                  // panicked while holding it; every API here would misbehave silently, so
                                  // propagating the panic is the only sound option.
    fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, Inner<T>> {
        shared.inner.lock().expect("channel mutex poisoned")
    }

    impl<T> Sender<T> {
        /// Enqueues without blocking; fails with [`TrySendError::Full`]
        /// when the queue is at capacity (the load-shedding signal).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.0);
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues, blocking while the queue is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.0);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                #[allow(clippy::expect_used)] // see `lock`
                {
                    inner = self.0.not_full.wait(inner).expect("channel mutex poisoned");
                }
            }
        }

        /// Queued values right now (racy; for metrics only).
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// Whether the queue is empty right now (racy; for metrics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues, blocking until a value arrives or every sender is
        /// dropped and the queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.0);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                #[allow(clippy::expect_used)] // see `lock`
                {
                    inner = self
                        .0
                        .not_empty
                        .wait(inner)
                        .expect("channel mutex poisoned");
                }
            }
        }

        /// [`recv`](Self::recv) bounded by a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.0);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                #[allow(clippy::expect_used)] // see `lock`
                {
                    let (guard, result) = self
                        .0
                        .not_empty
                        .wait_timeout(inner, deadline - now)
                        .expect("channel mutex poisoned");
                    inner = guard;
                    if result.timed_out() && inner.queue.is_empty() {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.0);
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeues the front value only if `pred` accepts it; otherwise
        /// leaves the queue untouched.
        ///
        /// **Local extension** (not in upstream crossbeam): `chason-serve`
        /// workers use it to opportunistically batch queued SpMV requests
        /// that target the matrix they already resolved, without stealing
        /// unrelated work out of FIFO order.
        pub fn try_recv_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
            let mut inner = lock(&self.0);
            if inner.queue.front().is_some_and(pred) {
                let v = inner.queue.pop_front();
                drop(inner);
                self.0.not_full.notify_one();
                v
            } else {
                None
            }
        }

        /// Queued values right now (racy; for metrics only).
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// Whether the queue is empty right now (racy; for metrics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = lock(&self.0);
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = lock(&self.0);
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

/// Scoped threads (shim of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of [`scope`]: `Err` carries the payload of the first
    /// panicking child thread, matching crossbeam's contract.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning threads that may borrow from the enclosing
    /// stack frame (shim of `crossbeam::thread::Scope`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined before [`scope`] returns.
        pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before this
    /// returns. Returns `Err` if `f` or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom")).join().unwrap();
        });
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert!(matches!(err, TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = bounded(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn try_recv_if_only_takes_matching_front() {
        let (tx, rx) = bounded(4);
        tx.try_send(10).unwrap();
        tx.try_send(11).unwrap();
        assert_eq!(rx.try_recv_if(|&v| v == 99), None);
        assert_eq!(rx.len(), 2, "non-matching front is left in place");
        assert_eq!(rx.try_recv_if(|&v| v == 10), Some(10));
        assert_eq!(rx.try_recv_if(|&v| v == 11), Some(11));
        assert_eq!(rx.try_recv_if(|_| true), None, "empty queue yields None");
    }

    #[test]
    fn send_blocks_until_room_and_mpmc_sums() {
        let (tx, rx) = bounded(1);
        let total: u64 = super::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for producer in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..25u64 {
                        tx.send(producer * 100 + i).unwrap();
                    }
                });
            }
            drop(tx); // let consumers disconnect once producers finish
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        let expected: u64 = (0..4u64)
            .flat_map(|p| (0..25u64).map(move |i| p * 100 + i))
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn recv_blocked_then_sender_drop_disconnects() {
        // The receiver is (very likely) parked in `recv` when the last
        // sender drops; the disconnect notify must wake it with an error
        // rather than leaving it blocked forever.
        let (tx, rx) = bounded::<u32>(1);
        let joined = super::scope(|s| {
            let h = s.spawn(move |_| rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            h.join().unwrap()
        })
        .unwrap();
        assert!(joined.is_err(), "blocked recv must observe the disconnect");
    }

    #[test]
    fn send_blocked_then_receiver_drop_errors() {
        // Mirror case: a sender parked on a full queue must be woken by the
        // last receiver dropping and hand the value back via SendError.
        let (tx, rx) = bounded(1);
        tx.try_send(0u32).unwrap();
        let joined = super::scope(|s| {
            let h = s.spawn(move |_| tx.send(1));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            h.join().unwrap()
        })
        .unwrap();
        assert!(joined.is_err(), "blocked send must observe the disconnect");
    }

    #[test]
    fn recv_timeout_blocked_then_disconnect_reports_disconnected() {
        // A waiter inside `recv_timeout` that is woken by sender-drop (not
        // by the deadline) must report Disconnected, not Timeout.
        let (tx, rx) = bounded::<u32>(1);
        let joined = super::scope(|s| {
            let h = s.spawn(move |_| rx.recv_timeout(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(joined.unwrap_err(), RecvTimeoutError::Disconnected);
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(
            tx.try_send(2).unwrap_err(),
            TrySendError::Disconnected(2)
        ));
        assert_eq!(TrySendError::Disconnected(5).into_inner(), 5);
    }
}
