//! Offline shim of the `crossbeam` scoped-thread API this workspace uses.
//!
//! Backed by `std::thread::scope` (stable since 1.63), which provides the
//! same borrow-stack-data guarantee crossbeam's scoped threads pioneered.
//! Only `crossbeam::scope` / `Scope::spawn` are provided — the surface the
//! workspace's parallel SpMV baselines and window planner actually call.

#![deny(unsafe_code)]

pub use thread::scope;

/// Scoped threads (shim of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of [`scope`]: `Err` carries the payload of the first
    /// panicking child thread, matching crossbeam's contract.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning threads that may borrow from the enclosing
    /// stack frame (shim of `crossbeam::thread::Scope`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined before [`scope`] returns.
        pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before this
    /// returns. Returns `Err` if `f` or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom")).join().unwrap();
        });
        assert!(result.is_err());
    }
}
