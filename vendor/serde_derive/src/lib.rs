//! Offline shim of `serde_derive`.
//!
//! The workspace deliberately carries no serde *format* crate: types only
//! need to *implement* the `Serialize`/`Deserialize` marker traits of the
//! vendored `serde` facade so downstream users can plug in a real serde at
//! integration time. The derives therefore emit empty marker impls. No
//! `syn`/`quote` dependency: the input item header is parsed by hand.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts the type name and raw generic parameter tokens from a
/// `struct`/`enum`/`union` item.
fn parse_item(input: TokenStream) -> (String, Vec<TokenTree>) {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            // Skip outer attributes: `#` followed by a bracketed group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "pub" {
                    // Skip a possible `pub(...)` restriction.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                } else if matches!(word.as_str(), "struct" | "enum" | "union") {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde shim: expected a type name, found {other:?}"),
                    };
                    let mut generics = Vec::new();
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            let mut depth = 0usize;
                            for tt in iter.by_ref() {
                                if let TokenTree::Punct(ref q) = tt {
                                    match q.as_char() {
                                        '<' => depth += 1,
                                        '>' => depth -= 1,
                                        _ => {}
                                    }
                                }
                                generics.push(tt);
                                if depth == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    return (name, generics);
                }
            }
            Some(_) => {}
            None => panic!("serde shim: no struct/enum item found in derive input"),
        }
    }
}

/// Splits the raw generic tokens into parameter names (`'a`, `T`, ...)
/// without bounds or defaults. Only simple parameter lists are supported —
/// enough for this workspace, which derives serde on non-generic types.
fn generic_params(generics: &[TokenTree]) -> Vec<String> {
    // Drop the surrounding `<` `>`.
    let inner = &generics[1..generics.len().saturating_sub(1)];
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut expect_param = true;
    let mut pending_lifetime = false;
    for tt in inner {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => expect_param = true,
                '\'' if depth == 0 && expect_param => pending_lifetime = true,
                ':' if depth == 0 => expect_param = false,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && expect_param => {
                if pending_lifetime {
                    params.push(format!("'{id}"));
                    pending_lifetime = false;
                } else if id.to_string() != "const" {
                    params.push(id.to_string());
                }
                expect_param = false;
            }
            _ => {}
        }
    }
    params
}

fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let (name, generics) = parse_item(input);
    let params = if generics.is_empty() {
        Vec::new()
    } else {
        generic_params(&generics)
    };
    let ty_args = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let code = if deserialize {
        let mut impl_params = vec!["'de".to_string()];
        impl_params.extend(params.iter().cloned());
        format!(
            "impl<{}> ::serde::Deserialize<'de> for {name}{ty_args} {{}}",
            impl_params.join(", ")
        )
    } else if params.is_empty() {
        format!("impl ::serde::Serialize for {name} {{}}")
    } else {
        format!(
            "impl<{}> ::serde::Serialize for {name}{ty_args} {{}}",
            params.join(", ")
        )
    };
    code.parse().expect("serde shim: generated impl parses")
}

/// Derives the `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

/// Derives the `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}
