//! Offline shim of the `criterion` benchmark API this workspace uses.
//!
//! Benchmarks compile and run with the same source as under real criterion,
//! but measurement is deliberately lightweight: each benchmark warms up
//! once, then times a short batch of iterations and prints mean time plus
//! derived throughput. When invoked with `--test` (as `cargo test` does for
//! `harness = false` targets) every routine runs exactly one iteration so
//! the suite stays fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration of a benchmark processes; used to report
/// throughput next to mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark name, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Names a benchmark `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    test_mode: bool,
    measured: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean execution time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up; also the only run in test mode
        if self.test_mode {
            self.measured = Duration::ZERO;
            self.iters = 1;
            return;
        }
        let mut iters = 0u64;
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 1000 {
                break;
            }
        }
        self.measured = start.elapsed();
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for source compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut routine: R,
    ) {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            measured: Duration::ZERO,
            iters: 1,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
    }

    /// Benchmarks `routine` against a borrowed `input` under `id`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode, 1 iter)", self.name, id);
            return;
        }
        let mean = bencher.measured.as_secs_f64() / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter ({} iters){}",
            self.name,
            id,
            mean * 1e3,
            bencher.iters,
            rate
        );
    }
}

/// The benchmark harness entry point (shim of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`;
        // libtest-style flags such as `--bench` can also appear.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Declares a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        let mut runs = 0;
        group.bench_function("counted", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 7), &21, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(runs, 1, "test mode runs each routine exactly once");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
