//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Implements randomized property testing without shrinking: the
//! [`proptest!`] macro runs each property over `ProptestConfig::cases`
//! deterministic seeds, binding each `pat in strategy` argument from the
//! [`strategy::Strategy`] combinators (ranges, tuples, `any`, mapped /
//! flat-mapped / filtered strategies, and `collection::vec`). A failing
//! case panics with the standard assertion message; seeds are fixed per
//! case index, so failures reproduce exactly.
//!
//! Determinism controls (all optional):
//!
//! * `PROPTEST_CASES=N` overrides every property's declared case count —
//!   CI pins it so each push tests the same budget.
//! * `PROPTEST_SEED=S` (decimal or `0x…`) overrides the base seed case
//!   seeds are derived from.
//! * On failure the runner prints the failing case's seed and the exact
//!   `PROPTEST_SEED=… PROPTEST_CASES=1` invocation that replays it (the
//!   shim does not shrink, so the seed is the regression artifact).

#![forbid(unsafe_code)]

// Re-exported for macro expansions in downstream crates.
#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration (shim of `proptest::test_runner`).
pub mod test_runner {
    /// The RNG driving value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// The default base seed mixed into every per-case seed (`"prop"`).
    pub const DEFAULT_BASE_SEED: u64 = 0x7072_6f70;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The case count to run: `PROPTEST_CASES` when set (decimal), else the
    /// count the property declared. Lets CI pin a uniform budget and lets a
    /// developer replay one case with `PROPTEST_CASES=1`.
    pub fn cases_from_env(declared: u32) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.trim().parse().unwrap_or(declared),
            Err(_) => declared,
        }
    }

    /// The base seed: `PROPTEST_SEED` when set (decimal or `0x…` hex), else
    /// [`DEFAULT_BASE_SEED`]. Case `i` runs with
    /// `base ^ (i * 0x9e37_79b9_7f4a_7c15)`, so with `PROPTEST_CASES=1` the
    /// base seed *is* the seed of the single case — exactly the value a
    /// failure report prints.
    pub fn base_seed_from_env() -> u64 {
        let parse = |v: &str| {
            let v = v.trim();
            match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        };
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| parse(&v))
            .unwrap_or(DEFAULT_BASE_SEED)
    }

    /// The seed of case `case` under `base` — the value to export as
    /// `PROPTEST_SEED` (with `PROPTEST_CASES=1`) to replay that case alone.
    pub fn case_seed(base: u64, case: u32) -> u64 {
        base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Runs one property case, printing a reproduction line naming the
    /// failing seed before propagating any panic. The shim has no input
    /// shrinking, so the seed *is* the regression artifact: rerunning with
    /// `PROPTEST_SEED=<seed> PROPTEST_CASES=1` regenerates the same inputs.
    pub fn run_case<F: FnOnce(&mut TestRng)>(property: &str, case: u32, seed: u64, body: F) {
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest: property `{property}` failed at case {case} (seed {seed:#018x}); \
                 reproduce with PROPTEST_SEED={seed:#x} PROPTEST_CASES=1"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Value-generation strategies (shim of `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Rejects generated values failing `f`, retrying with fresh draws.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..10_000 {
                let v = self.base.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// A strategy producing `value` every time (shim of `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support (shim of `proptest::arbitrary`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.gen::<u32>())
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.gen::<u64>())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::cases_from_env(config.cases);
            let base = $crate::test_runner::base_seed_from_env();
            for case in 0..cases {
                let seed = $crate::test_runner::case_seed(base, case);
                $crate::test_runner::run_case(stringify!($name), case, seed, |rng| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                    $body
                });
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 1usize..10, (b, c) in (0i32..5, -1.0f32..1.0)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&c));
        }

        #[test]
        fn combinators(
            v in crate::collection::vec(0usize..100, 0..=10),
            even in (0u32..1000).prop_map(|x| x * 2),
            nz in any::<u32>().prop_filter("nonzero", |x| *x != 0),
            w in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n)),
        ) {
            prop_assert!(v.len() <= 10);
            prop_assert_eq!(even % 2, 0);
            prop_assert_ne!(nz, 0);
            prop_assert!(!w.is_empty() && w.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn case_zero_seed_is_the_base_seed() {
        // With PROPTEST_CASES=1, exporting PROPTEST_SEED=<failing seed>
        // replays exactly the failing case: case 0 mixes nothing in.
        assert_eq!(crate::test_runner::case_seed(0xdead_beef, 0), 0xdead_beef);
        assert_ne!(
            crate::test_runner::case_seed(0xdead_beef, 1),
            crate::test_runner::case_seed(0xdead_beef, 2)
        );
    }

    #[test]
    fn env_fallbacks_use_declared_values() {
        // The test environment does not set the variables; the declared
        // values must win. (Positive parses are covered by CI, which pins
        // both variables for every test job.)
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::test_runner::cases_from_env(17), 17);
        }
        if std::env::var("PROPTEST_SEED").is_err() {
            assert_eq!(
                crate::test_runner::base_seed_from_env(),
                crate::test_runner::DEFAULT_BASE_SEED
            );
        }
    }

    #[test]
    fn failing_case_reports_seed_and_propagates() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_case("demo", 3, 42, |_rng| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
