//! Offline shim of the `rand` 0.8 API surface this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — fast,
//! high-quality, and deterministic per seed), the [`Rng`]/[`SeedableRng`]
//! traits, `gen::<T>()`, `gen_bool`, and `gen_range` over integer and float
//! ranges. Determinism per seed is the property the workspace's synthetic
//! dataset generators rely on; the exact stream differs from upstream
//! `rand`, which no test depends on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words (shim of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`] (shim of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples a value of `T` from its full/standard distribution
    /// (uniform bits for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Distribution of "a plain random value" for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let f: $t = Standard::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let f: $t = Standard::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete RNG implementations (shim of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_values_cover_the_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 8 values should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }
}
