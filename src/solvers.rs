//! Iterative solvers over a pluggable SpMV backend.
//!
//! SpMV is rarely the end product: the paper's motivating applications
//! (§1 — scientific computing, optimization, graph problems) wrap it in an
//! iterative loop. This module provides that loop layer: a [`SpmvBackend`]
//! abstraction implemented by the CPU reference and by both simulated
//! accelerators, and three classic solvers built on it. Backends report
//! simulated time, so a whole solve can be costed on accelerator terms.
//!
//! # Example
//!
//! ```
//! use chason::solvers::{conjugate_gradient, CgOptions, CpuBackend};
//! use chason::sparse::CooMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny SPD system: A = [[4,1],[1,3]], b = [1, 2].
//! let a = CooMatrix::from_triplets(2, 2, vec![(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])?;
//! let mut backend = CpuBackend::default();
//! let result = conjugate_gradient(&mut backend, &a, &[1.0, 2.0], CgOptions::default())?;
//! assert!(result.converged);
//! assert!((result.solution[0] - 0.0909).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

use chason_core::cache::{CacheStats, LruCache};
use chason_core::plan::{PlanKey, SpmvPlan};
use chason_sim::{ChasonEngine, PlanningEngine, SerpensEngine, SimError};
use chason_sparse::{CooMatrix, CsrMatrix};
use chason_telemetry::trace::SpanEvent;

/// Timestamp for the next solver-iteration span (0 when telemetry is
/// compiled out, so disabled builds never touch the clock).
fn iteration_start() -> u64 {
    if chason_telemetry::enabled() {
        chason_telemetry::global().clock().now()
    } else {
        0
    }
}

/// Emits one `solver.iteration` span (DESIGN.md §10) into the
/// process-global flight recorder and bumps `solver_iterations_total`.
fn record_iteration(solver: &'static str, iteration: usize, residual: f64, start: u64) {
    if !chason_telemetry::enabled() {
        return;
    }
    let telemetry = chason_telemetry::global();
    telemetry
        .registry()
        .counter("solver_iterations_total")
        .add(1);
    telemetry.recorder().record(
        SpanEvent::new("solver.iteration", start, telemetry.clock().now())
            .attr("solver", solver)
            .attr("iteration", iteration)
            .attr("residual", residual),
    );
}

/// Anything that can compute `y = A·x` and account for the time it took.
///
/// The matrix is passed per call so one backend instance can serve many
/// systems; engine backends cache the schedule plan per (matrix,
/// configuration) key, so preprocessing is paid once per distinct system no
/// matter how many iterations consume it — the hardware analogue is
/// streaming the same preprocessed data lists from HBM every iteration.
pub trait SpmvBackend {
    /// Computes `y = A·x`.
    ///
    /// # Errors
    ///
    /// Backend-specific failures (dimension mismatches, capacity limits).
    fn spmv(&mut self, matrix: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SimError>;

    /// Simulated (or measured) time accumulated across all `spmv` calls,
    /// in seconds.
    fn elapsed_seconds(&self) -> f64;

    /// Backend name for reports.
    fn name(&self) -> &'static str;
}

/// CPU reference backend (serial CSR); wall-clock timed.
#[derive(Debug, Default)]
pub struct CpuBackend {
    elapsed: f64,
}

impl SpmvBackend for CpuBackend {
    fn spmv(&mut self, matrix: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SimError> {
        let start = std::time::Instant::now();
        let y = CsrMatrix::from(matrix).spmv(x);
        self.elapsed += start.elapsed().as_secs_f64();
        Ok(y)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    fn name(&self) -> &'static str {
        "cpu-reference"
    }
}

/// Default bound on an [`EngineBackend`]'s plan cache: far more systems
/// than one solver run touches, small enough that a long-lived process
/// cannot grow without limit.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Simulated-accelerator backend; accumulates the engine's modeled latency.
///
/// Each distinct (matrix, scheduler configuration) pair is scheduled into
/// an [`SpmvPlan`] once and every subsequent `spmv` call replays the
/// cached plan, so an iterative solve pays one scheduling pass regardless
/// of iteration count; [`schedules_built`](Self::schedules_built) exposes
/// the pass counter. Plans live in a bounded
/// [`LruCache`] ([`DEFAULT_PLAN_CACHE_CAPACITY`] entries unless
/// [`with_plan_capacity`](Self::with_plan_capacity) overrides it), so a
/// long-lived process cycling through many systems re-schedules evicted
/// ones instead of growing without bound;
/// [`plan_cache_stats`](Self::plan_cache_stats) exposes hit/miss/eviction
/// counters.
#[derive(Debug)]
pub struct EngineBackend<E> {
    engine: E,
    elapsed: f64,
    name: &'static str,
    plans: LruCache<PlanKey, SpmvPlan>,
    schedules_built: u64,
}

impl EngineBackend<ChasonEngine> {
    /// Wraps a Chasoň engine.
    pub fn chason(engine: ChasonEngine) -> Self {
        EngineBackend::wrap(engine, "chason")
    }
}

impl EngineBackend<SerpensEngine> {
    /// Wraps a Serpens engine.
    pub fn serpens(engine: SerpensEngine) -> Self {
        EngineBackend::wrap(engine, "serpens")
    }
}

impl<E> EngineBackend<E> {
    fn wrap(engine: E, name: &'static str) -> Self {
        EngineBackend {
            engine,
            elapsed: 0.0,
            name,
            plans: LruCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            schedules_built: 0,
        }
    }

    /// Rebounds the plan cache to hold at most `capacity` plans (existing
    /// entries are dropped).
    pub fn with_plan_capacity(mut self, capacity: usize) -> Self {
        self.plans = LruCache::new(capacity);
        self
    }

    /// How many scheduling passes the backend has run: one per distinct
    /// (matrix, configuration) it has been asked to multiply with, plus
    /// one per re-schedule of an evicted plan.
    pub fn schedules_built(&self) -> u64 {
        self.schedules_built
    }

    /// Number of schedule plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Hit/miss/eviction counters of the plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Drops every cached plan (e.g. between unrelated workloads).
    pub fn clear_plan_cache(&mut self) {
        self.plans.clear();
    }
}

impl<E: PlanningEngine> SpmvBackend for EngineBackend<E> {
    fn spmv(&mut self, matrix: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SimError> {
        let key = self.engine.plan_key(matrix);
        if self.plans.get(&key).is_none() {
            let plan = self.engine.plan(matrix)?;
            self.schedules_built += 1;
            self.plans.insert(key, plan);
        }
        #[allow(clippy::expect_used)] // inserted above on miss
        let plan = self.plans.peek(&key).expect("plan resident after insert");
        let exec = self.engine.run_planned(plan, x)?;
        self.elapsed += exec.latency_seconds();
        Ok(exec.y)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Relative residual (‖r‖/‖b‖) considered converged.
    pub tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: 500,
            tolerance: 1e-6,
        }
    }
}

/// Result of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The final iterate.
    pub solution: Vec<f32>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Simulated/measured SpMV time accumulated by the backend, in seconds.
    pub spmv_seconds: f64,
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn norm(v: &[f32]) -> f64 {
    dot(v, v).sqrt()
}

/// Conjugate gradient for symmetric positive-definite `A`, with every
/// `A·p` product routed through `backend`.
///
/// # Errors
///
/// Propagates backend failures. The caller is responsible for `A` being
/// square and SPD; `b.len()` must equal the system size.
///
/// # Panics
///
/// Panics if `matrix` is not square or `b` has the wrong length.
pub fn conjugate_gradient(
    backend: &mut (impl SpmvBackend + ?Sized),
    matrix: &CooMatrix,
    b: &[f32],
    options: CgOptions,
) -> Result<SolveResult, SimError> {
    assert_eq!(matrix.rows(), matrix.cols(), "CG requires a square system");
    assert_eq!(b.len(), matrix.rows(), "right-hand side length mismatch");
    let n = b.len();
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let mut iterations = 0usize;
    let mut residual = rs_old.sqrt() / b_norm;
    while iterations < options.max_iterations && residual > options.tolerance {
        let span_start = iteration_start();
        let ap = backend.spmv(matrix, &p)?;
        let denom = dot(&p, &ap);
        if denom.abs() < f64::MIN_POSITIVE {
            break; // breakdown (A not SPD or p exhausted)
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += (alpha * p[i] as f64) as f32;
            r[i] -= (alpha * ap[i] as f64) as f32;
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + (beta * p[i] as f64) as f32;
        }
        rs_old = rs_new;
        residual = rs_new.sqrt() / b_norm;
        iterations += 1;
        record_iteration("cg", iterations, residual, span_start);
    }
    Ok(SolveResult {
        solution: x,
        iterations,
        residual,
        converged: residual <= options.tolerance,
        spmv_seconds: backend.elapsed_seconds(),
    })
}

/// Jacobi iteration for diagonally dominant `A`, with `A·x` routed through
/// `backend`.
///
/// # Errors
///
/// Propagates backend failures.
///
/// # Panics
///
/// Panics if `matrix` is not square, `b` has the wrong length, or any
/// diagonal entry is missing/zero.
pub fn jacobi(
    backend: &mut (impl SpmvBackend + ?Sized),
    matrix: &CooMatrix,
    b: &[f32],
    options: CgOptions,
) -> Result<SolveResult, SimError> {
    assert_eq!(
        matrix.rows(),
        matrix.cols(),
        "Jacobi requires a square system"
    );
    assert_eq!(b.len(), matrix.rows(), "right-hand side length mismatch");
    let n = b.len();
    let mut diag = vec![0.0f32; n];
    for &(r, c, v) in matrix.iter() {
        if r == c {
            diag[r] = v;
        }
    }
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "Jacobi requires a non-zero diagonal"
    );
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0f32; n];
    let mut iterations = 0usize;
    let mut residual = 1.0f64;
    while iterations < options.max_iterations && residual > options.tolerance {
        let span_start = iteration_start();
        let ax = backend.spmv(matrix, &x)?;
        let mut rr = 0.0f64;
        for i in 0..n {
            let r = b[i] - ax[i];
            rr += r as f64 * r as f64;
            x[i] += r / diag[i];
        }
        residual = rr.sqrt() / b_norm;
        iterations += 1;
        record_iteration("jacobi", iterations, residual, span_start);
    }
    Ok(SolveResult {
        solution: x,
        iterations,
        residual,
        converged: residual <= options.tolerance,
        spmv_seconds: backend.elapsed_seconds(),
    })
}

/// Power iteration: the dominant eigenvalue/eigenvector of `A`, with `A·v`
/// routed through `backend`. Returns `(eigenvalue, SolveResult)` where the
/// result's `solution` is the unit eigenvector and `residual` is the
/// iterate delta at termination.
///
/// # Errors
///
/// Propagates backend failures.
///
/// # Panics
///
/// Panics if `matrix` is not square or has zero size.
pub fn power_iteration(
    backend: &mut (impl SpmvBackend + ?Sized),
    matrix: &CooMatrix,
    options: CgOptions,
) -> Result<(f64, SolveResult), SimError> {
    assert_eq!(
        matrix.rows(),
        matrix.cols(),
        "power iteration requires a square matrix"
    );
    assert!(matrix.rows() > 0, "empty matrix");
    let n = matrix.rows();
    let mut v = vec![1.0f32 / (n as f32).sqrt(); n];
    let mut eigenvalue = 0.0f64;
    let mut iterations = 0usize;
    let mut delta = 1.0f64;
    while iterations < options.max_iterations && delta > options.tolerance {
        let span_start = iteration_start();
        let av = backend.spmv(matrix, &v)?;
        let norm_av = norm(&av);
        if norm_av < f64::MIN_POSITIVE {
            break; // v is in the null space
        }
        let next: Vec<f32> = av.iter().map(|&y| (y as f64 / norm_av) as f32).collect();
        eigenvalue = dot(&next, &backend.spmv(matrix, &next)?);
        delta = v
            .iter()
            .zip(&next)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .fold(0.0, f64::max);
        v = next;
        iterations += 1;
        record_iteration("power", iterations, delta, span_start);
    }
    Ok((
        eigenvalue,
        SolveResult {
            solution: v,
            iterations,
            residual: delta,
            converged: delta <= options.tolerance,
            spmv_seconds: backend.elapsed_seconds(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sim::AcceleratorConfig;
    use chason_testutil::spd_system;

    fn check_solution(a: &CooMatrix, x: &[f32], b: &[f32], tol: f64) {
        let ax = a.spmv(x);
        let rel = ax
            .iter()
            .zip(b)
            .map(|(&p, &q)| (p as f64 - q as f64).abs())
            .fold(0.0, f64::max)
            / norm(b).max(1.0);
        assert!(rel < tol, "solution residual {rel}");
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn solver_iterations_land_in_the_global_recorder() {
        let before = chason_telemetry::global()
            .registry()
            .counter("solver_iterations_total")
            .get();
        let (a, b) = spd_system(64, 9);
        let mut backend = CpuBackend::default();
        let r = conjugate_gradient(&mut backend, &a, &b, CgOptions::default()).unwrap();
        assert!(r.iterations > 0);
        let telemetry = chason_telemetry::global();
        let after = telemetry
            .registry()
            .counter("solver_iterations_total")
            .get();
        assert!(
            after >= before + r.iterations as u64,
            "counter moved {before} -> {after} for {} iterations",
            r.iterations
        );
        // The recorder is process-global and shared with parallel tests;
        // only assert our spans are present and well-formed.
        let spans = telemetry.recorder().snapshot();
        assert!(spans
            .iter()
            .any(|s| s.name == "solver.iteration" && s.end >= s.start));
    }

    #[test]
    fn cg_solves_on_cpu_backend() {
        let (a, b) = spd_system(200, 3);
        let mut backend = CpuBackend::default();
        let r = conjugate_gradient(&mut backend, &a, &b, CgOptions::default()).unwrap();
        assert!(r.converged, "residual {}", r.residual);
        check_solution(&a, &r.solution, &b, 1e-3);
        assert!(r.spmv_seconds > 0.0);
        assert_eq!(backend.name(), "cpu-reference");
    }

    #[test]
    fn cg_on_chason_matches_cpu() {
        let (a, b) = spd_system(256, 5);
        let mut cpu = CpuBackend::default();
        let mut acc = EngineBackend::chason(ChasonEngine::new(AcceleratorConfig::chason()));
        let r_cpu = conjugate_gradient(&mut cpu, &a, &b, CgOptions::default()).unwrap();
        let r_acc = conjugate_gradient(&mut acc, &a, &b, CgOptions::default()).unwrap();
        assert!(r_acc.converged);
        // Same math, FP reassociation tolerance.
        for (x, y) in r_cpu.solution.iter().zip(&r_acc.solution) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
        assert!(
            r_acc.spmv_seconds > 0.0,
            "engine must report simulated time"
        );
    }

    #[test]
    fn jacobi_converges_and_serpens_costs_more_time() {
        let (a, b) = spd_system(256, 9);
        let mut chason = EngineBackend::chason(ChasonEngine::new(AcceleratorConfig::chason()));
        let mut serpens = EngineBackend::serpens(SerpensEngine::new(AcceleratorConfig::serpens()));
        let rc = jacobi(&mut chason, &a, &b, CgOptions::default()).unwrap();
        let rs = jacobi(&mut serpens, &a, &b, CgOptions::default()).unwrap();
        assert!(rc.converged && rs.converged);
        assert_eq!(rc.iterations, rs.iterations, "same math, same trajectory");
        assert!(
            rc.spmv_seconds < rs.spmv_seconds,
            "chason {} vs serpens {}",
            rc.spmv_seconds,
            rs.spmv_seconds
        );
    }

    #[test]
    fn power_iteration_finds_the_dominant_eigenvalue() {
        // Diagonal matrix: dominant eigenvalue is the largest entry.
        let t = vec![(0, 0, 3.0), (1, 1, 7.0), (2, 2, 1.0)];
        let a = CooMatrix::from_triplets(3, 3, t).unwrap();
        let mut backend = CpuBackend::default();
        let opts = CgOptions {
            max_iterations: 200,
            tolerance: 1e-9,
        };
        let (lambda, r) = power_iteration(&mut backend, &a, opts).unwrap();
        assert!((lambda - 7.0).abs() < 1e-3, "lambda {lambda}");
        assert!(r.solution[1].abs() > 0.99);
    }

    #[test]
    fn solver_backends_schedule_each_matrix_exactly_once() {
        let (a, b) = spd_system(256, 13);
        let mut acc = EngineBackend::chason(ChasonEngine::new(AcceleratorConfig::chason()));
        let opts = CgOptions {
            max_iterations: 50,
            tolerance: 0.0,
        }; // run until the residual is *exactly* zero or 50 iterations pass
        let r = conjugate_gradient(&mut acc, &a, &b, opts).unwrap();
        assert!(r.iterations > 10, "CG took {} iterations", r.iterations);
        assert_eq!(
            acc.schedules_built(),
            1,
            "every CG iteration must share one scheduling pass"
        );
        assert_eq!(acc.cached_plans(), 1);

        // 50 further SpMVs on the same matrix — still a single pass.
        for _ in 0..50 {
            acc.spmv(&a, &b).unwrap();
        }
        assert_eq!(acc.schedules_built(), 1);

        // A second, distinct system costs exactly one more pass; re-solving
        // the first costs none.
        let (a2, b2) = spd_system(200, 14);
        conjugate_gradient(&mut acc, &a2, &b2, CgOptions::default()).unwrap();
        assert_eq!(acc.schedules_built(), 2);
        conjugate_gradient(&mut acc, &a, &b, CgOptions::default()).unwrap();
        assert_eq!(acc.schedules_built(), 2);

        acc.clear_plan_cache();
        assert_eq!(acc.cached_plans(), 0);
    }

    #[test]
    fn plan_cache_is_bounded_and_observably_lru() {
        let (a1, b1) = spd_system(128, 31);
        let (a2, _) = spd_system(130, 32);
        let mut acc = EngineBackend::chason(ChasonEngine::new(AcceleratorConfig::chason()))
            .with_plan_capacity(1);
        acc.spmv(&a1, &b1).unwrap();
        acc.spmv(&a1, &b1).unwrap(); // hit
        assert_eq!(acc.schedules_built(), 1);
        acc.spmv(&a2, &vec![0.5; 130]).unwrap(); // evicts a1's plan
        assert_eq!(acc.cached_plans(), 1);
        acc.spmv(&a1, &b1).unwrap(); // must re-schedule after eviction
        assert_eq!(acc.schedules_built(), 3);
        let stats = acc.plan_cache_stats();
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn plan_cache_does_not_change_solver_results() {
        let (a, b) = spd_system(256, 21);
        let mut cached = EngineBackend::chason(ChasonEngine::new(AcceleratorConfig::chason()));
        let r_cached = conjugate_gradient(&mut cached, &a, &b, CgOptions::default()).unwrap();
        // Fresh backend per iteration count comparison: direct engine runs.
        let engine = ChasonEngine::new(AcceleratorConfig::chason());
        let direct = engine.run_partitioned(&a, &r_cached.solution).unwrap();
        let replayed = engine
            .run_planned(&engine.plan(&a).unwrap(), &r_cached.solution)
            .unwrap();
        assert_eq!(direct, replayed);
        assert!(r_cached.converged);
    }

    #[test]
    #[should_panic(expected = "square system")]
    fn cg_rejects_rectangular_systems() {
        let a = CooMatrix::new(3, 4);
        let _ = conjugate_gradient(
            &mut CpuBackend::default(),
            &a,
            &[0.0; 3],
            CgOptions::default(),
        );
    }
}
