//! # Chasoň
//!
//! A pure-Rust reproduction of *"Chasoň: Supporting Cross HBM Channel Data
//! Migration to Enable Efficient Sparse Algebraic Acceleration"*
//! (MICRO 2025): the CrHCS non-zero scheduler, cycle-level models of the
//! Chasoň and Serpens HBM streaming SpMV accelerators, the synthetic
//! SuiteSparse/SNAP dataset catalogs, and the CPU/GPU baseline models the
//! paper evaluates against.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sparse`] — matrix formats, generators, MatrixMarket IO
//!   ([`chason_sparse`]);
//! * [`hbm`] — HBM channel and traffic model ([`chason_hbm`]);
//! * [`core`] — the CrHCS / PE-aware / row-based schedulers
//!   ([`chason_core`]);
//! * [`sim`] — the Chasoň and Serpens architecture models
//!   ([`chason_sim`]);
//! * [`baselines`] — reference SpMV and analytic GPU/CPU device models
//!   ([`chason_baselines`]).
//!
//! # Quickstart
//!
//! ```
//! use chason::core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
//! use chason::sparse::generators::power_law;
//!
//! let matrix = power_law(512, 512, 4000, 1.8, 42);
//! let config = SchedulerConfig::default();
//!
//! let serpens = PeAware::new().schedule(&matrix, &config);
//! let chason = Crhcs::new().schedule(&matrix, &config);
//!
//! println!(
//!     "PE underutilization: serpens {:.1}% -> chason {:.1}%",
//!     serpens.underutilization() * 100.0,
//!     chason.underutilization() * 100.0,
//! );
//! assert!(chason.underutilization() <= serpens.underutilization());
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod solvers;

pub use chason_baselines as baselines;
pub use chason_core as core;
pub use chason_hbm as hbm;
pub use chason_sim as sim;
pub use chason_sparse as sparse;
