//! Quickstart: schedule a sparse matrix with CrHCS, execute it on the
//! Chasoň engine, and compare against the Serpens baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chason::baselines::reference;
use chason::core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::generators::power_law;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A skewed 2048x2048 matrix with 30k non-zeros — the regime where
    // intra-channel scheduling starves PEs.
    let matrix = power_law(2048, 2048, 30_000, 1.7, 42);
    let x: Vec<f32> = (0..matrix.cols())
        .map(|i| 1.0 + (i % 10) as f32 * 0.1)
        .collect();

    // 1. Offline scheduling: PE-aware (Serpens) vs CrHCS (Chasoň).
    let config = SchedulerConfig::paper();
    let serpens_schedule = PeAware::new().schedule(&matrix, &config);
    let chason_schedule = Crhcs::new().schedule(&matrix, &config);
    println!("== offline scheduling (16 channels x 8 PEs, D = 10) ==");
    println!(
        "pe-aware : {:6} cycles, {:7} stalls, {:5.1}% PE underutilization",
        serpens_schedule.stream_cycles(),
        serpens_schedule.stalls(),
        serpens_schedule.underutilization() * 100.0
    );
    println!(
        "crhcs    : {:6} cycles, {:7} stalls, {:5.1}% PE underutilization",
        chason_schedule.stream_cycles(),
        chason_schedule.stalls(),
        chason_schedule.underutilization() * 100.0
    );

    // 2. Architecture simulation: run both engines end to end.
    let chason = ChasonEngine::new(AcceleratorConfig::chason()).run(&matrix, &x)?;
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens()).run(&matrix, &x)?;
    println!("\n== simulated execution ==");
    for exec in [&serpens, &chason] {
        println!(
            "{:8}: {:.3} ms | {:.2} GFLOPS | {:.2} MB streamed",
            exec.engine,
            exec.latency_ms(),
            exec.throughput_gflops(),
            exec.bytes_streamed as f64 / 1e6
        );
    }
    println!(
        "\nspeedup {:.2}x, transfer reduction {:.2}x",
        serpens.latency_seconds() / chason.latency_seconds(),
        serpens.bytes_streamed as f64 / chason.bytes_streamed as f64
    );

    // 3. Functional correctness: both engines must agree with the CPU
    //    reference within FP32 reassociation tolerance.
    let reference = reference::spmv(&matrix, &x);
    let err_c = reference::max_relative_error(&chason.y, &reference);
    let err_s = reference::max_relative_error(&serpens.y, &reference);
    println!("max relative error vs reference: chason {err_c:.2e}, serpens {err_s:.2e}");
    assert!(
        err_c < 1e-4 && err_s < 1e-4,
        "engines disagree with the reference"
    );
    Ok(())
}
