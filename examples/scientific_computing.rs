//! Scientific computing on the accelerator: a Jacobi iterative solver whose
//! inner kernel is SpMV over a stage-structured optimal-control-style
//! system — the SuiteSparse half of the paper's evaluation.
//!
//! Solves `A·u = b` for a diagonally dominant arrow-structured system,
//! running every iteration's SpMV on the Chasoň engine and verifying the
//! final residual on the CPU.
//!
//! ```sh
//! cargo run --example scientific_computing
//! ```

use chason::baselines::reference;
use chason::sim::{AcceleratorConfig, ChasonEngine};
use chason::sparse::generators::arrow_with_nnz;
use chason::sparse::CooMatrix;

/// Makes an arrow matrix strictly diagonally dominant so Jacobi converges:
/// every diagonal entry is set to (row L1 norm + 1).
fn diagonally_dominant(base: &CooMatrix) -> CooMatrix {
    let n = base.rows();
    let mut row_norm = vec![0.0f32; n];
    for &(r, c, v) in base.iter() {
        if r != c {
            row_norm[r] += v.abs();
        }
    }
    let mut triplets: Vec<(usize, usize, f32)> =
        base.iter().filter(|&&(r, c, _)| r != c).copied().collect();
    for (r, &norm) in row_norm.iter().enumerate() {
        triplets.push((r, r, norm + 1.0));
    }
    CooMatrix::from_triplets(n, n, triplets).expect("coordinates stay valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lowThrust-style stage-structured system.
    let n = 4000;
    let base = arrow_with_nnz(n, 6, 4, 60_000, 11);
    let a = diagonally_dominant(&base);
    println!("system: {} unknowns, {} non-zeros", n, a.nnz());

    // Ground-truth solution and right-hand side b = A·u*.
    let u_star: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) * 0.25).collect();
    let b = reference::spmv(&a, &u_star);

    // Jacobi: u' = u + D^-1 (b - A·u). Extract the diagonal.
    let mut diag = vec![0.0f32; n];
    for &(r, c, v) in a.iter() {
        if r == c {
            diag[r] = v;
        }
    }

    let engine = ChasonEngine::new(AcceleratorConfig::chason());
    let mut u = vec![0.0f32; n];
    let mut simulated_time = 0.0f64;
    let b_norm: f64 = b
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();

    for iteration in 1..=60 {
        let exec = engine.run(&a, &u)?;
        simulated_time += exec.latency_seconds();
        let mut residual_norm = 0.0f64;
        for i in 0..n {
            let r = b[i] - exec.y[i];
            residual_norm += (r as f64) * (r as f64);
            u[i] += r / diag[i];
        }
        let rel = residual_norm.sqrt() / b_norm;
        if iteration % 10 == 0 || rel < 1e-6 {
            println!("iteration {iteration:2}: relative residual {rel:.3e}");
        }
        if rel < 1e-6 {
            break;
        }
    }

    // Verify against the CPU reference solution.
    let final_residual = {
        let ax = reference::spmv(&a, &u);
        let mut num = 0.0f64;
        for i in 0..n {
            let r = (b[i] - ax[i]) as f64;
            num += r * r;
        }
        num.sqrt() / b_norm
    };
    println!("\nfinal CPU-verified relative residual: {final_residual:.3e}");
    println!(
        "total simulated accelerator time: {:.3} ms",
        simulated_time * 1e3
    );
    assert!(final_residual < 1e-4, "Jacobi failed to converge");
    Ok(())
}
