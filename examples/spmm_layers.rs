//! SpMM extension (§7.2): a sparse "GNN-style" layer stack,
//! `H' = A · H · (scaling)`, where the adjacency matrix A is sparse and the
//! feature matrix H is dense — the workload family Sextans targets and
//! §7.2 extends Chasoň toward.
//!
//! ```sh
//! cargo run --release --example spmm_layers
//! ```

use chason::sim::spmm::reference_spmm;
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::generators::power_law;
use chason::sparse::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A social-graph adjacency (SNAP-like) and 32 dense feature columns.
    let n = 2048;
    let features = 32;
    let adjacency = power_law(n, n, 40_000, 1.6, 21);
    let mut h = DenseMatrix::from_fn(n, features, |r, c| {
        ((r * 31 + c * 17) % 64) as f32 / 64.0 - 0.5
    });

    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
    let zero = DenseMatrix::zeros(n, features);

    let mut chason_time = 0.0f64;
    let mut serpens_time = 0.0f64;
    for layer in 1..=3 {
        let exec = chason.run_spmm(&adjacency, &h, 0.5, 0.0, &zero)?;
        chason_time += exec.latency_seconds();
        serpens_time += serpens
            .run_spmm(&adjacency, &h, 0.5, 0.0, &zero)?
            .latency_seconds();

        // Verify the layer against the dense oracle before proceeding.
        let oracle = reference_spmm(&adjacency, &h, 0.5, 0.0, &zero);
        let diff = exec.c.max_abs_diff(&oracle);
        println!(
            "layer {layer}: {} tiles, {:.1} M MACs, {:.3} ms, {:.2} GFLOPS (oracle diff {diff:.2e})",
            exec.tiles,
            exec.mac_ops as f64 / 1e6,
            exec.latency_seconds() * 1e3,
            exec.throughput_gflops(),
        );
        assert!(diff < 1e-2, "layer {layer} diverged from the oracle");
        h = exec.c;
    }

    println!(
        "\n3-layer propagation: chason {:.3} ms vs serpens {:.3} ms ({:.2}x)",
        chason_time * 1e3,
        serpens_time * 1e3,
        serpens_time / chason_time
    );
    Ok(())
}
