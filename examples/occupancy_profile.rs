//! PE-occupancy profile: how busy the 128 PEs are over the stream, for
//! Serpens vs Chasoň — the time-resolved view behind the paper's Eq. 4
//! scalar.
//!
//! ```sh
//! cargo run --release --example occupancy_profile
//! ```

use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::generators::arrow_with_nnz;

/// Downsamples an occupancy trace into `buckets` means (fraction of busy
/// PEs per bucket).
fn profile(occupancy: &[u16], total_pes: f64, buckets: usize) -> Vec<f64> {
    if occupancy.is_empty() {
        return vec![0.0; buckets];
    }
    let chunk = occupancy.len().div_ceil(buckets);
    occupancy
        .chunks(chunk)
        .map(|c| c.iter().map(|&b| b as f64).sum::<f64>() / (c.len() as f64 * total_pes))
        .collect()
}

fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| LEVELS[((v * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hub-heavy optimal-control-style matrix: the worst case for
    // intra-channel scheduling.
    let matrix = arrow_with_nnz(4096, 4, 12, 60_000, 3);
    let x = vec![1.0f32; 4096];
    let record = |mut cfg: AcceleratorConfig| {
        cfg.record_occupancy = true;
        cfg
    };

    let serpens = SerpensEngine::new(record(AcceleratorConfig::serpens())).run(&matrix, &x)?;
    let chason = ChasonEngine::new(record(AcceleratorConfig::chason())).run(&matrix, &x)?;
    let total_pes = 128.0;

    println!("matrix: 4096 x 4096, {} nnz (12 hub rows)\n", matrix.nnz());
    for exec in [&serpens, &chason] {
        let p = profile(&exec.occupancy, total_pes, 64);
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        println!(
            "{:8} | {} | stream {:6} cycles, mean occupancy {:4.1}%",
            exec.engine,
            sparkline(&p),
            exec.occupancy.len(),
            mean * 100.0
        );
    }
    println!(
        "\nSerpens idles through the hub rows' RAW chains; CrHCS's migrated\n\
         values keep the other PEGs busy, compressing the same work into\n\
         {:.1}x fewer stream cycles.",
        serpens.occupancy.len() as f64 / chason.occupancy.len().max(1) as f64
    );
    Ok(())
}
