//! Graph analytics on the accelerator: PageRank-style power iteration over
//! a SNAP-like social graph, the workload family motivating the paper's
//! SNAP half of Table 2.
//!
//! Each PageRank iteration is one SpMV (`rank' = d·Aᵀ·rank + (1-d)/n`), so
//! accelerator speedup compounds across iterations. The example runs the
//! iteration on the Chasoň engine and reports convergence plus the
//! accumulated simulated time against Serpens.
//!
//! ```sh
//! cargo run --example graph_analytics
//! ```

use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::generators::power_law;
use chason::sparse::stats::row_stats;
use chason::sparse::CooMatrix;

/// Column-normalizes the adjacency transpose so each column sums to 1
/// (the "out-degree" normalization of PageRank).
fn normalize_columns(graph: &CooMatrix) -> CooMatrix {
    let mut col_sums = vec![0.0f32; graph.cols()];
    for &(_, c, v) in graph.iter() {
        col_sums[c] += v.abs();
    }
    let triplets = graph
        .iter()
        .map(|&(r, c, v)| (r, c, v.abs() / col_sums[c].max(1e-12)))
        .collect();
    CooMatrix::from_triplets(graph.rows(), graph.cols(), triplets)
        .expect("normalization preserves coordinates")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A wiki-Vote-scale power-law graph (Table 2's WI row).
    let n = 8192;
    let graph = power_law(n, n, 103_689, 1.6, 7);
    let stats = row_stats(&graph);
    println!(
        "graph: {} nodes, {} edges, max degree {}, gini {:.2}",
        n,
        graph.nnz(),
        stats.max_row_nnz,
        stats.gini
    );

    let matrix = normalize_columns(&graph);
    let damping = 0.85f32;
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());

    let mut rank = vec![1.0f32 / n as f32; n];
    let mut chason_time = 0.0f64;
    let mut serpens_time = 0.0f64;
    let teleport = (1.0 - damping) / n as f32;

    for iteration in 1..=20 {
        let exec = chason.run(&matrix, &rank)?;
        chason_time += exec.latency_seconds();
        // Accumulate what the baseline would have spent on the same SpMV.
        serpens_time += serpens.run(&matrix, &rank)?.latency_seconds();

        let next: Vec<f32> = exec.y.iter().map(|&v| damping * v + teleport).collect();
        let delta: f32 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if iteration % 5 == 0 || delta < 1e-7 {
            println!("iteration {iteration:2}: L1 delta {delta:.3e}");
        }
        if delta < 1e-7 {
            break;
        }
    }

    let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
    println!("\ntop-5 ranked nodes:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:5}: {score:.5}");
    }

    println!(
        "\nsimulated SpMV time: chason {:.3} ms vs serpens {:.3} ms ({:.2}x)",
        chason_time * 1e3,
        serpens_time * 1e3,
        serpens_time / chason_time
    );
    Ok(())
}
