//! Scheduler deep-dive: row-based vs PE-aware vs CrHCS across matrix
//! structures, reproducing the qualitative story of Figures 2–5.
//!
//! For each structural regime (balanced, banded, power-law, arrow) the
//! example prints stream length, stall counts, PE underutilization, and
//! the CrHCS migration statistics.
//!
//! ```sh
//! cargo run --example scheduler_comparison
//! ```

use chason::core::metrics::ScheduleMetrics;
use chason::core::schedule::{Crhcs, PeAware, RowBased, Scheduler, SchedulerConfig};
use chason::sparse::generators::{arrow_with_nnz, banded_with_nnz, power_law, uniform_random};
use chason::sparse::CooMatrix;

fn describe(name: &str, matrix: &CooMatrix, config: &SchedulerConfig) {
    println!(
        "\n=== {name}: {}x{}, {} nnz ===",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    );
    let row_based = RowBased::new().schedule(matrix, config);
    let pe_aware = PeAware::new().schedule(matrix, config);
    let (crhcs, migration) = Crhcs::new().schedule_with_report(matrix, config);
    for (label, schedule) in [
        ("row-based", &row_based),
        ("pe-aware ", &pe_aware),
        ("crhcs    ", &crhcs),
    ] {
        let m = ScheduleMetrics::from_schedule(label, schedule);
        println!(
            "  {label}: {:7} cycles | {:8} stalls | {:5.1}% idle | {:.3} nz/cycle/PE",
            m.cycles, m.stalls, m.underutilization_pct, m.nz_per_cycle_per_pe
        );
    }
    println!(
        "  migration: {} values moved, {} RAW skips, stream {} -> {} cycles",
        migration.migrated, migration.raw_skips, migration.cycles_before, migration.cycles_after
    );
    // Safety net: the schedules must all be valid.
    row_based.validate(matrix).expect("row-based invariants");
    pe_aware.validate(matrix).expect("pe-aware invariants");
    crhcs.validate(matrix).expect("crhcs invariants");
}

fn main() {
    let config = SchedulerConfig::paper();
    println!(
        "configuration: {} channels x {} PEs, dependency distance {}",
        config.channels, config.pes_per_channel, config.dependency_distance
    );

    describe(
        "balanced (uniform)",
        &uniform_random(4096, 4096, 60_000, 3),
        &config,
    );
    describe(
        "banded (circuit-like)",
        &banded_with_nnz(4096, 8, 60_000, 3),
        &config,
    );
    describe(
        "power-law (social graph)",
        &power_law(4096, 4096, 60_000, 1.7, 3),
        &config,
    );
    describe(
        "arrow (optimal control)",
        &arrow_with_nnz(4096, 6, 4, 60_000, 3),
        &config,
    );

    println!(
        "\nTakeaway: the more skewed the row populations, the more stalls the\n\
         intra-channel schemes leave and the more CrHCS's cross-channel\n\
         migration recovers — the central claim of the paper."
    );
}
