//! Deterministic trace golden: the profiler's window spans are derived
//! entirely from the plan (simulated stream beats, no wall clock), so the
//! rendered JSONL must be byte-identical across runs *and* across planning
//! thread counts. The committed golden pins the exact bytes; re-bless with
//! `UPDATE_GOLDEN=1` after an intentional schedule or format change.

use chason_conformance::golden::check_or_bless;
use chason_core::schedule::SchedulerConfig;
use chason_sim::profile::window_spans;
use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_telemetry::trace::{parse_jsonl, to_jsonl};
use std::path::Path;

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

#[test]
fn window_trace_is_byte_stable_and_matches_the_golden() {
    let sched = SchedulerConfig::toy(4, 4, 6);
    let chason = ChasonEngine::new(AcceleratorConfig {
        sched,
        ..AcceleratorConfig::chason()
    });
    let serpens = SerpensEngine::new(AcceleratorConfig {
        sched,
        ..AcceleratorConfig::serpens()
    });
    let matrix = chason_sparse::generators::power_law(128, 128, 900, 2.0, 17);

    let reference = {
        let c = chason.plan_with_threads(&matrix, 1).expect("chason plan");
        let s = serpens.plan_with_threads(&matrix, 1).expect("serpens plan");
        let mut jsonl = to_jsonl(&window_spans(&c, chason.config()));
        jsonl.push_str(&to_jsonl(&window_spans(&s, serpens.config())));
        jsonl
    };

    // Planning parallelism must not leak into the trace bytes.
    for threads in [2, 4, 8] {
        let c = chason
            .plan_with_threads(&matrix, threads)
            .expect("chason plan");
        let s = serpens
            .plan_with_threads(&matrix, threads)
            .expect("serpens plan");
        let mut jsonl = to_jsonl(&window_spans(&c, chason.config()));
        jsonl.push_str(&to_jsonl(&window_spans(&s, serpens.config())));
        assert_eq!(
            jsonl, reference,
            "trace bytes drifted at {threads} planning threads"
        );
    }

    // Lossless: the exported text parses back to the same spans.
    let spans = parse_jsonl(&reference).expect("golden trace parses");
    assert!(!spans.is_empty());
    assert_eq!(to_jsonl(&spans), reference);
    assert!(spans.iter().all(|s| s.name == "sim.window"));

    check_or_bless(&golden_path("trace_windows.jsonl"), &reference)
        .expect("window trace matches the committed golden (UPDATE_GOLDEN=1 to re-bless)");
}
