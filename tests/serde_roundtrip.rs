//! C-SERDE compliance: the public data structures implement `Serialize` and
//! `DeserializeOwned`, so downstream users can archive experiment results
//! and configurations with the serde format crate of their choice (the
//! workspace itself deliberately carries no format crate).

use chason::core::schedule::{Crhcs, Scheduler, SchedulerConfig};
use chason::sim::{AcceleratorConfig, ChasonEngine};
use chason::sparse::{CooMatrix, CsrMatrix, DenseMatrix};

fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
fn assert_serialize<T: serde::Serialize>() {}

#[test]
fn data_structures_are_serde_compatible() {
    assert_serde::<SchedulerConfig>();
    assert_serde::<AcceleratorConfig>();
    assert_serde::<CooMatrix>();
    assert_serde::<CsrMatrix>();
    assert_serde::<chason::sparse::CscMatrix>();
    assert_serde::<DenseMatrix>();
    assert_serde::<chason::core::schedule::ScheduledMatrix>();
    assert_serde::<chason::core::schedule::ChannelSchedule>();
    assert_serde::<chason::core::schedule::NzSlot>();
    assert_serde::<chason::core::SparseElement>();
    assert_serde::<chason::core::metrics::WindowedMetrics>();
    assert_serialize::<chason::sim::Execution>(); // borrows &'static str names
    assert_serde::<chason::sim::CycleBreakdown>();
    assert_serialize::<chason::sim::SpmmExecution>(); // borrows &'static str names
    assert_serde::<chason::sim::report::PerformanceReport>();
    assert_serde::<chason::sim::power::PowerBreakdown>();
    assert_serde::<chason::sim::resources::ResourceUsage>();
    assert_serde::<chason::hbm::HbmConfig>();
    assert_serde::<chason::hbm::StreamTiming>();
    assert_serde::<chason::hbm::traffic::TrafficSummary>();
    assert_serialize::<chason::baselines::DeviceModel>(); // borrows &'static str names
    assert_serde::<chason::baselines::DevicePrediction>();
    assert_serialize::<chason::sparse::datasets::DatasetSpec>(); // borrows &'static str names
    assert_serde::<chason::sparse::datasets::CorpusSpec>();
    assert_serialize::<chason::sparse::stats::RowStats>();
}

/// Types are Send + Sync where users will share them across threads
/// (C-SEND-SYNC).
#[test]
fn key_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CooMatrix>();
    assert_send_sync::<CsrMatrix>();
    assert_send_sync::<chason::core::schedule::ScheduledMatrix>();
    assert_send_sync::<ChasonEngine>();
    assert_send_sync::<chason::sim::SerpensEngine>();
    assert_send_sync::<chason::sim::SimError>();
    assert_send_sync::<chason::sparse::SparseError>();
}

/// A serialized-then-restored schedule drives the engine identically: the
/// binary artifact (chason-core::export) is the supported archival format.
#[test]
fn binary_artifact_is_the_archival_path() {
    let m = chason::sparse::generators::power_law(256, 256, 1200, 1.7, 9);
    let schedule = Crhcs::new().schedule(&m, &SchedulerConfig::paper());
    let mut buf = Vec::new();
    chason::core::export::write_schedule(&mut buf, &schedule).unwrap();
    let artifact = chason::core::export::read_schedule(buf.as_slice()).unwrap();
    assert_eq!(artifact.lists, schedule.data_lists_padded());
    assert!((artifact.underutilization() - schedule.underutilization()).abs() < 1e-12);
    // And the engine still executes the same matrix correctly.
    let exec = ChasonEngine::new(AcceleratorConfig::chason())
        .run(&m, &vec![1.0; 256])
        .unwrap();
    assert_eq!(exec.mac_ops as usize, m.nnz());
}
