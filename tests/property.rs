//! Property-based tests over the core invariants, spanning crates.

use chason::baselines::reference;
use chason::core::element::SparseElement;
use chason::core::schedule::{Crhcs, PeAware, RowBased, Scheduler};
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_testutil::{sparse_matrix, toy_config};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire codec round-trips every representable element.
    #[test]
    fn element_codec_round_trips(
        bits in any::<u32>().prop_filter("value must not collide with the stall word", |b| *b != 0),
        row in 0u16..32_768,
        pvt in any::<bool>(),
        pe_src in 0u8..8,
        col in 0u16..8_192,
    ) {
        let e = SparseElement { value: f32::from_bits(bits), local_row: row, pvt, pe_src, local_col: col };
        let unpacked = SparseElement::unpack(e.pack()).expect("non-stall word");
        prop_assert_eq!(unpacked.value.to_bits(), e.value.to_bits());
        prop_assert_eq!(unpacked.local_row, e.local_row);
        prop_assert_eq!(unpacked.pvt, e.pvt);
        prop_assert_eq!(unpacked.pe_src, e.pe_src);
        prop_assert_eq!(unpacked.local_col, e.local_col);
    }

    /// Every scheduler conserves non-zeros and respects RAW distances.
    #[test]
    fn schedulers_uphold_invariants(m in sparse_matrix(48, 160), cfg in toy_config()) {
        for scheduler in [&RowBased::new() as &dyn Scheduler, &PeAware::new(), &Crhcs::new()] {
            let s = scheduler.schedule(&m, &cfg);
            prop_assert_eq!(s.scheduled_nonzeros(), m.nnz());
            if let Err(e) = s.validate(&m) {
                prop_assert!(false, "{} violated: {}", scheduler.name(), e);
            }
        }
    }

    /// CrHCS never increases underutilization or stream length relative to
    /// the PE-aware baseline it starts from.
    #[test]
    fn crhcs_never_regresses(m in sparse_matrix(48, 160), cfg in toy_config()) {
        let base = PeAware::new().schedule(&m, &cfg);
        let improved = Crhcs::new().schedule(&m, &cfg);
        prop_assert!(improved.stream_cycles() <= base.stream_cycles());
        prop_assert!(improved.underutilization() <= base.underutilization() + 1e-12);
    }

    /// Both simulated engines agree with the CPU reference on arbitrary
    /// inputs (FP32 reassociation tolerance).
    #[test]
    fn engines_match_reference(m in sparse_matrix(40, 120), xs in proptest::collection::vec(-4.0f32..4.0, 40)) {
        let x: Vec<f32> = (0..m.cols()).map(|i| xs[i % xs.len()]).collect();
        let oracle = reference::spmv(&m, &x);
        let chason = ChasonEngine::new(AcceleratorConfig::chason()).run(&m, &x).expect("chason runs");
        let serpens = SerpensEngine::new(AcceleratorConfig::serpens()).run(&m, &x).expect("serpens runs");
        prop_assert!(reference::max_relative_error(&chason.y, &oracle) < 1e-3);
        prop_assert!(reference::max_relative_error(&serpens.y, &oracle) < 1e-3);
    }

    /// The threaded SpMV kernels agree exactly with the serial kernel
    /// (identical per-row accumulation order).
    #[test]
    fn parallel_spmv_matches_serial(m in sparse_matrix(64, 300), threads in 1usize..6) {
        let csr = chason::sparse::CsrMatrix::from(&m);
        let x: Vec<f32> = (0..m.cols()).map(|i| (i as f32 * 0.37).sin()).collect();
        let serial = csr.spmv(&x);
        prop_assert_eq!(chason::baselines::parallel::spmv_static(&csr, &x, threads), serial.clone());
        prop_assert_eq!(chason::baselines::parallel::spmv_dynamic(&csr, &x, threads, 7), serial);
    }

    /// Planning then executing reproduces direct execution *bit for bit* —
    /// result vector, cycle breakdown, traffic, and stall accounting alike —
    /// for both engine families.
    #[test]
    fn planned_execution_is_bit_identical(m in sparse_matrix(48, 200), xs in proptest::collection::vec(-4.0f32..4.0, 48)) {
        let x: Vec<f32> = (0..m.cols()).map(|i| xs[i % xs.len()]).collect();
        let chason = ChasonEngine::new(AcceleratorConfig::chason());
        let direct = chason.run(&m, &x).expect("chason runs");
        let planned = chason
            .run_planned(&chason.plan(&m).expect("chason plans"), &x)
            .expect("chason replays");
        prop_assert_eq!(direct, planned);
        let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
        let direct = serpens.run(&m, &x).expect("serpens runs");
        let planned = serpens
            .run_planned(&serpens.plan(&m).expect("serpens plans"), &x)
            .expect("serpens replays");
        prop_assert_eq!(direct, planned);
    }

    /// Parallel window planning produces the same plan as serial planning
    /// for any thread count: workers own disjoint contiguous window chunks
    /// and results are reassembled in window order.
    #[test]
    fn parallel_planning_matches_serial(m in sparse_matrix(48, 200), threads in 2usize..9) {
        // A small window width forces several windows even on small inputs.
        let engine = ChasonEngine::new(AcceleratorConfig {
            window: 16,
            ..AcceleratorConfig::chason()
        });
        let serial = engine.plan_with_threads(&m, 1).expect("serial plan");
        let parallel = engine.plan_with_threads(&m, threads).expect("parallel plan");
        prop_assert_eq!(serial, parallel);
    }

    /// Windowing covers every entry exactly once for arbitrary widths.
    #[test]
    fn windows_partition_entries(m in sparse_matrix(40, 150), width in 1usize..64) {
        let windows = chason::core::window::partition_columns(&m, width);
        let total: usize = windows.iter().map(|w| w.matrix.nnz()).sum();
        prop_assert_eq!(total, m.nnz());
        for w in &windows {
            prop_assert!(w.width() <= width);
        }
    }
}
