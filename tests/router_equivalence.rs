//! Acceptance proof for sharded serving: a 3-shard router returns the
//! same answers as a single `chason serve` instance on the same corpus —
//! bit-identical on the `cpu` engine (row-block sharding preserves
//! per-row accumulation order), ULP-equivalent on the modeled engines —
//! including after an `UpdateMatrix` delta routed by row footprint.

use chason_conformance::ulp::{compare, row_scales, UlpTolerance};
use chason_router::{Router, RouterConfig};
use chason_serve::client::Client;
use chason_serve::proto::{Engine, SolverKind};
use chason_serve::server::{ServeConfig, Server};
use chason_sparse::{CooMatrix, MatrixDelta};
use chason_testutil::{dense_x, spd_system};

struct Deployment {
    single: Server,
    shards: Vec<Server>,
    router: Router,
}

impl Deployment {
    fn start(shard_count: usize) -> Deployment {
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let single = Server::start(config.clone()).expect("single server");
        let shards: Vec<Server> = (0..shard_count)
            .map(|_| Server::start(config.clone()).expect("shard"))
            .collect();
        let router = Router::start(RouterConfig {
            shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
            workers: 2,
            ..RouterConfig::default()
        })
        .expect("router");
        Deployment {
            single,
            shards,
            router,
        }
    }

    fn clients(&self) -> (Client, Client) {
        let single = Client::connect(self.single.local_addr()).expect("connect single");
        let routed = Client::connect(self.router.local_addr()).expect("connect router");
        (single, routed)
    }

    fn stop(self) {
        self.router.shutdown();
        self.router.join();
        for s in self.shards {
            s.shutdown();
            s.join();
        }
        self.single.shutdown();
        self.single.join();
    }
}

fn assert_bits_equal(want: &[f32], got: &[f32], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: length mismatch");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            w.to_bits(),
            g.to_bits(),
            "{what}: bit divergence at {i}: {w} vs {g}"
        );
    }
}

fn assert_ulp_equal(matrix: &CooMatrix, x: &[f32], want: &[f32], got: &[f32], what: &str) {
    let scales = row_scales(matrix, x);
    let rejects = compare(want, got, &scales, &UlpTolerance::default());
    assert!(
        rejects.is_empty(),
        "{what}: ULP divergence: {:?}",
        &rejects[..rejects.len().min(5)]
    );
}

/// Relative residual of `A·x = b`, accumulated in f64.
fn relative_residual(a: &CooMatrix, x: &[f32], b: &[f32]) -> f64 {
    let ax = a.spmv(x);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (axi, bi) in ax.iter().zip(b) {
        num += f64::from(axi - bi).powi(2);
        den += f64::from(*bi).powi(2);
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

/// Loads `a` into both deployments (asserting the handles agree — the
/// router mints the same full-matrix fingerprint a single server would)
/// and compares SpMV on every engine and CG/Jacobi on the deterministic
/// `cpu` backend.
fn compare_deployment(
    single: &mut Client,
    routed: &mut Client,
    a: &CooMatrix,
    b: &[f32],
    what: &str,
) -> u64 {
    let (h_single, _) = single.load_matrix(a).expect("load single");
    let (h_routed, _) = routed.load_matrix(a).expect("load routed");
    assert_eq!(
        h_single, h_routed,
        "{what}: the router must mint the single-server handle"
    );

    let x = dense_x(a.cols());

    // cpu: bit-identical, and both bit-identical to the local reference.
    let (y_single, _, _) = single
        .spmv(h_single, Engine::Cpu, x.clone())
        .expect("single cpu spmv");
    let (y_routed, _, nanos) = routed
        .spmv(h_routed, Engine::Cpu, x.clone())
        .expect("routed cpu spmv");
    assert_bits_equal(&y_single, &y_routed, &format!("{what}: cpu spmv"));
    assert_eq!(nanos, 0, "{what}: cpu reports no modeled time");

    // Modeled engines: ULP-equivalent (per-shard column windows may
    // re-associate sums within a slice).
    for engine in [Engine::Chason, Engine::Serpens] {
        let (y_single, _, _) = single
            .spmv(h_single, engine, x.clone())
            .expect("single engine spmv");
        let (y_routed, _, nanos) = routed
            .spmv(h_routed, engine, x.clone())
            .expect("routed engine spmv");
        assert!(nanos > 0, "{what}: {engine:?} must report modeled time");
        assert_ulp_equal(
            a,
            &x,
            &y_single,
            &y_routed,
            &format!("{what}: {engine:?} spmv"),
        );
    }

    // cpu solves: the distributed per-iteration products are bit-identical
    // to the single instance's, so the whole trajectory is.
    for solver in [SolverKind::Cg, SolverKind::Jacobi] {
        let s = single
            .solve(h_single, Engine::Cpu, solver, 300, 1e-5, b.to_vec())
            .expect("single cpu solve");
        let r = routed
            .solve(h_routed, Engine::Cpu, solver, 300, 1e-5, b.to_vec())
            .expect("routed cpu solve");
        assert_eq!(s.converged, r.converged, "{what}: {solver:?} convergence");
        assert_eq!(s.iterations, r.iterations, "{what}: {solver:?} iterations");
        assert_bits_equal(
            &s.solution,
            &r.solution,
            &format!("{what}: cpu {solver:?} solution"),
        );
    }

    // Engine CG: iteration-level FP differences may shift the trajectory,
    // so the claim is convergence to the same tolerance on both paths.
    let s = single
        .solve(
            h_single,
            Engine::Chason,
            SolverKind::Cg,
            300,
            1e-4,
            b.to_vec(),
        )
        .expect("single chason cg");
    let r = routed
        .solve(
            h_routed,
            Engine::Chason,
            SolverKind::Cg,
            300,
            1e-4,
            b.to_vec(),
        )
        .expect("routed chason cg");
    assert!(
        s.converged,
        "{what}: single chason cg residual {}",
        s.residual
    );
    assert!(
        r.converged,
        "{what}: routed chason cg residual {}",
        r.residual
    );
    let check = relative_residual(a, &r.solution, b);
    assert!(
        check <= 1e-3,
        "{what}: routed chason cg solution does not solve the system: {check}"
    );

    h_single
}

#[test]
fn three_shard_router_matches_single_instance_including_after_update() {
    let deployment = Deployment::start(3);
    let (mut single, mut routed) = deployment.clients();

    // Two system sizes: one divides evenly across 3 shards, one does not.
    for (n, seed) in [(64usize, 9u64), (33, 21)] {
        let what = format!("n={n}");
        let (a, b) = spd_system(n, seed);
        let handle = compare_deployment(&mut single, &mut routed, &a, &b, &what);

        // A symmetric, dominance-preserving delta: boost one diagonal,
        // insert a tiny far-off-band pair, delete one off-diagonal pair.
        let diag = a
            .iter()
            .find(|&&(r, c, _)| r == c)
            .copied()
            .expect("spd diagonal");
        let off = a
            .iter()
            .find(|&&(r, c, _)| r < c)
            .copied()
            .expect("spd off-diagonal");
        let inserts = vec![
            (0u64, (n - 1) as u64, 0.01f32),
            ((n - 1) as u64, 0u64, 0.01f32),
        ];
        let revalues = vec![(diag.0 as u64, diag.1 as u64, diag.2 + 1.0)];
        let deletes = vec![(off.0 as u64, off.1 as u64), (off.1 as u64, off.0 as u64)];

        let s = single
            .update(handle, inserts.clone(), revalues.clone(), deletes.clone())
            .expect("single update");
        let r = routed
            .update(handle, inserts.clone(), revalues.clone(), deletes.clone())
            .expect("routed update");
        assert_eq!(s.version, 1, "{what}: single update bumps to v1");
        assert_eq!(r.version, 1, "{what}: routed update bumps to v1");
        assert_eq!(s.nnz, r.nnz, "{what}: nnz after identical deltas");

        // Apply the same delta locally for references and scales.
        let mut delta = MatrixDelta::for_matrix(&a);
        for &(row, col, v) in &revalues {
            delta
                .push_revalue(row as usize, col as usize, v)
                .expect("revalue");
        }
        for &(row, col, v) in &inserts {
            delta
                .push_insert(row as usize, col as usize, v)
                .expect("insert");
        }
        for &(row, col) in &deletes {
            delta
                .push_delete(row as usize, col as usize)
                .expect("delete");
        }
        let updated = delta.apply(&a).expect("local apply");
        assert_eq!(updated.nnz() as u64, s.nnz, "{what}: local apply agrees");

        // Post-update equivalence on the same handle, all engines.
        let x = dense_x(updated.cols());
        let (y_single, _, _) = single
            .spmv(handle, Engine::Cpu, x.clone())
            .expect("single cpu spmv post-update");
        let (y_routed, _, _) = routed
            .spmv(handle, Engine::Cpu, x.clone())
            .expect("routed cpu spmv post-update");
        assert_bits_equal(
            &y_single,
            &y_routed,
            &format!("{what}: cpu spmv post-update"),
        );
        assert_bits_equal(
            &updated.spmv(&x),
            &y_routed,
            &format!("{what}: routed post-update vs local reference"),
        );
        for engine in [Engine::Chason, Engine::Serpens] {
            let (y_single, _, _) = single
                .spmv(handle, engine, x.clone())
                .expect("single engine spmv post-update");
            let (y_routed, _, _) = routed
                .spmv(handle, engine, x.clone())
                .expect("routed engine spmv post-update");
            assert_ulp_equal(
                &updated,
                &x,
                &y_single,
                &y_routed,
                &format!("{what}: {engine:?} spmv post-update"),
            );
        }

        // CG still agrees bit-for-bit on cpu against the updated system.
        let s = single
            .solve(handle, Engine::Cpu, SolverKind::Cg, 300, 1e-5, b.clone())
            .expect("single cpu cg post-update");
        let r = routed
            .solve(handle, Engine::Cpu, SolverKind::Cg, 300, 1e-5, b.clone())
            .expect("routed cpu cg post-update");
        assert_eq!(s.iterations, r.iterations, "{what}: post-update iterations");
        assert_bits_equal(
            &s.solution,
            &r.solution,
            &format!("{what}: cpu cg post-update solution"),
        );
    }

    // The router's fan-out telemetry saw every shard.
    let metrics = routed.metrics().expect("router metrics");
    for k in 0..3 {
        let needle = format!("router_shard_requests_total{{shard=\"{k}\"}} 0");
        assert!(
            !metrics.contains(&needle),
            "shard {k} must have received requests:\n{metrics}"
        );
    }

    deployment.stop();
}
