//! Backward-compatibility tests for the on-disk interchange formats:
//! the CHPL binary plan artifact (`chason_core::export::write_plan`) and
//! the bit-exact `PerformanceReport` text record. Both are pinned by
//! committed fixtures under `tests/golden/` — a format change that cannot
//! read yesterday's bytes fails here before it ships.

use chason_conformance::golden;
use chason_core::export::{read_plan, write_plan};
use chason_core::plan::SpmvPlan;
use chason_core::schedule::SchedulerConfig;
use chason_sim::power::MeasuredPower;
use chason_sim::report::PerformanceReport;
use chason_sim::{AcceleratorConfig, ChasonEngine};
use chason_sparse::generators::power_law;
use chason_sparse::CooMatrix;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn sample_matrix() -> CooMatrix {
    power_law(96, 96, 700, 1.7, 31)
}

fn engine() -> ChasonEngine {
    ChasonEngine::new(AcceleratorConfig {
        sched: SchedulerConfig::toy(4, 4, 6),
        ..AcceleratorConfig::chason()
    })
}

fn sample_plan() -> SpmvPlan {
    engine().plan_with_threads(&sample_matrix(), 1).unwrap()
}

/// The CHPL codec round-trips a real planner output exactly, and the
/// committed fixture from a previous release still decodes to the same
/// plan — the format is stable, not merely self-consistent.
#[test]
fn chpl_plan_fixture_stays_readable() {
    let plan = sample_plan();
    let mut bytes = Vec::new();
    write_plan(&mut bytes, &plan).unwrap();
    assert_eq!(read_plan(&bytes[..]).unwrap(), plan, "in-memory round trip");

    let path = golden_path("plan_toy.chpl");
    golden::check_or_bless_bytes(&path, &bytes).unwrap_or_else(|e| panic!("{e}"));
    let committed = std::fs::read(&path).unwrap();
    assert_eq!(
        read_plan(&committed[..]).unwrap(),
        plan,
        "committed CHPL fixture no longer decodes to the original plan"
    );
}

/// The performance-report record renders f64 metrics as IEEE-754 bit
/// patterns, so the committed line is byte-stable and decodes bit-exactly.
#[test]
fn report_record_fixture_stays_readable() {
    let m = sample_matrix();
    let x: Vec<f32> = (0..m.cols()).map(|i| (i % 7) as f32 * 0.5 + 1.0).collect();
    let exec = engine().run(&m, &x).unwrap();
    let report = PerformanceReport::from_execution(&exec, 460.8, MeasuredPower::chason());

    let record = report.to_record();
    assert_eq!(
        PerformanceReport::from_record(&record).unwrap(),
        report,
        "in-memory round trip"
    );

    let path = golden_path("report_record.txt");
    golden::check_or_bless(&path, &format!("{record}\n")).unwrap_or_else(|e| panic!("{e}"));
    let committed = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        PerformanceReport::from_record(committed.trim_end()).unwrap(),
        report,
        "committed record no longer decodes to the original report"
    );
}
