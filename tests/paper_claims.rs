//! The paper's headline claims, asserted end to end at CI scale.
//!
//! Each test states one sentence from the paper and checks the reproduced
//! system exhibits it. Full-scale numbers live in `EXPERIMENTS.md`; these
//! are the fast invariant forms.

use chason::core::metrics::windowed_metrics;
use chason::core::schedule::{Crhcs, PeAware, SchedulerConfig};
use chason::sim::power::MeasuredPower;
use chason::sim::resources::{DeviceCapacity, ResourceConfig, ResourceUsage};
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::datasets::corpus;

const WINDOW: usize = chason::core::element::WINDOW;

/// "PE-aware non-zero scheduling still leaves around 70% of the PEs
/// underutilized" (§2.2) — the corpus median sits in the 60-90% band.
#[test]
fn claim_pe_aware_leaves_most_pes_idle() {
    let config = SchedulerConfig::paper();
    let mut values: Vec<f64> = corpus(16, 1)
        .into_iter()
        .filter(|s| s.nnz <= 60_000)
        .map(|s| {
            windowed_metrics(&PeAware::new(), &s.generate(), &config, WINDOW).underutilization_pct()
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = values[values.len() / 2];
    assert!(
        (55.0..95.0).contains(&median),
        "median PE-aware underutilization {median}% out of the paper's band"
    );
}

/// "CrHCS ... reduc[es] the percentage of stalls and effectively improv[es]
/// PE utilization" (§2.3) — strictly, on every skewed corpus matrix.
#[test]
fn claim_crhcs_always_improves() {
    let config = SchedulerConfig::paper();
    for spec in corpus(12, 2).into_iter().filter(|s| s.nnz <= 60_000) {
        let m = spec.generate();
        let pa = windowed_metrics(&PeAware::new(), &m, &config, WINDOW);
        let cr = windowed_metrics(&Crhcs::new(), &m, &config, WINDOW);
        assert!(
            cr.underutilization_pct() <= pa.underutilization_pct() + 1e-9,
            "corpus {}: crhcs {}% vs pe-aware {}%",
            spec.index,
            cr.underutilization_pct(),
            pa.underutilization_pct()
        );
    }
}

/// "Chasoň transfers approximately 7x less data than Serpens" (§6.2.2) —
/// the hub-heavy regime reaches a multi-x reduction.
#[test]
fn claim_data_transfer_reduction() {
    let m = chason::sparse::generators::arrow_with_nnz(3000, 4, 10, 36_000, 5);
    let x = vec![1.0f32; 3000];
    let ce = ChasonEngine::default().run(&m, &x).unwrap();
    let se = SerpensEngine::default().run(&m, &x).unwrap();
    let reduction = se.bytes_streamed as f64 / ce.bytes_streamed as f64;
    assert!(
        reduction > 3.0,
        "transfer reduction {reduction}x too small for a hub-heavy matrix"
    );
}

/// "Chasoň achieves ... up to 8x performance improvement over Serpens"
/// (abstract) — speedups over the skewed regime land in a 2-12x band and
/// never fall below 1.
#[test]
fn claim_speedup_band_over_serpens() {
    let chason = ChasonEngine::default();
    let serpens = SerpensEngine::default();
    for spec in corpus(10, 3).into_iter().filter(|s| s.nnz <= 60_000) {
        let m = spec.generate();
        let x = vec![1.0f32; m.cols()];
        let ce = chason.run_partitioned(&m, &x).unwrap();
        let se = serpens.run_partitioned(&m, &x).unwrap();
        let speedup = se.latency_seconds() / ce.latency_seconds();
        assert!(
            (1.0..=13.0).contains(&speedup),
            "corpus {}: speedup {speedup}x outside the plausible band",
            spec.index
        );
    }
}

/// "301 MHz ... outperforming the 223 MHz frequency of Serpens" (§4.5) and
/// the §6.2.2 energy story: Chasoň draws slightly more power yet wins on
/// GFLOPS/W.
#[test]
fn claim_frequency_and_energy() {
    assert_eq!(AcceleratorConfig::chason().clock_mhz, 301.0);
    assert_eq!(AcceleratorConfig::serpens().clock_mhz, 223.0);
    assert!(MeasuredPower::chason().watts > MeasuredPower::serpens().watts);

    let m = chason::sparse::generators::power_law(2048, 2048, 24_000, 1.7, 7);
    let x = vec![1.0f32; 2048];
    let ce = ChasonEngine::default().run(&m, &x).unwrap();
    let se = SerpensEngine::default().run(&m, &x).unwrap();
    let ee_c = MeasuredPower::chason().energy_efficiency(ce.throughput_gflops());
    let ee_s = MeasuredPower::serpens().energy_efficiency(se.throughput_gflops());
    assert!(
        ee_c > ee_s,
        "chason {ee_c} GFLOPS/W must beat serpens {ee_s}"
    );
}

/// "The total number of URAMs is 1024, which is more than the available
/// 960 ... bringing the total URAM usage down to 512 (52%)" (§4.5).
#[test]
fn claim_uram_budget() {
    let device = DeviceCapacity::alveo_u55c();
    assert_eq!(device.uram, 960);
    let full = ResourceUsage::estimate(&ResourceConfig {
        scug_urams: 7,
        ..ResourceConfig::chason()
    });
    assert_eq!(full.uram, 1024);
    assert!(!full.fits(&device), "the full design must not fit");
    let deployed = ResourceUsage::estimate(&ResourceConfig::chason());
    assert_eq!(deployed.uram, 512);
    assert!(deployed.fits(&device));
}

/// "Chasoň maintains the same level of parallelism as Serpens" (§4.4):
/// both run 16 PEGs x 8 PEs, and on a *balanced* matrix their stream
/// lengths are identical — the gains come only from stall removal.
#[test]
fn claim_identical_parallelism() {
    let m = chason::sparse::generators::uniform_random(4096, 4096, 50_000, 9);
    let x = vec![1.0f32; 4096];
    let ce = ChasonEngine::default().run(&m, &x).unwrap();
    let se = SerpensEngine::default().run(&m, &x).unwrap();
    // Same PEs, same beat width: identical MAC counts; stream within a few
    // percent on a balanced matrix (CrHCS finds little to migrate).
    assert_eq!(ce.mac_ops, se.mac_ops);
    let ratio = se.cycles.stream as f64 / ce.cycles.stream.max(1) as f64;
    assert!(
        (1.0..1.7).contains(&ratio),
        "balanced-matrix stream ratio {ratio} should be near 1"
    );
}
