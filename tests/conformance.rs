//! Root integration tests driving the `chason-conformance` harness: the
//! full small-corpus differential run, the committed golden cycle traces
//! (with the `UPDATE_GOLDEN=1` bless flow), the schedule fuzzer's
//! no-escapes guarantee, and the dynamic-matrix delta oracles
//! (spliced plans ≡ from-scratch plans across the corpus).

use chason_conformance::{
    corpus, fuzz, fuzz_deltas, golden, run_case, run_corpus, run_delta_cases, CorpusSize,
    DeltaKind, DeltaOptions, HarnessOptions,
};
use chason_sim::report::CycleTrace;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Every execution path agrees on every small-corpus matrix: the CPU
/// kernels bit-for-bit, the engines within ULP tolerance, and the
/// metamorphic cycle invariants hold throughout.
#[test]
fn small_corpus_is_conformant_across_all_paths() {
    let report = run_corpus(CorpusSize::Small, &HarnessOptions::default());
    assert_eq!(report.cases, 10);
    assert!(report.paths >= 100, "only {} paths compared", report.paths);
    assert!(
        report.is_clean(),
        "{}\n{}",
        report.summary(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Renders one golden line per small-corpus case and engine, under the
/// given planner thread counts.
fn render_traces(thread_counts: Vec<usize>) -> String {
    let options = HarnessOptions {
        thread_counts,
        ..HarnessOptions::default()
    };
    let mut out = String::new();
    for case in corpus(CorpusSize::Small) {
        let outcome = run_case(&case, &options);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        for exec in [outcome.serpens, outcome.chason].into_iter().flatten() {
            out.push_str(&format!(
                "{} {}\n",
                case.name,
                CycleTrace::from_execution(&exec)
            ));
        }
    }
    out
}

/// The committed cycle traces are byte-identical across runs and planner
/// thread counts, every line parses back losslessly, and the golden file
/// under `tests/golden/` matches (bless with `UPDATE_GOLDEN=1`).
#[test]
fn golden_cycle_traces_are_stable_and_thread_count_independent() {
    let traces = render_traces(vec![1, 2, 5]);
    let reordered = render_traces(vec![1, 3, 8]);
    assert_eq!(
        traces, reordered,
        "cycle traces must not depend on planner thread counts"
    );
    for line in traces.lines() {
        let (case, trace) = line.split_once(' ').expect("case-prefixed line");
        let parsed: CycleTrace = trace.parse().unwrap_or_else(|e| panic!("{case}: {e}"));
        assert_eq!(parsed.to_string(), trace, "{case} round trip");
    }
    golden::check_or_bless(&golden_path("cycle_traces_small.txt"), &traces)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// The schedule fuzzer injects all ten corruption kinds and every one is
/// caught by the static checker or a dynamic oracle — no escapes.
#[test]
fn fuzzer_catches_every_injected_corruption() {
    let outcome = fuzz(1, 40);
    assert!(outcome.iterations > outcome.skipped);
    assert!(
        outcome.covered_all_corruptions(),
        "not all ten corruptions were applied: {:?}",
        outcome.detections.keys().collect::<Vec<_>>()
    );
    assert!(
        outcome.is_clean(),
        "escapes:\n{}",
        outcome
            .escapes
            .iter()
            .map(|e| format!(
                "iter {} {} on {}",
                e.iteration,
                e.corruption.name(),
                e.matrix
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The table names each corruption and at least one catching layer.
    let table = outcome.detection_table();
    assert_eq!(table.lines().count(), 12, "header + divider + ten rows");
}

/// Every spliced plan across the full small corpus — both engines, all
/// four delta kinds, under a toy geometry with a narrow window so the
/// matrices span several column windows — is bit-identical to a
/// from-scratch plan of the updated matrix, replays to the CPU
/// reference, conserves its cycle report, and passes `chason-verify`.
#[test]
fn delta_splices_equal_scratch_plans_across_the_corpus() {
    use chason_core::schedule::SchedulerConfig;
    let options = DeltaOptions {
        sched: SchedulerConfig::toy(4, 4, 6),
        window: Some(32),
        deltas_per_case: 2,
        ..DeltaOptions::default()
    };
    let cases = corpus(CorpusSize::Small);
    let report = run_delta_cases(&cases, &options);
    assert_eq!(report.deltas, cases.len() * 2 * DeltaKind::ALL.len());
    assert_eq!(report.checks, report.deltas * 2, "both engines per delta");
    assert!(
        report.is_clean(),
        "{}\n{}",
        report.summary(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The delta-splice fuzzer: random insert/delete/revalue batches spliced
/// into cached plans must always equal scratch plans and replay clean on
/// bare PEGs — no escapes, every kind exercised.
#[test]
fn delta_fuzzer_finds_no_splice_escapes() {
    let outcome = fuzz_deltas(1, 48);
    assert!(outcome.covered_all_kinds(), "{:?}", outcome.per_kind);
    assert!(
        outcome.is_clean(),
        "escapes:\n{}\n{}",
        outcome
            .escapes
            .iter()
            .map(|e| format!(
                "iter {} {} on {}: {}",
                e.iteration,
                e.kind.name(),
                e.matrix,
                e.detail
            ))
            .collect::<Vec<_>>()
            .join("\n"),
        outcome.equivalence_table()
    );
    for (kind, stats) in &outcome.per_kind {
        assert_eq!(stats.equivalent, stats.applied, "{kind}");
        assert_eq!(stats.replay_clean, stats.applied, "{kind}");
    }
}
