//! Integration tests for the paper's extension features: multi-hop
//! migration (§6.1), SpMM (§7.2), and row partitioning (§4.5).

use chason::baselines::reference;
use chason::core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
use chason::sim::spmm::reference_spmm;
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::generators::{arrow_with_nnz, power_law};
use chason::sparse::DenseMatrix;

fn hops_config(hops: usize) -> SchedulerConfig {
    SchedulerConfig {
        migration_hops: hops,
        ..SchedulerConfig::paper()
    }
}

/// Multi-hop migration preserves every scheduler invariant and keeps
/// improving (or at least not regressing) the schedule.
#[test]
fn multi_hop_scheduling_is_sound_and_monotone() {
    let matrix = arrow_with_nnz(2048, 4, 8, 30_000, 11);
    let baseline = PeAware::new().schedule(&matrix, &hops_config(1));
    let mut prev = baseline.underutilization();
    for hops in 1..=3 {
        let config = hops_config(hops);
        let s = Crhcs::new().schedule(&matrix, &config);
        s.validate(&matrix)
            .unwrap_or_else(|e| panic!("hops = {hops}: {e}"));
        let u = s.underutilization();
        assert!(u <= prev + 1e-12, "hops {hops} regressed: {u} > {prev}");
        prev = u;
    }
}

/// The engine executes multi-hop schedules correctly: migrated partial sums
/// from *two* donor channels route through distinct ScUG bank groups and
/// still reduce to the right rows.
#[test]
fn multi_hop_execution_matches_reference() {
    let matrix = arrow_with_nnz(1500, 4, 6, 20_000, 13);
    let x: Vec<f32> = (0..1500).map(|i| 0.5 + (i % 11) as f32 * 0.125).collect();
    let oracle = reference::spmv(&matrix, &x);
    for hops in 1..=3 {
        let config = AcceleratorConfig {
            sched: hops_config(hops),
            ..AcceleratorConfig::chason()
        };
        let exec = ChasonEngine::new(config).run(&matrix, &x).unwrap();
        let err = reference::max_relative_error(&exec.y, &oracle);
        assert!(err < 1e-3, "hops = {hops}: error {err}");
        assert_eq!(exec.mac_ops as usize, matrix.nnz());
    }
}

/// SpMM on both engines agrees with the dense oracle, including the α/β
/// scaling, and Chasoň is no slower than Serpens.
#[test]
fn spmm_extension_end_to_end() {
    let a = power_law(400, 400, 3_000, 1.7, 3);
    let b = DenseMatrix::from_fn(400, 20, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0);
    let c0 = DenseMatrix::from_fn(400, 20, |r, c| ((r ^ c) % 4) as f32);
    let oracle = reference_spmm(&a, &b, 1.25, -0.5, &c0);

    let chason = ChasonEngine::default()
        .run_spmm(&a, &b, 1.25, -0.5, &c0)
        .unwrap();
    let serpens = SerpensEngine::default()
        .run_spmm(&a, &b, 1.25, -0.5, &c0)
        .unwrap();
    assert!(chason.c.max_abs_diff(&oracle) < 1e-2);
    assert!(serpens.c.max_abs_diff(&oracle) < 1e-2);
    assert_eq!(chason.tiles, 3);
    assert_eq!(chason.mac_ops, 3_000 * 20);
    assert!(chason.latency_seconds() <= serpens.latency_seconds());
}

/// Row partitioning composes with windowing: a matrix that is both too tall
/// (URAM capacity) and too wide (several column windows) still executes
/// correctly.
#[test]
fn partitioned_and_windowed_execution_composes() {
    use chason::sparse::generators::uniform_random;
    // Tiny machine: 2 channels x 2 PEs, capacity forces 3 row passes; the
    // 20_000 columns force 3 column windows per pass.
    let config = AcceleratorConfig {
        sched: SchedulerConfig::toy(2, 2, 4),
        ..AcceleratorConfig::chason()
    };
    let matrix = uniform_random(70_000, 20_000, 40_000, 17);
    let x: Vec<f32> = (0..20_000).map(|i| ((i % 13) as f32) * 0.2).collect();
    let exec = ChasonEngine::new(config)
        .run_partitioned(&matrix, &x)
        .unwrap();
    let oracle = reference::spmv(&matrix, &x);
    let err = reference::max_relative_error(&exec.y, &oracle);
    assert!(err < 1e-3, "error {err}");
    assert!(
        exec.windows >= 9,
        "expected >= 3 passes x 3 windows, got {}",
        exec.windows
    );
}
