//! End-to-end integration: generate → schedule → simulate → verify, across
//! crates, on the evaluation catalogs.

use chason::baselines::reference;
use chason::core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
use chason::sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason::sparse::datasets::{corpus, table2};

/// The smaller Table 2 matrices run through both engines and must agree
/// with the CPU reference.
#[test]
fn table2_small_matrices_execute_correctly_on_both_engines() {
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
    for spec in table2().into_iter().filter(|s| s.nnz < 120_000) {
        let matrix = spec.generate();
        let x: Vec<f32> = (0..matrix.cols())
            .map(|i| 0.5 + (i % 5) as f32 * 0.25)
            .collect();
        let oracle = reference::spmv(&matrix, &x);

        let ce = chason
            .run(&matrix, &x)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let se = serpens
            .run(&matrix, &x)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let err_c = reference::max_relative_error(&ce.y, &oracle);
        let err_s = reference::max_relative_error(&se.y, &oracle);
        assert!(err_c < 1e-3, "{}: chason error {err_c}", spec.name);
        assert!(err_s < 1e-3, "{}: serpens error {err_s}", spec.name);
        assert_eq!(ce.mac_ops as usize, matrix.nnz(), "{}", spec.name);

        // The headline claims, per matrix.
        assert!(
            ce.underutilization <= se.underutilization + 1e-9,
            "{}: chason {} vs serpens {}",
            spec.name,
            ce.underutilization,
            se.underutilization
        );
        assert!(
            ce.latency_seconds() <= se.latency_seconds(),
            "{}: chason should not be slower",
            spec.name
        );
    }
}

/// Scheduler invariants hold over a corpus sample for both schedulers.
#[test]
fn corpus_sample_upholds_scheduler_invariants() {
    let config = SchedulerConfig::paper();
    for spec in corpus(10, 99).into_iter().filter(|s| s.nnz < 60_000) {
        let matrix = spec.generate();
        // Invariants are defined per scheduled window; narrow matrices are
        // a single window.
        if matrix.cols() > chason::core::element::WINDOW {
            continue;
        }
        let s = PeAware::new().schedule(&matrix, &config);
        s.validate(&matrix)
            .unwrap_or_else(|e| panic!("pe-aware on corpus {}: {e}", spec.index));
        let c = Crhcs::new().schedule(&matrix, &config);
        c.validate(&matrix)
            .unwrap_or_else(|e| panic!("crhcs on corpus {}: {e}", spec.index));
    }
}

/// CrHCS data lists round-trip through the wire format with flags intact.
#[test]
fn crhcs_data_lists_round_trip_the_wire_format() {
    use chason::core::element::SparseElement;
    let config = SchedulerConfig::paper();
    let matrix = chason::sparse::generators::power_law(1024, 1024, 6000, 1.8, 5);
    let schedule = Crhcs::new().schedule(&matrix, &config);
    let lists = schedule.data_lists_padded();
    assert_eq!(lists.len(), 16);
    let len = lists[0].len();
    let mut nonzeros = 0usize;
    let mut migrated = 0usize;
    for list in &lists {
        assert_eq!(list.len(), len, "padded lists are equal length");
        for &word in list {
            if let Some(e) = SparseElement::unpack(word) {
                nonzeros += 1;
                if !e.pvt {
                    migrated += 1;
                }
            }
        }
    }
    assert_eq!(nonzeros, matrix.nnz());
    assert!(migrated > 0, "skewed matrix must trigger migration");
}

/// The accelerator handles matrices wider than one window (x reloads).
#[test]
fn multi_window_execution_is_correct() {
    let matrix = chason::sparse::generators::uniform_random(256, 30_000, 20_000, 8);
    let x: Vec<f32> = (0..30_000).map(|i| ((i % 97) as f32) * 0.01).collect();
    let exec = ChasonEngine::new(AcceleratorConfig::chason())
        .run(&matrix, &x)
        .unwrap();
    assert_eq!(exec.windows, 4);
    let oracle = reference::spmv(&matrix, &x);
    assert!(reference::max_relative_error(&exec.y, &oracle) < 1e-3);
}

/// HBM traffic accounting is consistent between the engine and the HBM
/// crate's channel model.
#[test]
fn traffic_accounting_is_consistent() {
    use chason::hbm::{traffic::TrafficSummary, Channel, HbmConfig};
    let config = SchedulerConfig::paper();
    let matrix = chason::sparse::generators::power_law(2048, 2048, 12_000, 1.6, 4);
    let schedule = PeAware::new().schedule(&matrix, &config);
    let lists = schedule.data_lists_padded();
    let channels: Vec<Channel> = lists
        .into_iter()
        .enumerate()
        .map(|(i, data)| Channel::with_data(i, data))
        .collect();
    let hbm = HbmConfig::alveo_u55c();
    let summary = TrafficSummary::measure(&channels, &hbm);
    // Engine accounting: stream_cycles beats per channel (8 words = 1 beat).
    let exec = SerpensEngine::new(AcceleratorConfig::serpens())
        .run(&matrix, &vec![1.0; 2048])
        .unwrap();
    assert_eq!(summary.bytes, exec.bytes_streamed, "bytes must agree");
}
