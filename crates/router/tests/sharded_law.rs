//! The sharding law behind the router: row-block sharded SpMV equals
//! single-instance SpMV.
//!
//! Stated at the plan level (no sockets): for any matrix and any shard
//! count, planning each row-block slice independently, running the
//! slices, and reducing the partials by row placement yields the same
//! vector as one full-matrix plan — bit-identical on the CPU reference
//! (slicing preserves per-row accumulation order) and ULP-equivalent on
//! the modeled engines (whose column windows re-associate sums within a
//! slice).

use chason_conformance::ulp::{compare, row_scales, UlpTolerance};
use chason_sim::{
    plan_shards, run_sharded, AcceleratorConfig, ChasonEngine, PlanningEngine, SerpensEngine,
};
use chason_sparse::shard::ShardSpec;
use chason_sparse::CooMatrix;
use chason_testutil::{archetype_corpus, dense_x, sparse_matrix_nonempty};
use proptest::prelude::*;

fn check_engine<E: PlanningEngine>(
    engine: &E,
    name: &str,
    matrix: &CooMatrix,
    spec: &ShardSpec,
    x: &[f32],
    scales: &[f32],
) {
    let full_plan = engine.plan(matrix).expect("full plan");
    let full = engine.run_planned(&full_plan, x).expect("full run");
    let sharded_plan = plan_shards(engine, matrix, spec).expect("shard plans");
    let sharded = run_sharded(engine, &sharded_plan, x).expect("sharded run");
    let rejects = compare(&full.y, &sharded.y, scales, &UlpTolerance::default());
    assert!(
        rejects.is_empty(),
        "{name}: sharded result diverges from full run over {} shards at {} rows: {:?}",
        spec.shards(),
        matrix.rows(),
        &rejects[..rejects.len().min(5)]
    );
    assert!(
        sharded.max_latency_seconds <= sharded.total_latency_seconds + 1e-12,
        "{name}: max per-shard latency {} exceeds the serial total {}",
        sharded.max_latency_seconds,
        sharded.total_latency_seconds
    );
}

fn check_all(matrix: &CooMatrix, shards: usize) {
    let shards = shards.clamp(1, matrix.rows());
    let spec = ShardSpec::nnz_balanced(matrix, shards).expect("nnz-balanced spec");
    let x = dense_x(matrix.cols());
    let scales = row_scales(matrix, &x);

    // CPU reference: slicing preserves the per-row accumulation order, so
    // the gathered vector is bit-identical, not merely close.
    let full_cpu = matrix.spmv(&x);
    let partials: Vec<Vec<f32>> = (0..spec.shards())
        .map(|k| spec.slice(matrix, k).expect("slice").spmv(&x))
        .collect();
    let gathered = spec.gather(&partials).expect("gather");
    assert_eq!(
        full_cpu.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        gathered.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "cpu gather must be bit-identical over {shards} shards"
    );

    check_engine(
        &ChasonEngine::new(AcceleratorConfig::chason()),
        "chason",
        matrix,
        &spec,
        &x,
        &scales,
    );
    check_engine(
        &SerpensEngine::new(AcceleratorConfig::serpens()),
        "serpens",
        matrix,
        &spec,
        &x,
        &scales,
    );
}

#[test]
fn archetype_corpus_obeys_the_sharding_law() {
    for (name, matrix) in archetype_corpus() {
        for shards in [1, 2, 3, 5] {
            if matrix.nnz() == 0 {
                continue;
            }
            eprintln!("corpus {name}: {shards} shards");
            check_all(&matrix, shards);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_matrices_obey_the_sharding_law(
        matrix in sparse_matrix_nonempty(40, 200),
        shards in 1usize..5,
    ) {
        check_all(&matrix, shards);
    }
}
