//! Router failure modes over real sockets: a shard down at load time, a
//! shard dying between solves, and out-of-band shard mutation detected as
//! version skew. In every case the failure must surface as a typed CHSP
//! error and the router must keep serving.

use chason_core::plan::matrix_fingerprint;
use chason_router::{Router, RouterConfig};
use chason_serve::client::{Client, ClientError, RetryPolicy};
use chason_serve::proto::{Engine, ErrorCode, SolverKind};
use chason_serve::server::{ServeConfig, Server};
use chason_sparse::shard::ShardSpec;
use chason_testutil::spd_system;
use std::time::Duration;

fn start_shard() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("shard binds an ephemeral port")
}

fn start_router(shards: &[&Server]) -> Router {
    Router::start(RouterConfig {
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        workers: 2,
        // Fail fast in tests: two attempts, millisecond back-off.
        shard_retry: RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 1,
            max_delay_ms: 5,
            seed: 7,
        },
        health_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("router binds an ephemeral port")
}

fn server_code(err: ClientError) -> ErrorCode {
    match err {
        ClientError::Server { code, .. } => code,
        other => panic!("expected a typed server error, got {other:?}"),
    }
}

#[test]
fn load_with_a_dead_shard_is_shard_unavailable_and_router_survives() {
    let alive = start_shard();
    let dead = start_shard();
    let dead_addr = dead.local_addr();
    dead.shutdown();
    dead.join();

    let router = Router::start(RouterConfig {
        shards: vec![alive.local_addr().to_string(), dead_addr.to_string()],
        workers: 2,
        shard_retry: RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 1,
            max_delay_ms: 5,
            seed: 7,
        },
        ..RouterConfig::default()
    })
    .expect("router starts with a dead backend");

    let (a, _) = spd_system(32, 11);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let err = client.load_matrix(&a).expect_err("load must fail");
    assert_eq!(server_code(err), ErrorCode::ShardUnavailable);

    // The router itself stays responsive and reports the dead shard.
    let stats = client.stats().expect("stats after failed load");
    assert_eq!(stats.requests_load, 1);
    assert_eq!(stats.matrices_resident, 0, "no partial mapping is kept");
    assert!(
        router.shards_up() <= 1,
        "the dead shard must be marked down"
    );

    client.shutdown().expect("router shutdown");
    router.join();
    alive.shutdown();
    alive.join();
}

#[test]
fn shard_dying_mid_stream_fails_solves_typed_and_router_stays_up() {
    let shards = [start_shard(), start_shard(), start_shard()];
    let router = start_router(&[&shards[0], &shards[1], &shards[2]]);
    let mut client = Client::connect(router.local_addr()).expect("connect");

    let (a, b) = spd_system(48, 3);
    let (handle, fresh) = client.load_matrix(&a).expect("load through router");
    assert!(fresh);

    // Healthy fan-out first: the distributed solve converges.
    let outcome = client
        .solve(handle, Engine::Chason, SolverKind::Cg, 200, 1e-4, b.clone())
        .expect("distributed solve");
    assert!(outcome.converged, "residual {}", outcome.residual);

    // Kill one backend, then drive the same matrix again.
    let [s0, s1, s2] = shards;
    s1.shutdown();
    s1.join();

    let err = client
        .solve(handle, Engine::Chason, SolverKind::Cg, 200, 1e-4, b.clone())
        .expect_err("solve must fail with a shard down");
    assert_eq!(server_code(err), ErrorCode::ShardUnavailable);
    let err = client
        .spmv(handle, Engine::Cpu, vec![1.0; a.cols()])
        .expect_err("spmv must fail with a shard down");
    assert_eq!(server_code(err), ErrorCode::ShardUnavailable);

    // The router survives the dead backend: inline requests still answer
    // and the counters reflect the failed fan-outs.
    let stats = client.stats().expect("stats after shard death");
    assert_eq!(stats.requests_solve, 2);
    assert_eq!(stats.requests_spmv, 1);
    let metrics = client.metrics().expect("metrics after shard death");
    assert!(
        metrics.contains("router_scatter_failures_total 2"),
        "scatter failures must be counted:\n{metrics}"
    );
    assert!(
        metrics.contains("router_shard_up{shard=\"1\"} 0"),
        "shard 1 must be reported down:\n{metrics}"
    );

    client.shutdown().expect("router shutdown");
    router.join();
    s0.shutdown();
    s0.join();
    s2.shutdown();
    s2.join();
}

#[test]
fn out_of_band_shard_update_is_detected_as_version_skew() {
    let shards = [start_shard(), start_shard(), start_shard()];
    let router = start_router(&[&shards[0], &shards[1], &shards[2]]);
    let mut client = Client::connect(router.local_addr()).expect("connect");

    let (a, _) = spd_system(48, 5);
    let (handle, _) = client.load_matrix(&a).expect("load through router");

    // Mutate shard 0 behind the router's back: compute the slice handle
    // the router scattered and update it directly on the backend.
    let spec = ShardSpec::nnz_balanced(&a, 3).expect("spec");
    let slice0 = spec.slice(&a, 0).expect("slice");
    let shard_handle = matrix_fingerprint(&slice0);
    let &(r, c, v) = slice0.iter().next().expect("slice has entries");
    let mut backdoor = Client::connect(shards[0].local_addr()).expect("connect to shard");
    let outcome = backdoor
        .update(
            shard_handle,
            vec![],
            vec![(r as u64, c as u64, v + 1.0)],
            vec![],
        )
        .expect("direct shard update");
    assert_eq!(outcome.version, 1);

    // A router update touching shard 0 must detect the skew: the shard
    // reports v2 where the router expected v1.
    let (start0, _) = spec.range(0);
    let global_row = (start0 + r) as u64;
    let err = client
        .update(
            handle,
            vec![],
            vec![(global_row, c as u64, v + 2.0)],
            vec![],
        )
        .expect_err("update must detect version skew");
    assert_eq!(server_code(err), ErrorCode::PartialGather);

    // The poisoned mapping is gone...
    let err = client
        .spmv(handle, Engine::Cpu, vec![1.0; a.cols()])
        .expect_err("mapping must have been dropped");
    assert_eq!(server_code(err), ErrorCode::UnknownHandle);

    // ...and a reload sees the diverged slice lineage on shard 0 and
    // refuses to route against mixed generations.
    let err = client
        .load_matrix(&a)
        .expect_err("reload must refuse divergence");
    assert_eq!(server_code(err), ErrorCode::PartialGather);

    client.shutdown().expect("router shutdown");
    router.join();
    for s in shards {
        s.shutdown();
        s.join();
    }
}
