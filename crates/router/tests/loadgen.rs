//! `chason loadgen --router` end to end: a mixed churned workload against
//! a 3-shard router completes cleanly and the report carries the parsed
//! fan-out summary (per-shard balance, gather percentiles).

use chason_router::{Router, RouterConfig};
use chason_serve::loadgen::{run, LoadgenOptions};
use chason_serve::server::{ServeConfig, Server};

#[test]
fn churned_router_run_is_clean_and_reports_fanout_balance() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let shards: Vec<Server> = (0..3)
        .map(|_| Server::start(config.clone()).expect("shard"))
        .collect();
    let router = Router::start(RouterConfig {
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        workers: 4,
        ..RouterConfig::default()
    })
    .expect("router");

    let report = run(&LoadgenOptions {
        connections: 3,
        requests: 60,
        seed: 11,
        addr: Some(router.local_addr().to_string()),
        require_hits: false,
        churn: 20,
        router: true,
        ..LoadgenOptions::default()
    })
    .expect("router loadgen run");

    assert_eq!(report.completed, 60);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.by_type[2], 0, "router mode sends no plan fetches");
    assert!(
        report.by_type[4] > 0,
        "20% churn must send updates: {:?}",
        report.by_type
    );
    let fanout = report.router.as_ref().expect("router section");
    assert_eq!(fanout.shards_total, 3);
    assert_eq!(fanout.shards_up, 3);
    assert_eq!(fanout.scatter_failures, 0);
    assert!(
        fanout.shard_requests.iter().all(|&n| n > 0),
        "every shard must receive traffic: {:?}",
        fanout.shard_requests
    );
    assert!(
        fanout.request_balance < 1.5,
        "row-block fan-out must stay balanced: {:?} ({:.2})",
        fanout.shard_requests,
        fanout.request_balance
    );
    assert!(fanout.nnz_balance_pct >= 100, "max/mean is at least 100%");
    let (_, _, p99, max) = fanout.gather_micros;
    assert!(p99 <= max, "percentiles are clamped to the exact max");
    assert!(max > 0, "gather latency was recorded");
    let json = report.render_json();
    assert!(json.contains("\"router\":{\"shards_up\":3"), "{json}");
    assert!(report.render().contains("--- router ---"));

    // The report left the deployment running; drain it explicitly.
    router.shutdown();
    router.join();
    for s in shards {
        s.shutdown();
        s.join();
    }
}
