//! `chason route`: a CHSP scatter-gather frontend over sharded
//! `chason serve` backends.
//!
//! The router speaks CHSP v1 to clients — the same wire protocol, the
//! same [`chason_serve::client::Client`] works against it — and fans each
//! request out to N backend shards, each a stock `chason serve` process
//! owning one contiguous row block of every matrix (the software analogue
//! of the paper's per-channel data placement; see DESIGN.md §14):
//!
//! * `LoadMatrix` partitions the matrix with an nnz-balancing
//!   [`ShardSpec`](chason_sparse::shard::ShardSpec) and scatters one
//!   row-block slice per shard, remembering each shard's handle and
//!   matrix version so PR 8's version-aware plan caching keeps working
//!   end to end.
//! * `Spmv` broadcasts the dense vector, gathers the per-shard partial
//!   products, and reduces them by row-range placement — the distributed
//!   Reduction Unit. Row-block partitioning keeps every output row on
//!   exactly one shard, so the reduction adds no floating-point ops and
//!   the gathered vector is bit-identical to a single-instance run on
//!   the `cpu` engine (ULP-equivalent on the modeled accelerators).
//! * `Solve` runs the CG/Jacobi outer loop in the router, distributing
//!   every per-iteration SpMV.
//! * `UpdateMatrix` routes delta operations by row footprint to only the
//!   shards they touch, then cross-checks the returned versions.
//! * Failures surface as the typed
//!   [`ErrorCode::ShardUnavailable`](chason_serve::proto::ErrorCode) /
//!   [`ErrorCode::PartialGather`](chason_serve::proto::ErrorCode) wire
//!   errors; per-shard `Busy` replies are retried with bounded jittered
//!   back-off before being propagated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod router;
pub mod shards;
pub mod stats;

pub use router::{Router, RouterConfig};
pub use shards::{HealthBoard, ShardConn, ShardError, ShardErrorKind};
pub use stats::RouterStats;
