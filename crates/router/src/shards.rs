//! Per-shard connection management: pooled blocking clients with
//! reconnect-on-failure, bounded `Busy` retry, and a shared liveness
//! board.
//!
//! Each router worker owns one [`ShardConn`] per backend, so scatter
//! traffic never contends on a shared connection lock; the only shared
//! state is the [`HealthBoard`] of atomic liveness flags, written both by
//! the background health checker and by workers observing failures
//! first-hand.

use chason_serve::client::{Client, ClientError, RetryPolicy};
use chason_serve::proto::{ErrorCode, Reply, Request};
use chason_telemetry::metrics::Counter;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What went wrong talking to one shard.
#[derive(Debug)]
pub enum ShardErrorKind {
    /// Could not connect, the connection broke mid-request, or the shard
    /// is draining for shutdown.
    Unavailable(String),
    /// The shard still shed the request after every allowed retry.
    Busy {
        /// The shard's last back-off hint.
        retry_after_ms: u32,
    },
    /// The shard answered with a typed CHSP error.
    Server {
        /// The shard's error code.
        code: ErrorCode,
        /// The shard's rendered message.
        message: String,
    },
    /// The shard answered with a reply of the wrong type for the request.
    Unexpected(String),
}

/// A failure attributed to a specific shard.
#[derive(Debug)]
pub struct ShardError {
    /// Index of the failing shard in the router's backend list.
    pub shard: usize,
    /// Failure class.
    pub kind: ShardErrorKind,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ShardErrorKind::Unavailable(detail) => {
                write!(f, "shard {} unavailable: {detail}", self.shard)
            }
            ShardErrorKind::Busy { retry_after_ms } => write!(
                f,
                "shard {} still busy after retries; last hint {retry_after_ms} ms",
                self.shard
            ),
            ShardErrorKind::Server { code, message } => {
                write!(f, "shard {} error ({code:?}): {message}", self.shard)
            }
            ShardErrorKind::Unexpected(what) => {
                write!(f, "shard {} sent an unexpected reply: {what}", self.shard)
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Shared per-shard liveness flags.
///
/// Written by the health-check thread (periodic `Stats` pings) and by
/// workers when a request fails or succeeds; read by [`Stats`] reporting.
/// The board is advisory — workers always attempt the request rather than
/// fast-failing on a stale flag.
#[derive(Debug)]
pub struct HealthBoard {
    up: Vec<AtomicBool>,
}

impl HealthBoard {
    /// A board with every shard optimistically marked up.
    pub fn new(shards: usize) -> Self {
        HealthBoard {
            up: (0..shards).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.up.len()
    }

    /// Marks shard `k` up or down.
    pub fn set(&self, k: usize, up: bool) {
        if let Some(flag) = self.up.get(k) {
            flag.store(up, Ordering::SeqCst);
        }
    }

    /// Whether shard `k` was up at last contact.
    pub fn is_up(&self, k: usize) -> bool {
        self.up
            .get(k)
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Shards currently marked up.
    pub fn up_count(&self) -> usize {
        self.up
            .iter()
            .filter(|flag| flag.load(Ordering::SeqCst))
            .count()
    }
}

/// One worker's pooled connection to one backend shard.
///
/// Connects lazily, reconnects after I/O failures (resending at most once
/// and only for idempotent requests), and retries `Busy` replies with the
/// policy's bounded jittered back-off before giving up.
#[derive(Debug)]
pub struct ShardConn {
    index: usize,
    addr: String,
    client: Option<Client>,
    retry: RetryPolicy,
    jitter: u64,
    health: Arc<HealthBoard>,
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
}

impl ShardConn {
    /// Creates an unconnected conn for shard `index` at `addr`.
    ///
    /// `requests` / `retries` / `reconnects` are the telemetry counters
    /// this conn bumps (resolved once so the hot path has no name
    /// lookups); `jitter_seed` desynchronises this conn's back-off from
    /// its siblings'.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        addr: String,
        retry: RetryPolicy,
        jitter_seed: u64,
        health: Arc<HealthBoard>,
        requests: Arc<Counter>,
        retries: Arc<Counter>,
        reconnects: Arc<Counter>,
    ) -> Self {
        ShardConn {
            index,
            addr,
            client: None,
            retry,
            jitter: jitter_seed,
            health,
            requests,
            retries,
            reconnects,
        }
    }

    /// The shard index this conn serves.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The backend address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Drops the pooled connection (the next call reconnects).
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    fn error(&self, kind: ShardErrorKind) -> ShardError {
        ShardError {
            shard: self.index,
            kind,
        }
    }

    /// Sends one request, pooling the connection across calls.
    ///
    /// * `Busy` replies are retried up to the policy's attempt budget,
    ///   sleeping the maximum of the shard's hint and the jittered
    ///   exponential back-off.
    /// * On an I/O or protocol failure the connection is dropped; if the
    ///   failure hit a pooled (possibly stale) connection and
    ///   `resend_safe` is set, the conn reconnects and resends once.
    ///   Non-idempotent requests (`Update`) must pass `resend_safe =
    ///   false` — a reply lost in transit may mean the shard already
    ///   applied the delta.
    /// * A `ShuttingDown` reply counts as unavailable: the shard is
    ///   refusing new work.
    ///
    /// # Errors
    ///
    /// [`ShardError`] attributing the failure to this shard.
    pub fn call(&mut self, request: &Request, resend_safe: bool) -> Result<Reply, ShardError> {
        let mut busy_attempts = 0u32;
        let mut resends_left = u32::from(resend_safe);
        loop {
            let pooled = self.client.is_some();
            let client = match self.client.as_mut() {
                Some(client) => client,
                None => match Client::connect(&self.addr) {
                    Ok(client) => self.client.insert(client),
                    Err(e) => {
                        self.health.set(self.index, false);
                        return Err(self.error(ShardErrorKind::Unavailable(format!(
                            "connect to {} failed: {e}",
                            self.addr
                        ))));
                    }
                },
            };
            self.requests.add(1);
            let result = client.request(request);
            match result {
                Ok(Reply::Busy { retry_after_ms }) => {
                    busy_attempts += 1;
                    if busy_attempts >= self.retry.max_attempts.max(1) {
                        return Err(self.error(ShardErrorKind::Busy { retry_after_ms }));
                    }
                    self.retries.add(1);
                    let sleep_ms =
                        self.retry
                            .backoff_ms(busy_attempts - 1, retry_after_ms, &mut self.jitter);
                    std::thread::sleep(Duration::from_millis(sleep_ms));
                }
                Ok(Reply::Error {
                    code: ErrorCode::ShuttingDown,
                    message,
                }) => {
                    self.client = None;
                    self.health.set(self.index, false);
                    return Err(self.error(ShardErrorKind::Unavailable(format!(
                        "shard is draining: {message}"
                    ))));
                }
                Ok(Reply::Error { code, message }) => {
                    // The shard is alive and answered; the request failed.
                    self.health.set(self.index, true);
                    return Err(self.error(ShardErrorKind::Server { code, message }));
                }
                Ok(reply) => {
                    self.health.set(self.index, true);
                    return Ok(reply);
                }
                Err(ClientError::Io(e)) => {
                    self.client = None;
                    if pooled && resends_left > 0 {
                        // A pooled connection may simply have gone stale
                        // (shard restarted, idle timeout): reconnect and
                        // resend once.
                        resends_left -= 1;
                        self.reconnects.add(1);
                        continue;
                    }
                    self.health.set(self.index, false);
                    return Err(self.error(ShardErrorKind::Unavailable(e.to_string())));
                }
                Err(other) => {
                    self.client = None;
                    self.health.set(self.index, false);
                    return Err(self.error(ShardErrorKind::Unavailable(other.to_string())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_board_flags_flip() {
        let board = HealthBoard::new(3);
        assert_eq!(board.up_count(), 3);
        board.set(1, false);
        assert!(!board.is_up(1));
        assert!(board.is_up(0));
        assert_eq!(board.up_count(), 2);
        board.set(1, true);
        assert_eq!(board.up_count(), 3);
        // Out-of-range indexes are ignored, not panics.
        board.set(9, false);
        assert!(!board.is_up(9));
    }

    #[test]
    fn dead_address_is_unavailable() {
        let board = Arc::new(HealthBoard::new(1));
        let counter = || Arc::new(Counter::new());
        let mut conn = ShardConn::new(
            0,
            // Reserved port on localhost: connect fails fast.
            "127.0.0.1:1".to_string(),
            RetryPolicy::default(),
            7,
            Arc::clone(&board),
            counter(),
            counter(),
            counter(),
        );
        let err = conn.call(&Request::Stats, true).unwrap_err();
        assert_eq!(err.shard, 0);
        assert!(matches!(err.kind, ShardErrorKind::Unavailable(_)), "{err}");
        assert!(!board.is_up(0));
    }
}
