//! Router telemetry: the standard `chsp_*` service counters plus
//! router-specific `router_*` metrics, all in one registry so a single
//! `Metrics` reply exposes both families.
//!
//! Per-shard metrics embed the shard index as a Prometheus-style label in
//! the metric name (`router_shard_requests_total{shard="0"}`), matching
//! the repo's hand-rolled exposition format.

use chason_serve::stats::ServerStats;
use chason_telemetry::metrics::{Counter, Gauge, Histogram};
use std::sync::Arc;

/// All router telemetry; shared by every connection and worker thread.
#[derive(Debug)]
pub struct RouterStats {
    /// The standard CHSP service counters (requests by opcode, shed,
    /// queue depth, service/queue-wait histograms) under `chsp_*`.
    pub inner: ServerStats,
    /// Requests actually sent to each shard, retries included
    /// (`router_shard_requests_total{shard="k"}`).
    pub shard_requests: Vec<Arc<Counter>>,
    /// Last observed liveness per shard, 1 = up
    /// (`router_shard_up{shard="k"}`).
    pub shard_up: Vec<Arc<Gauge>>,
    /// Wall-clock scatter-to-gather time of distributed operations
    /// (`router_gather_micros`).
    pub gather_micros: Arc<Histogram>,
    /// `max/mean` shard nnz load of the most recently sharded matrix, in
    /// percent — 100 is perfectly balanced
    /// (`router_nnz_balance_pct`).
    pub nnz_balance_pct: Arc<Gauge>,
    /// Scatters that failed on at least one shard
    /// (`router_scatter_failures_total`).
    pub scatter_failures: Arc<Counter>,
    /// `Busy` replies retried against shards
    /// (`router_shard_retries_total`).
    pub shard_retries: Arc<Counter>,
    /// Reconnect-and-resend recoveries after stale pooled connections
    /// (`router_shard_reconnects_total`).
    pub shard_reconnects: Arc<Counter>,
    /// Number of configured backend shards (`router_shards`).
    pub shards_configured: Arc<Gauge>,
}

impl RouterStats {
    /// Creates zeroed counters for a router over `shards` backends.
    pub fn new(shards: usize) -> Self {
        let inner = ServerStats::new();
        let registry = inner.registry();
        let shard_requests: Vec<Arc<Counter>> = (0..shards)
            .map(|k| registry.counter(&format!("router_shard_requests_total{{shard=\"{k}\"}}")))
            .collect();
        let shard_up: Vec<Arc<Gauge>> = (0..shards)
            .map(|k| registry.gauge(&format!("router_shard_up{{shard=\"{k}\"}}")))
            .collect();
        let gather_micros = registry.histogram("router_gather_micros");
        let nnz_balance_pct = registry.gauge("router_nnz_balance_pct");
        let scatter_failures = registry.counter("router_scatter_failures_total");
        let shard_retries = registry.counter("router_shard_retries_total");
        let shard_reconnects = registry.counter("router_shard_reconnects_total");
        let shards_configured = registry.gauge("router_shards");
        shards_configured.set(shards as u64);
        for gauge in &shard_up {
            gauge.set(1);
        }
        RouterStats {
            inner,
            shard_requests,
            shard_up,
            gather_micros,
            nnz_balance_pct,
            scatter_failures,
            shard_retries,
            shard_reconnects,
            shards_configured,
        }
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;
    use chason_core::cache::CacheStats;

    #[test]
    fn exposition_carries_both_families() {
        let stats = RouterStats::new(3);
        stats.shard_requests[1].add(5);
        stats.shard_up[2].set(0);
        stats.gather_micros.record(120);
        stats.nnz_balance_pct.set(104);
        stats.inner.requests.spmv.add(2);
        let text = stats.inner.render_exposition(CacheStats::default(), 1, 0);
        for needle in [
            "router_shard_requests_total{shard=\"1\"} 5",
            "router_shard_requests_total{shard=\"0\"} 0",
            "router_shard_up{shard=\"2\"} 0",
            "router_shard_up{shard=\"0\"} 1",
            "router_nnz_balance_pct 104",
            "router_shards 3",
            "router_gather_micros_count 1",
            "chsp_requests_spmv_total 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
