//! The `chason route` frontend: listener, connection threads, worker
//! pool, scatter-gather executors, and the shard health checker.
//!
//! # Threading model
//!
//! The shape mirrors `chason serve` deliberately — one listener thread,
//! a thread per connection, a bounded MPMC queue feeding a fixed worker
//! pool, `Stats`/`Metrics`/`Shutdown` answered inline, `Busy` shed when
//! the queue is full — so a router drops into any deployment script that
//! already drives a server. The difference is inside the workers: instead
//! of executing kernels, each worker owns one pooled
//! [`ShardConn`](crate::shards::ShardConn) per backend and scatters
//! sub-requests across them with scoped threads, so an N-shard fan-out
//! costs one round trip, not N.
//!
//! # Consistency
//!
//! The router is the only writer its shards see (clients must not address
//! backends directly while a router fronts them). Loads and updates
//! serialize under the resident-table lock, so the per-shard matrix
//! versions the router records stay in lockstep with the shards' own
//! version counters; any observed divergence — a shard reporting a
//! version the router did not produce — fails the request with
//! [`ErrorCode::PartialGather`] and drops the mapping, forcing the next
//! `LoadMatrix` to re-scatter a consistent snapshot.

use crate::shards::{HealthBoard, ShardConn, ShardError, ShardErrorKind};
use crate::stats::RouterStats;
use chason::solvers::{conjugate_gradient, jacobi, CgOptions, SpmvBackend};
use chason_core::cache::{CacheStats, LruCache};
use chason_core::plan::matrix_fingerprint;
use chason_net::NetServer;
use chason_serve::client::{Client, RetryPolicy};
use chason_serve::frontend::{
    start_async_frontend, threaded_listener_loop, ChspFrontend, EnqueueOutcome, Job,
};
use chason_serve::proto::{
    Engine, ErrorCode, Reply, Request, SolverKind, StatsSnapshot, DEFAULT_MAX_FRAME,
};
use chason_serve::stats::lock_unpoisoned;
use chason_serve::NetMode;
use chason_sim::SimError;
use chason_sparse::shard::ShardSpec;
use chason_sparse::{CooMatrix, MatrixDelta};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunable knobs of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Backend shard addresses, in row-block order: shard 0 owns the
    /// lowest row range.
    pub shards: Vec<String>,
    /// Worker threads executing queued requests. Each owns one pooled
    /// connection per shard.
    pub workers: usize,
    /// Bounded queue capacity between connections and workers; the
    /// load-shedding threshold.
    pub queue_capacity: usize,
    /// Sharded-resident table capacity (matrices the router can route
    /// without a reload).
    pub matrix_cache_capacity: usize,
    /// How long a client connection may sit idle before the router hangs
    /// up.
    pub idle_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Back-off hint carried by [`Reply::Busy`] when the router itself
    /// sheds.
    pub retry_after_ms: u32,
    /// Retry policy for `Busy` replies from shards.
    pub shard_retry: RetryPolicy,
    /// Interval between background shard health probes.
    pub health_interval: Duration,
    /// Whether a wire `Shutdown` request is forwarded to every shard
    /// before the router drains (one `chason client shutdown` tears the
    /// whole deployment down).
    pub shutdown_shards: bool,
    /// Which connection front end to run (`--net async|threads`).
    pub net: NetMode,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            workers: 4,
            queue_capacity: 64,
            matrix_cache_capacity: 32,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME,
            retry_after_ms: 20,
            shard_retry: RetryPolicy::default(),
            health_interval: Duration::from_secs(2),
            shutdown_shards: false,
            net: NetMode::default(),
        }
    }
}

/// How often the health-checker sleep wakes up to re-check the shutdown
/// flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// One sharded matrix the router can route: the full-matrix source of
/// truth (the solver outer loops and update validation need it), the
/// row-block partition, and per-shard handle/version bookkeeping.
///
/// `spec.shards()` may be smaller than the configured backend count: a
/// matrix with fewer rows than shards is spread over the first
/// `min(rows, shards)` backends.
#[derive(Debug, Clone)]
struct ShardedResident {
    matrix: Arc<CooMatrix>,
    spec: ShardSpec,
    /// Shard-local handle of each slice, indexed by shard.
    shard_handles: Arc<Vec<u64>>,
    /// Last acknowledged shard-side version of each slice.
    shard_versions: Arc<Vec<u64>>,
    /// Router-side lineage version; bumps on every successful update,
    /// mirroring a single server's counter for the same request sequence.
    version: u64,
}

/// State shared by every connection, worker, and the health checker.
struct Shared {
    /// Sharded residents keyed by full-matrix structural fingerprint —
    /// the same handle a single `chason serve` would mint, so clients are
    /// oblivious to the sharding.
    residents: Mutex<LruCache<u64, ShardedResident>>,
    stats: RouterStats,
    health: Arc<HealthBoard>,
    shutdown: AtomicBool,
    config: RouterConfig,
}

impl Shared {
    /// Router stats reuse the server snapshot layout; the plan-cache
    /// words are zero (plans live on the shards) and the matrix words
    /// describe the sharded-resident table.
    fn snapshot(&self) -> StatsSnapshot {
        let m = lock_unpoisoned(&self.residents).stats();
        self.stats
            .inner
            .snapshot(CacheStats::default(), m.len as u64, m.evictions)
    }

    fn exposition(&self) -> String {
        // Sync the per-shard gauges with the live board so a scrape never
        // lags the most recent worker observation.
        for (k, gauge) in self.stats.shard_up.iter().enumerate() {
            gauge.set(u64::from(self.health.is_up(k)));
        }
        let m = lock_unpoisoned(&self.residents).stats();
        self.stats
            .inner
            .render_exposition(CacheStats::default(), m.len as u64, m.evictions)
    }
}

/// The router's [`ChspFrontend`]: inline replies from [`Shared`], the
/// worker queue sender, and the shard fan-out on a wire `Shutdown`. Held
/// only by the connection layer, so dropping that layer drops the last
/// queue sender and lets the workers drain and exit.
struct RouterFrontend {
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
}

impl ChspFrontend for RouterFrontend {
    fn stats_reply(&self) -> Reply {
        self.shared.stats.inner.requests.stats.add(1);
        Reply::Stats(self.shared.snapshot())
    }

    fn metrics_reply(&self) -> Reply {
        self.shared.stats.inner.requests.metrics.add(1);
        Reply::MetricsText {
            text: self.shared.exposition(),
        }
    }

    fn on_wire_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if self.shared.config.shutdown_shards {
            // Forward before acknowledging so "client shutdown; wait for
            // the router pid" is a complete drain of the whole deployment.
            forward_shutdown(&self.shared);
        }
    }

    fn is_draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    fn draining_message(&self) -> String {
        "router is draining".to_string()
    }

    fn retry_after_ms(&self) -> u32 {
        self.shared.config.retry_after_ms
    }

    fn enqueue(&self, job: Job) -> EnqueueOutcome {
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.shared
                    .stats
                    .inner
                    .observe_queue_depth(self.job_tx.len() as u64);
                EnqueueOutcome::Accepted
            }
            Err(TrySendError::Full(_)) => {
                self.shared.stats.inner.shed.add(1);
                EnqueueOutcome::Shed
            }
            Err(TrySendError::Disconnected(_)) => EnqueueOutcome::Disconnected,
        }
    }

    fn idle_timeout(&self) -> Duration {
        self.shared.config.idle_timeout
    }

    fn write_timeout(&self) -> Duration {
        self.shared.config.write_timeout
    }

    fn max_frame_len(&self) -> usize {
        self.shared.config.max_frame_len
    }
}

/// A running `chason route` instance.
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    net: Option<NetServer>,
    workers: Vec<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds, spawns the worker pool, listener, and health checker, and
    /// returns immediately. Shards are probed lazily — a router starts
    /// fine with every backend down and reports them via `Metrics`.
    ///
    /// # Errors
    ///
    /// An empty shard list, or I/O failures binding the listener.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router requires at least one shard address",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            residents: Mutex::new(LruCache::new(config.matrix_cache_capacity)),
            stats: RouterStats::new(config.shards.len()),
            health: Arc::new(HealthBoard::new(config.shards.len())),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
        });
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                thread::Builder::new()
                    .name(format!("chason-router-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, i as u64))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        drop(job_rx);
        let health_shared = Arc::clone(&shared);
        let health_thread = thread::Builder::new()
            .name("chason-router-health".to_string())
            .spawn(move || health_loop(&health_shared))?;
        let frontend = Arc::new(RouterFrontend {
            shared: Arc::clone(&shared),
            job_tx,
        });
        let (listener_thread, net) = match config.net {
            NetMode::Async => {
                let net = start_async_frontend(listener, frontend, shared.stats.inner.registry())?;
                (None, Some(net))
            }
            NetMode::Threads => {
                let listener_thread = thread::Builder::new()
                    .name("chason-router-listener".to_string())
                    .spawn(move || {
                        threaded_listener_loop(&listener, &frontend, "chason-router-conn")
                    })?;
                (Some(listener_thread), None)
            }
        };
        Ok(Router {
            local_addr,
            shared,
            listener_thread,
            net,
            workers: worker_handles,
            health_thread: Some(health_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the router's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Shards currently marked up by the health board.
    pub fn shards_up(&self) -> usize {
        self.shared.health.up_count()
    }

    /// Initiates a graceful drain of the router itself. Shards are left
    /// running — programmatic callers own their backend lifecycles; only
    /// a wire `Shutdown` with
    /// [`shutdown_shards`](RouterConfig::shutdown_shards) set tears the
    /// backends down too.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &self.net {
            Some(net) => net.shutdown(),
            // Nudge the threaded listener out of `accept`.
            None => {
                let _ = TcpStream::connect(self.local_addr);
            }
        }
    }

    /// Blocks until the connection front end, every connection, every
    /// worker, and the health checker have exited. Call
    /// [`shutdown`](Self::shutdown) first (or send a `Shutdown` request)
    /// or this blocks forever.
    pub fn join(mut self) {
        if let Some(listener) = self.listener_thread.take() {
            let _ = listener.join();
        }
        if let Some(net) = self.net.take() {
            net.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(health) = self.health_thread.take() {
            let _ = health.join();
        }
    }
}

/// Best-effort `Shutdown` fan-out over fresh connections (worker conns
/// may be mid-request). A dead shard is already down; errors are ignored.
fn forward_shutdown(shared: &Shared) {
    for addr in &shared.config.shards {
        if let Ok(mut client) = Client::connect(addr.as_str()) {
            let _ = client.request(&Request::Shutdown);
        }
    }
}

fn record_accepted_kind(shared: &Shared, request: &Request) {
    let requests = &shared.stats.inner.requests;
    let counter = match request {
        Request::LoadMatrix { .. } => &requests.load,
        Request::Spmv { .. } => &requests.spmv,
        Request::Solve { .. } => &requests.solve,
        Request::Plan { .. } => &requests.plan,
        Request::Sleep { .. } => &requests.sleep,
        Request::Update { .. } => &requests.update,
        Request::Stats | Request::Metrics | Request::Shutdown => return,
    };
    counter.add(1);
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &Receiver<Job>, worker_index: u64) {
    // Each worker owns its own connection pool, so concurrent scatters
    // from different workers never contend on a socket lock.
    let mut conns: Vec<ShardConn> = shared
        .config
        .shards
        .iter()
        .enumerate()
        .map(|(k, addr)| {
            ShardConn::new(
                k,
                addr.clone(),
                shared.config.shard_retry,
                shared.config.shard_retry.seed ^ (worker_index << 32) ^ k as u64,
                Arc::clone(&shared.health),
                Arc::clone(&shared.stats.shard_requests[k]),
                Arc::clone(&shared.stats.shard_retries),
                Arc::clone(&shared.stats.shard_reconnects),
            )
        })
        .collect();
    while let Ok(job) = rx.recv() {
        record_accepted_kind(shared, &job.request);
        shared
            .stats
            .inner
            .record_queue_wait_micros(job.received.elapsed().as_micros() as u64);
        let started = Instant::now();
        let reply = catch_unwind(AssertUnwindSafe(|| {
            execute(shared, &mut conns, job.request)
        }))
        .unwrap_or_else(|_| {
            // A panic may have left a shard connection mid-frame; drop
            // them all so the next request starts clean.
            for conn in &mut conns {
                conn.disconnect();
            }
            Reply::Error {
                code: ErrorCode::Internal,
                message: "request execution panicked".to_string(),
            }
        });
        shared
            .stats
            .inner
            .record_service_micros(started.elapsed().as_micros() as u64);
        job.reply_tx.send(&reply);
    }
}

fn bad_request(message: impl Into<String>) -> Reply {
    Reply::Error {
        code: ErrorCode::BadRequest,
        message: message.into(),
    }
}

fn unknown_handle(handle: u64) -> Reply {
    Reply::Error {
        code: ErrorCode::UnknownHandle,
        message: format!("no sharded matrix with handle {handle:#018x}; send LoadMatrix first"),
    }
}

fn execute(shared: &Shared, conns: &mut [ShardConn], request: Request) -> Reply {
    match request {
        Request::LoadMatrix {
            rows,
            cols,
            triplets,
        } => execute_load(shared, conns, rows, cols, &triplets),
        Request::Spmv { handle, engine, x } => execute_spmv(shared, conns, handle, engine, &x),
        Request::Solve {
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            b,
        } => execute_solve(
            shared,
            conns,
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            &b,
        ),
        Request::Plan { .. } => {
            bad_request("plan artifacts are per-shard; request Plan from a backend shard directly")
        }
        Request::Update {
            handle,
            inserts,
            revalues,
            deletes,
        } => execute_update(shared, conns, handle, &inserts, &revalues, &deletes),
        Request::Sleep { millis } => {
            thread::sleep(Duration::from_millis(u64::from(millis.min(10_000))));
            Reply::Done
        }
        Request::Stats | Request::Metrics | Request::Shutdown => Reply::Error {
            code: ErrorCode::Internal,
            message: "inline request reached the worker pool".to_string(),
        },
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather plumbing
// ---------------------------------------------------------------------------

/// Sends one request to each shard with a `Some` slot, concurrently on
/// scoped threads. Slot `k` of the result mirrors slot `k` of the input;
/// a panicked request thread is reported as that shard being unavailable.
fn scatter(
    conns: &mut [ShardConn],
    requests: Vec<Option<Request>>,
    resend_safe: bool,
) -> Vec<Option<Result<Reply, ShardError>>> {
    debug_assert_eq!(conns.len(), requests.len());
    thread::scope(|scope| {
        let handles: Vec<_> = conns
            .iter_mut()
            .zip(requests)
            .map(|(conn, request)| {
                request.map(|request| {
                    let index = conn.index();
                    (index, scope.spawn(move || conn.call(&request, resend_safe)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|slot| {
                slot.map(|(index, handle)| {
                    handle.join().unwrap_or_else(|_| {
                        Err(ShardError {
                            shard: index,
                            kind: ShardErrorKind::Unavailable(
                                "scatter thread panicked".to_string(),
                            ),
                        })
                    })
                })
            })
            .collect()
    })
}

/// Splits scatter results into indexed successes and failures.
fn partition_results(
    results: Vec<Option<Result<Reply, ShardError>>>,
) -> (Vec<(usize, Reply)>, Vec<ShardError>) {
    let mut oks = Vec::new();
    let mut errors = Vec::new();
    for (k, slot) in results.into_iter().enumerate() {
        match slot {
            Some(Ok(reply)) => oks.push((k, reply)),
            Some(Err(err)) => errors.push(err),
            None => {}
        }
    }
    (oks, errors)
}

/// Maps a non-empty set of shard failures to the client-facing reply.
///
/// Priority: any transport-level failure wins (`ShardUnavailable` — the
/// gather is incomplete no matter what the others said); otherwise a
/// typed shard error propagates with its original code; otherwise every
/// failure was `Busy`, and the router relays `Busy` with the largest
/// back-off hint.
fn scatter_failure_reply(errors: &[ShardError], stats: &RouterStats) -> Reply {
    stats.scatter_failures.add(1);
    if let Some(err) = errors.iter().find(|e| {
        matches!(
            e.kind,
            ShardErrorKind::Unavailable(_) | ShardErrorKind::Unexpected(_)
        )
    }) {
        return Reply::Error {
            code: ErrorCode::ShardUnavailable,
            message: err.to_string(),
        };
    }
    for err in errors {
        if let ShardErrorKind::Server { code, message } = &err.kind {
            return Reply::Error {
                code: *code,
                message: format!("shard {}: {message}", err.shard),
            };
        }
    }
    let hint = errors
        .iter()
        .map(|e| match e.kind {
            ShardErrorKind::Busy { retry_after_ms } => retry_after_ms,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    Reply::Busy {
        retry_after_ms: hint,
    }
}

fn unexpected_reply(shard: usize, reply: &Reply) -> Reply {
    Reply::Error {
        code: ErrorCode::Internal,
        message: format!("shard {shard} sent an unexpected reply variant: {reply:?}"),
    }
}

/// One distributed SpMV: broadcast `x`, run each shard's slice, reduce
/// the partials by row-range placement. Returns the gathered vector and
/// the max per-shard simulated latency (the shards run concurrently in
/// the modeled hardware, so the slowest one bounds the distributed op).
///
/// # Errors
///
/// The client-facing error reply.
fn scatter_spmv(
    conns: &mut [ShardConn],
    resident: &ShardedResident,
    engine: Engine,
    x: &[f32],
    stats: &RouterStats,
) -> Result<(Vec<f32>, u64), Box<Reply>> {
    let n = resident.spec.shards();
    let mut requests: Vec<Option<Request>> = vec![None; conns.len()];
    for (k, slot) in requests.iter_mut().take(n).enumerate() {
        *slot = Some(Request::Spmv {
            handle: resident.shard_handles[k],
            engine,
            x: x.to_vec(),
        });
    }
    let started = Instant::now();
    let results = scatter(conns, requests, true);
    stats
        .gather_micros
        .record(started.elapsed().as_micros() as u64);
    let (oks, errors) = partition_results(results);
    if !errors.is_empty() {
        return Err(Box::new(scatter_failure_reply(&errors, stats)));
    }
    let mut partials: Vec<Vec<f32>> = vec![Vec::new(); n];
    let mut max_nanos = 0u64;
    for (k, reply) in oks {
        match reply {
            Reply::Vector {
                y, simulated_nanos, ..
            } => {
                max_nanos = max_nanos.max(simulated_nanos);
                partials[k] = y;
            }
            other => return Err(Box::new(unexpected_reply(k, &other))),
        }
    }
    match resident.spec.gather(&partials) {
        Ok(y) => Ok((y, max_nanos)),
        Err(err) => Err(Box::new(Reply::Error {
            code: ErrorCode::PartialGather,
            message: format!("reduction failed: {err}"),
        })),
    }
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

fn execute_load(
    shared: &Shared,
    conns: &mut [ShardConn],
    rows: u64,
    cols: u64,
    triplets: &[(u64, u64, f32)],
) -> Reply {
    const MAX_DIM: u64 = 1 << 32;
    if rows == 0 || cols == 0 || rows > MAX_DIM || cols > MAX_DIM {
        return bad_request(format!("matrix dimensions {rows}x{cols} out of range"));
    }
    for &(r, c, v) in triplets {
        if !v.is_finite() || v == 0.0 {
            return bad_request(format!(
                "unschedulable value {v} at ({r}, {c}): values must be finite and non-zero"
            ));
        }
    }
    let converted: Vec<(usize, usize, f32)> = triplets
        .iter()
        .map(|&(r, c, v)| (r as usize, c as usize, v))
        .collect();
    let matrix = match CooMatrix::from_triplets(rows as usize, cols as usize, converted) {
        Ok(matrix) => matrix,
        Err(err) => return bad_request(err.to_string()),
    };
    let handle = matrix_fingerprint(&matrix);
    // Loads serialize under the resident lock so two identical concurrent
    // loads scatter once, and no update interleaves with the scatter.
    let mut residents = lock_unpoisoned(&shared.residents);
    if let Some(resident) = residents.get(&handle) {
        // Same lineage semantics as a single server: the handle resolves
        // to the resident (possibly updated) copy, and the version tells
        // the caller whether the content moved past the sent triplets.
        return Reply::Loaded {
            handle,
            rows,
            cols,
            nnz: triplets.len() as u64,
            fresh: false,
            version: resident.version,
        };
    }
    let shard_count = conns.len().min(matrix.rows());
    let spec = match ShardSpec::nnz_balanced(&matrix, shard_count) {
        Ok(spec) => spec,
        Err(err) => return bad_request(format!("sharding failed: {err}")),
    };
    let mut requests: Vec<Option<Request>> = vec![None; conns.len()];
    for (k, slot) in requests.iter_mut().take(shard_count).enumerate() {
        let slice = match spec.slice(&matrix, k) {
            Ok(slice) => slice,
            Err(err) => {
                return Reply::Error {
                    code: ErrorCode::Internal,
                    message: format!("slicing shard {k} failed: {err}"),
                }
            }
        };
        *slot = Some(Request::LoadMatrix {
            rows: slice.rows() as u64,
            cols: slice.cols() as u64,
            triplets: slice
                .iter()
                .map(|&(r, c, v)| (r as u64, c as u64, v))
                .collect(),
        });
    }
    let started = Instant::now();
    let results = scatter(conns, requests, true);
    shared
        .stats
        .gather_micros
        .record(started.elapsed().as_micros() as u64);
    let (oks, errors) = partition_results(results);
    if !errors.is_empty() {
        return scatter_failure_reply(&errors, &shared.stats);
    }
    let mut shard_handles = vec![0u64; shard_count];
    for (k, reply) in oks {
        match reply {
            Reply::Loaded {
                handle: shard_handle,
                version,
                ..
            } => {
                if version != 0 {
                    // The shard already holds this slice lineage at a
                    // later version: someone updated the backend out of
                    // band. Routing against it would mix generations.
                    return Reply::Error {
                        code: ErrorCode::PartialGather,
                        message: format!(
                            "shard {k} holds a diverged copy of this slice (version \
                             {version}); restart the shard or route updates through \
                             the router only"
                        ),
                    };
                }
                shard_handles[k] = shard_handle;
            }
            other => return unexpected_reply(k, &other),
        }
    }
    if let Ok(imbalance) = spec.nnz_imbalance(&matrix) {
        shared
            .stats
            .nnz_balance_pct
            .set((imbalance * 100.0).round() as u64);
    }
    residents.insert(
        handle,
        ShardedResident {
            matrix: Arc::new(matrix),
            spec,
            shard_handles: Arc::new(shard_handles),
            shard_versions: Arc::new(vec![0; shard_count]),
            version: 0,
        },
    );
    Reply::Loaded {
        handle,
        rows,
        cols,
        nnz: triplets.len() as u64,
        fresh: true,
        version: 0,
    }
}

fn execute_spmv(
    shared: &Shared,
    conns: &mut [ShardConn],
    handle: u64,
    engine: Engine,
    x: &[f32],
) -> Reply {
    let Some(resident) = lock_unpoisoned(&shared.residents).get(&handle).cloned() else {
        return unknown_handle(handle);
    };
    if x.len() != resident.matrix.cols() {
        return bad_request(format!(
            "x has {} entries, matrix has {} columns",
            x.len(),
            resident.matrix.cols()
        ));
    }
    let start = Instant::now();
    match scatter_spmv(conns, &resident, engine, x, &shared.stats) {
        Ok((y, simulated_nanos)) => Reply::Vector {
            y,
            service_micros: start.elapsed().as_micros() as u64,
            simulated_nanos,
        },
        Err(reply) => *reply,
    }
}

/// The distributed Reduction Unit as a solver backend: every product the
/// CG/Jacobi outer loop requests is scattered across the shards and the
/// partials are gathered by row placement. Row-block sharding keeps each
/// output row on exactly one shard, so the gathered product is exactly
/// the vector a single instance would produce (bit-identical on `cpu`,
/// where slicing preserves per-row accumulation order).
///
/// [`SimError`] has no transport variant, so a scatter failure stashes
/// the client-facing reply in `failure` and surfaces a placeholder error
/// to the solver; `execute_solve` unstashes it.
struct DistributedBackend<'a> {
    conns: &'a mut [ShardConn],
    resident: &'a ShardedResident,
    engine: Engine,
    stats: &'a RouterStats,
    simulated_nanos: u64,
    failure: Option<Reply>,
}

impl SpmvBackend for DistributedBackend<'_> {
    fn spmv(&mut self, _matrix: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SimError> {
        match scatter_spmv(self.conns, self.resident, self.engine, x, self.stats) {
            Ok((y, nanos)) => {
                self.simulated_nanos += nanos;
                Ok(y)
            }
            Err(reply) => {
                self.failure = Some(*reply);
                Err(SimError::InvalidConfig(
                    "distributed SpMV failed; see the stashed router reply".to_string(),
                ))
            }
        }
    }

    fn elapsed_seconds(&self) -> f64 {
        self.simulated_nanos as f64 * 1e-9
    }

    fn name(&self) -> &'static str {
        self.engine.name()
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_solve(
    shared: &Shared,
    conns: &mut [ShardConn],
    handle: u64,
    engine: Engine,
    solver: SolverKind,
    max_iterations: u32,
    tolerance: f64,
    b: &[f32],
) -> Reply {
    let Some(resident) = lock_unpoisoned(&shared.residents).get(&handle).cloned() else {
        return unknown_handle(handle);
    };
    let matrix = Arc::clone(&resident.matrix);
    // Same ahead-of-time validation as a single server: the solvers
    // assert on these.
    if matrix.rows() != matrix.cols() {
        return bad_request(format!(
            "solver requires a square system, matrix is {}x{}",
            matrix.rows(),
            matrix.cols()
        ));
    }
    if b.len() != matrix.rows() {
        return bad_request(format!(
            "b has {} entries, system has {} rows",
            b.len(),
            matrix.rows()
        ));
    }
    if !tolerance.is_finite() || tolerance < 0.0 {
        return bad_request(format!(
            "tolerance {tolerance} must be finite and non-negative"
        ));
    }
    if solver == SolverKind::Jacobi {
        let mut diag = vec![false; matrix.rows()];
        for &(r, c, v) in matrix.iter() {
            if r == c && v != 0.0 {
                diag[r] = true;
            }
        }
        if let Some(row) = diag.iter().position(|&set| !set) {
            return bad_request(format!(
                "Jacobi requires a non-zero diagonal; row {row} has none"
            ));
        }
    }
    let options = CgOptions {
        max_iterations: max_iterations as usize,
        tolerance,
    };
    let start = Instant::now();
    let mut backend = DistributedBackend {
        conns,
        resident: &resident,
        engine,
        stats: &shared.stats,
        simulated_nanos: 0,
        failure: None,
    };
    let result = match solver {
        SolverKind::Cg => conjugate_gradient(&mut backend, &matrix, b, options),
        SolverKind::Jacobi => jacobi(&mut backend, &matrix, b, options),
    };
    let simulated_nanos = backend.simulated_nanos;
    let failure = backend.failure.take();
    match result {
        Ok(result) => Reply::Solved {
            solution: result.solution,
            iterations: result.iterations as u64,
            residual: result.residual,
            converged: result.converged,
            service_micros: start.elapsed().as_micros() as u64,
            simulated_nanos,
        },
        Err(err) => failure.unwrap_or_else(|| bad_request(err.to_string())),
    }
}

fn execute_update(
    shared: &Shared,
    conns: &mut [ShardConn],
    handle: u64,
    inserts: &[(u64, u64, f32)],
    revalues: &[(u64, u64, f32)],
    deletes: &[(u64, u64)],
) -> Reply {
    for &(r, c, v) in inserts.iter().chain(revalues.iter()) {
        if !v.is_finite() || v == 0.0 {
            return bad_request(format!(
                "unschedulable value {v} at ({r}, {c}): values must be finite and non-zero"
            ));
        }
    }
    // Updates serialize under the resident lock (held across the scatter)
    // so shard version N+1 is always derived from N and concurrent
    // loads/updates cannot interleave with a half-applied delta.
    let mut residents = lock_unpoisoned(&shared.residents);
    let Some(resident) = residents.get(&handle).cloned() else {
        return unknown_handle(handle);
    };
    // Validate the whole delta against the full matrix up front: a
    // rejected op must not reach any shard, or the fleet diverges.
    let mut delta = MatrixDelta::for_matrix(&resident.matrix);
    let push = |result: Result<(), chason_sparse::SparseError>| result.map_err(|e| e.to_string());
    for &(r, c, v) in inserts {
        if let Err(e) = push(delta.push_insert(r as usize, c as usize, v)) {
            return bad_request(e);
        }
    }
    for &(r, c, v) in revalues {
        if let Err(e) = push(delta.push_revalue(r as usize, c as usize, v)) {
            return bad_request(e);
        }
    }
    for &(r, c) in deletes {
        if let Err(e) = push(delta.push_delete(r as usize, c as usize)) {
            return bad_request(e);
        }
    }
    let updated = match delta.apply(&resident.matrix) {
        Ok(updated) => updated,
        Err(err) => return bad_request(err.to_string()),
    };
    // Partition the ops by row footprint; only touched shards see a
    // sub-update. Rows are shard-local (offset by the range start).
    let n = resident.spec.shards();
    let mut shard_inserts: Vec<Vec<(u64, u64, f32)>> = vec![Vec::new(); n];
    let mut shard_revalues: Vec<Vec<(u64, u64, f32)>> = vec![Vec::new(); n];
    let mut shard_deletes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let route = |r: u64| -> Option<(usize, u64)> {
        let k = resident.spec.shard_of_row(r as usize)?;
        let (start, _) = resident.spec.range(k);
        Some((k, r - start as u64))
    };
    for &(r, c, v) in inserts {
        match route(r) {
            Some((k, local)) => shard_inserts[k].push((local, c, v)),
            None => return bad_request(format!("row {r} outside the sharded matrix")),
        }
    }
    for &(r, c, v) in revalues {
        match route(r) {
            Some((k, local)) => shard_revalues[k].push((local, c, v)),
            None => return bad_request(format!("row {r} outside the sharded matrix")),
        }
    }
    for &(r, c) in deletes {
        match route(r) {
            Some((k, local)) => shard_deletes[k].push((local, c)),
            None => return bad_request(format!("row {r} outside the sharded matrix")),
        }
    }
    let mut requests: Vec<Option<Request>> = vec![None; conns.len()];
    for k in 0..n {
        if shard_inserts[k].is_empty()
            && shard_revalues[k].is_empty()
            && shard_deletes[k].is_empty()
        {
            continue;
        }
        requests[k] = Some(Request::Update {
            handle: resident.shard_handles[k],
            inserts: std::mem::take(&mut shard_inserts[k]),
            revalues: std::mem::take(&mut shard_revalues[k]),
            deletes: std::mem::take(&mut shard_deletes[k]),
        });
    }
    let started = Instant::now();
    // Updates are not idempotent: never resend on a broken pooled
    // connection — the shard may already have applied the delta.
    let results = scatter(conns, requests, false);
    shared
        .stats
        .gather_micros
        .record(started.elapsed().as_micros() as u64);
    let (oks, errors) = partition_results(results);
    if !errors.is_empty() {
        // Some shards may have applied their sub-delta and some not: the
        // fleet no longer matches any single matrix generation. Drop the
        // mapping (poisoned); the next LoadMatrix re-scatters a
        // consistent snapshot from the client's triplets.
        residents.remove(&handle);
        shared.stats.scatter_failures.add(1);
        let first = &errors[0];
        return Reply::Error {
            code: ErrorCode::PartialGather,
            message: format!(
                "update reached only part of the shard set ({} of {} sub-updates \
                 failed; first: {first}); the sharded mapping was dropped — reload \
                 the matrix to re-shard",
                errors.len(),
                oks.len() + errors.len(),
            ),
        };
    }
    let mut new_versions = resident.shard_versions.as_ref().clone();
    let mut plans_spliced: u32 = 0;
    let mut windows_replanned: u64 = 0;
    let mut windows_total: u64 = 0;
    let mut shard_nnz: Vec<Option<u64>> = vec![None; n];
    for (k, reply) in oks {
        match reply {
            Reply::Updated {
                version,
                nnz,
                plans_spliced: spliced,
                windows_replanned: replanned,
                windows_total: total,
            } => {
                let expected = resident.shard_versions[k] + 1;
                if version != expected {
                    residents.remove(&handle);
                    return Reply::Error {
                        code: ErrorCode::PartialGather,
                        message: format!(
                            "version skew on shard {k}: it reports v{version}, the \
                             router expected v{expected} — the shard was updated out \
                             of band; the sharded mapping was dropped"
                        ),
                    };
                }
                new_versions[k] = version;
                plans_spliced += spliced;
                windows_replanned += replanned;
                windows_total = windows_total.max(total);
                shard_nnz[k] = Some(nnz);
            }
            other => {
                residents.remove(&handle);
                return unexpected_reply(k, &other);
            }
        }
    }
    // Cross-check: every touched shard's post-update nnz must match the
    // router's own application of the same delta.
    match resident.spec.nnz_per_shard(&updated) {
        Ok(counts) => {
            for (k, reported) in shard_nnz.iter().enumerate() {
                if let Some(reported) = reported {
                    if *reported != counts[k] as u64 {
                        residents.remove(&handle);
                        return Reply::Error {
                            code: ErrorCode::PartialGather,
                            message: format!(
                                "shard {k} reports {reported} nnz after the update, \
                                 the router expected {}; the sharded mapping was \
                                 dropped",
                                counts[k]
                            ),
                        };
                    }
                }
            }
        }
        Err(err) => {
            residents.remove(&handle);
            return Reply::Error {
                code: ErrorCode::Internal,
                message: format!("post-update nnz audit failed: {err}"),
            };
        }
    }
    let version = resident.version + 1;
    let nnz = updated.nnz() as u64;
    residents.insert(
        handle,
        ShardedResident {
            matrix: Arc::new(updated),
            spec: resident.spec,
            shard_handles: resident.shard_handles,
            shard_versions: Arc::new(new_versions),
            version,
        },
    );
    Reply::Updated {
        version,
        nnz,
        plans_spliced,
        windows_replanned,
        windows_total,
    }
}

// ---------------------------------------------------------------------------
// Health checker
// ---------------------------------------------------------------------------

/// Periodically pings every shard with `Stats` over its own persistent
/// connections, updating the board and the per-shard gauges. Sleeps in
/// [`READ_TICK`] increments so shutdown is prompt.
fn health_loop(shared: &Arc<Shared>) {
    let mut clients: Vec<Option<Client>> = shared.config.shards.iter().map(|_| None).collect();
    loop {
        for (k, slot) in clients.iter_mut().enumerate() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if slot.is_none() {
                *slot = Client::connect(shared.config.shards[k].as_str()).ok();
            }
            let up = match slot.as_mut() {
                Some(client) => match client.request(&Request::Stats) {
                    Ok(Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        ..
                    }) => {
                        *slot = None;
                        false
                    }
                    Ok(_) => true,
                    Err(_) => {
                        *slot = None;
                        false
                    }
                },
                None => false,
            };
            shared.health.set(k, up);
            shared.stats.shard_up[k].set(u64::from(up));
        }
        let mut slept = Duration::ZERO;
        while slept < shared.config.health_interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(READ_TICK);
            slept += READ_TICK;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_refuses_empty_shard_list() {
        let err = match Router::start(RouterConfig::default()) {
            Err(err) => err,
            Ok(_) => panic!("a shardless router must not start"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn failure_reply_priority() {
        let stats = RouterStats::new(2);
        let unavailable = ShardError {
            shard: 0,
            kind: ShardErrorKind::Unavailable("gone".to_string()),
        };
        let busy = ShardError {
            shard: 1,
            kind: ShardErrorKind::Busy { retry_after_ms: 7 },
        };
        let server = ShardError {
            shard: 1,
            kind: ShardErrorKind::Server {
                code: ErrorCode::UnknownHandle,
                message: "no such matrix".to_string(),
            },
        };
        // Transport failure dominates.
        let reply = scatter_failure_reply(&[busy, unavailable], &stats);
        assert!(matches!(
            reply,
            Reply::Error {
                code: ErrorCode::ShardUnavailable,
                ..
            }
        ));
        // A typed shard error propagates its code.
        let busy = ShardError {
            shard: 0,
            kind: ShardErrorKind::Busy { retry_after_ms: 7 },
        };
        let reply = scatter_failure_reply(&[busy, server], &stats);
        assert!(matches!(
            reply,
            Reply::Error {
                code: ErrorCode::UnknownHandle,
                ..
            }
        ));
        // All-busy relays Busy with the largest hint.
        let busy_small = ShardError {
            shard: 0,
            kind: ShardErrorKind::Busy { retry_after_ms: 7 },
        };
        let busy_large = ShardError {
            shard: 1,
            kind: ShardErrorKind::Busy { retry_after_ms: 40 },
        };
        let reply = scatter_failure_reply(&[busy_small, busy_large], &stats);
        assert!(matches!(reply, Reply::Busy { retry_after_ms: 40 }));
        assert_eq!(stats.scatter_failures.get(), 3);
    }
}
