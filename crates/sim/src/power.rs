//! Power models (Fig. 10 and the measured operating points of §6.2.2).
//!
//! Two kinds of numbers appear in the paper:
//!
//! * the **estimated** post-route power breakdown of Chasoň on the U55c
//!   (Fig. 10): 12.845 W static plus per-component dynamic power, HBM being
//!   the largest consumer and Chasoň's logic only 8% of the total;
//! * the **measured** wall power during the experiments (§6.2.2): ≈39 W for
//!   Chasoň and ≈36 W for Serpens, which are the denominators of every
//!   energy-efficiency ratio (Eq. 6).

use serde::{Deserialize, Serialize};

/// Fig. 10's per-component power breakdown, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Static device power.
    pub static_w: f64,
    /// Clock network dynamic power.
    pub clocks: f64,
    /// Signal routing dynamic power.
    pub signals: f64,
    /// LUT/FF logic dynamic power (Chasoň's own datapath).
    pub logic: f64,
    /// Block RAM dynamic power (dense-vector buffers).
    pub bram: f64,
    /// UltraRAM dynamic power (partial-sum stores).
    pub uram: f64,
    /// DSP (multiplier/adder) dynamic power.
    pub dsp: f64,
    /// GTY transceiver power (PCIe link).
    pub gty: f64,
    /// HBM stack power — the dominant component.
    pub hbm: f64,
}

impl PowerBreakdown {
    /// The Chasoň implementation's estimated breakdown (Fig. 10).
    pub fn chason_estimated() -> Self {
        PowerBreakdown {
            static_w: 12.845,
            clocks: 4.18,
            signals: 2.22,
            logic: 2.76,
            bram: 1.24,
            uram: 1.51,
            dsp: 0.56,
            gty: 4.36,
            hbm: 18.95,
        }
    }

    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.static_w
            + self.clocks
            + self.signals
            + self.logic
            + self.bram
            + self.uram
            + self.dsp
            + self.gty
            + self.hbm
    }

    /// Total dynamic power (everything except static).
    pub fn dynamic(&self) -> f64 {
        self.total() - self.static_w
    }

    /// Fraction of total power drawn by a component value, in `[0, 1]`.
    pub fn share(&self, component_w: f64) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            component_w / total
        }
    }

    /// Power draw at a given datapath activity factor in `[0, 1]`.
    ///
    /// Static power is constant; the dynamic components scale linearly
    /// with switching activity. This closes the loop between Fig. 10's
    /// post-route estimate (worst-case activity) and the wall power
    /// measured while running (§6.2.2): the measured 39 W corresponds to
    /// ≈73% effective activity, Serpens' 36 W to ≈65% — consistent with
    /// the PE-utilization gap between the two designs.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn at_activity(&self, activity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be within [0, 1]"
        );
        self.static_w + self.dynamic() * activity
    }

    /// The activity factor that reproduces a measured wall power, clamped
    /// to `[0, 1]`.
    pub fn activity_for(&self, measured_watts: f64) -> f64 {
        let dynamic = self.dynamic();
        if dynamic <= 0.0 {
            0.0
        } else {
            ((measured_watts - self.static_w) / dynamic).clamp(0.0, 1.0)
        }
    }

    /// `(name, watts)` pairs in Fig. 10's legend order.
    pub fn components(&self) -> [(&'static str, f64); 9] {
        [
            ("Static", self.static_w),
            ("Clocks", self.clocks),
            ("Signals", self.signals),
            ("Logic", self.logic),
            ("BRAM", self.bram),
            ("URAM", self.uram),
            ("DSP", self.dsp),
            ("GTY", self.gty),
            ("HBM", self.hbm),
        ]
    }
}

/// Measured wall power of an accelerator while running the experiments
/// (via `xbutil`, §6.2.2). Used as the denominator of Eq. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPower {
    /// Watts drawn during kernel execution.
    pub watts: f64,
}

impl MeasuredPower {
    /// Chasoň's measured operating point (≈39 W).
    pub fn chason() -> Self {
        MeasuredPower { watts: 39.0 }
    }

    /// Serpens' measured operating point (≈36 W).
    pub fn serpens() -> Self {
        MeasuredPower { watts: 36.0 }
    }

    /// Energy efficiency per Eq. 6: GFLOPS per watt.
    pub fn energy_efficiency(&self, throughput_gflops: f64) -> f64 {
        if self.watts <= 0.0 {
            0.0
        } else {
            throughput_gflops / self.watts
        }
    }

    /// Energy consumed over a run of the given latency, in joules.
    pub fn energy_joules(&self, latency_seconds: f64) -> f64 {
        self.watts * latency_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_match_fig10() {
        let p = PowerBreakdown::chason_estimated();
        // The paper quotes 48.715 W; the legend values sum to 48.625 W
        // (rounding in the figure); accept the figure's own arithmetic.
        assert!((p.total() - 48.625).abs() < 1e-9, "total {}", p.total());
        assert!((p.dynamic() - (48.625 - 12.845)).abs() < 1e-9);
    }

    #[test]
    fn logic_share_is_about_8_percent() {
        let p = PowerBreakdown::chason_estimated();
        let share = p.share(p.logic) * 100.0;
        assert!((share - 5.7).abs() < 3.0, "logic share {share}%");
        // HBM is the dominant component.
        let (_, max_w) = p
            .components()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max_w, p.hbm);
    }

    #[test]
    fn memory_power_is_small() {
        // §5.1: BRAM 3%, URAM 4% of the total (approximately).
        let p = PowerBreakdown::chason_estimated();
        assert!(p.share(p.bram) < 0.05);
        assert!(p.share(p.uram) < 0.05);
    }

    #[test]
    fn measured_points_and_eq6() {
        let c = MeasuredPower::chason();
        let s = MeasuredPower::serpens();
        assert!(c.watts > s.watts, "chason draws slightly more (§6.2.2)");
        // §6.2.2: Chasoň 0.33 GFLOPS/W at ~12.9 GFLOPS.
        assert!((c.energy_efficiency(12.87) - 0.33).abs() < 0.01);
        // Serpens 0.16 GFLOPS/W at ~5.76 GFLOPS.
        assert!((s.energy_efficiency(5.76) - 0.16).abs() < 0.01);
    }

    #[test]
    fn activity_scaling_brackets_the_measured_points() {
        let p = PowerBreakdown::chason_estimated();
        assert_eq!(p.at_activity(0.0), p.static_w);
        assert!((p.at_activity(1.0) - p.total()).abs() < 1e-12);
        // The measured 39 W / 36 W operating points imply activities in a
        // plausible band, with Chasoň busier than Serpens.
        let a_chason = p.activity_for(MeasuredPower::chason().watts);
        let a_serpens = p.activity_for(MeasuredPower::serpens().watts);
        assert!(
            (0.6..0.85).contains(&a_chason),
            "chason activity {a_chason}"
        );
        assert!(
            (0.55..0.75).contains(&a_serpens),
            "serpens activity {a_serpens}"
        );
        assert!(a_chason > a_serpens);
        // Round trip.
        assert!((p.at_activity(a_chason) - 39.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn activity_out_of_range_is_rejected() {
        let _ = PowerBreakdown::chason_estimated().at_activity(1.5);
    }

    #[test]
    fn energy_joules_scales_with_latency() {
        let c = MeasuredPower::chason();
        assert!((c.energy_joules(2.0) - 78.0).abs() < 1e-12);
    }
}
