use chason_core::schedule::SchedulerConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Scheduling parameters (channels, PEs, dependency distance).
    pub sched: SchedulerConfig,
    /// Implemented clock frequency in MHz (301 for Chasoň, 223 for Serpens
    /// — both post-place-and-route on the Alveo U55c, §4.5/§5.2).
    pub clock_mhz: f64,
    /// Column-window width (`W = 8192`, §4.1).
    pub window: usize,
    /// FP32 values the final merged output stream carries per cycle
    /// (16, §4.3).
    pub merge_width: usize,
    /// FP32 words per cycle when reloading the on-chip `x` buffers between
    /// windows (one 512-bit HBM channel feeds the broadcast).
    pub x_reload_lanes: usize,
    /// Effective initiation-interval inflation of the memory-path loops
    /// (matrix stream, x reload, reduction sweep, output merge).
    ///
    /// The schedule model assumes one beat per clock; the real U55c
    /// pipeline loses throughput to DRAM burst boundaries, refresh, AXI
    /// handshaking and HLS II hiccups. This factor is calibrated so the
    /// simulated absolute latencies land on Table 3's measurements (both
    /// engines show the same ≈2.8× inflation over the ideal stream, so
    /// speedup ratios are unaffected).
    pub stream_ii: f64,
    /// Fixed per-invocation cycles (kernel control, FIFO flush, XRT kick)
    /// — the latency floor visible in the paper's smallest measurements
    /// (CollegeMsg: 3 µs ≈ 900 cycles end to end).
    pub invocation_overhead_cycles: u64,
    /// Record per-stream-cycle PE occupancy into
    /// [`Execution::occupancy`] (costs memory proportional to the stream
    /// length; off by default).
    pub record_occupancy: bool,
}

impl AcceleratorConfig {
    /// The Chasoň implementation point: paper scheduling config at 301 MHz.
    pub fn chason() -> Self {
        AcceleratorConfig {
            sched: SchedulerConfig::paper(),
            clock_mhz: 301.0,
            window: chason_core::element::WINDOW,
            merge_width: 16,
            x_reload_lanes: 16,
            stream_ii: 2.8,
            invocation_overhead_cycles: 500,
            record_occupancy: false,
        }
    }

    /// The Serpens baseline point: same parallelism at 223 MHz (§5.2).
    pub fn serpens() -> Self {
        AcceleratorConfig {
            clock_mhz: 223.0,
            ..AcceleratorConfig::chason()
        }
    }

    /// Seconds per clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }

    /// Validates the configuration.
    pub fn is_valid(&self) -> bool {
        self.sched.is_valid()
            && self.clock_mhz > 0.0
            && self.window > 0
            && self.window <= chason_core::element::WINDOW
            && self.merge_width > 0
            && self.x_reload_lanes > 0
            && self.stream_ii >= 1.0
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::chason()
    }
}

/// Cycle accounting of one SpMV execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles spent streaming the scheduled data lists (one beat per cycle
    /// per channel, channels in lockstep).
    pub stream: u64,
    /// Pipeline fill/drain cycles (the accumulator depth, once per window).
    pub fill_drain: u64,
    /// Cycles reloading the dense-vector BRAMs between column windows.
    pub x_reload: u64,
    /// Reduction Unit sweep cycles (Chasoň only: adder tree over the ScUGs,
    /// §4.2.2).
    pub reduction: u64,
    /// Arbiter/Merger output cycles (§4.3).
    pub merge: u64,
    /// Fixed kernel-invocation overhead cycles.
    pub invocation: u64,
}

impl CycleBreakdown {
    /// Total cycles of the execution.
    pub fn total(&self) -> u64 {
        self.stream
            + self.fill_drain
            + self.x_reload
            + self.reduction
            + self.merge
            + self.invocation
    }
}

/// The result of one simulated SpMV execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Engine name (`"chason"` or `"serpens"`).
    pub engine: &'static str,
    /// The computed output vector `y = A·x`.
    pub y: Vec<f32>,
    /// Cycle accounting.
    pub cycles: CycleBreakdown,
    /// Clock frequency the cycles run at (MHz).
    pub clock_mhz: f64,
    /// Source-matrix non-zeros.
    pub nnz: usize,
    /// Source-matrix rows.
    pub rows: usize,
    /// Source-matrix columns.
    pub cols: usize,
    /// Stall slots across all windows' schedules.
    pub stalls: usize,
    /// PE underutilization over the whole run (Eq. 4), in `[0, 1]`.
    pub underutilization: f64,
    /// Bytes streamed from the sparse-matrix HBM channels.
    pub bytes_streamed: u64,
    /// Bytes moved on the auxiliary channels: dense-vector `x` reloads and
    /// the `y` writeback (the paper's 17th-19th channels).
    pub bytes_auxiliary: u64,
    /// Column windows processed.
    pub windows: usize,
    /// Multiply-accumulate operations performed (sanity: equals `nnz`).
    pub mac_ops: u64,
    /// Busy PEs per stream cycle across all channels (empty unless
    /// [`AcceleratorConfig::record_occupancy`] is set). Windows are
    /// concatenated in order.
    pub occupancy: Vec<u16>,
}

impl Execution {
    /// Wall-clock latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.cycles.total() as f64 / (self.clock_mhz * 1e6)
    }

    /// Wall-clock latency in milliseconds (the unit of Table 3).
    pub fn latency_ms(&self) -> f64 {
        self.latency_seconds() * 1e3
    }

    /// Throughput in GFLOPS per Eq. 5: `2 (NNZ + K) / latency_ns`, where
    /// `K` is the dense-vector length.
    pub fn throughput_gflops(&self) -> f64 {
        let latency_ns = self.latency_seconds() * 1e9;
        if latency_ns == 0.0 {
            0.0
        } else {
            2.0 * (self.nnz + self.cols) as f64 / latency_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_clocks() {
        assert_eq!(AcceleratorConfig::chason().clock_mhz, 301.0);
        assert_eq!(AcceleratorConfig::serpens().clock_mhz, 223.0);
        assert!(AcceleratorConfig::chason().is_valid());
        assert!(AcceleratorConfig::serpens().is_valid());
        assert_eq!(AcceleratorConfig::default(), AcceleratorConfig::chason());
    }

    #[test]
    fn cycle_seconds_inverts_frequency() {
        let cfg = AcceleratorConfig::chason();
        assert!((cfg.cycle_seconds() * 301e6 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_wider_than_wire_format_is_invalid() {
        let cfg = AcceleratorConfig {
            window: 8193,
            ..AcceleratorConfig::chason()
        };
        assert!(!cfg.is_valid());
    }

    #[test]
    fn breakdown_totals() {
        let b = CycleBreakdown {
            stream: 10,
            fill_drain: 2,
            x_reload: 3,
            reduction: 4,
            merge: 5,
            invocation: 6,
        };
        assert_eq!(b.total(), 30);
        assert_eq!(CycleBreakdown::default().total(), 0);
    }

    #[test]
    fn execution_metrics() {
        let e = Execution {
            engine: "test",
            y: vec![],
            cycles: CycleBreakdown {
                stream: 1000,
                ..Default::default()
            },
            clock_mhz: 100.0,
            nnz: 4000,
            rows: 10,
            cols: 1000,
            stalls: 0,
            underutilization: 0.0,
            bytes_streamed: 0,
            bytes_auxiliary: 0,
            windows: 1,
            mac_ops: 4000,
            occupancy: Vec::new(),
        };
        // 1000 cycles at 100 MHz = 10 us = 10_000 ns.
        assert!((e.latency_seconds() - 1e-5).abs() < 1e-15);
        // Eq. 5: 2 * (4000 + 1000) / 10_000 ns = 1 GFLOPS.
        assert!((e.throughput_gflops() - 1.0).abs() < 1e-12);
        assert!((e.latency_ms() - 0.01).abs() < 1e-12);
    }
}
