//! The plan/execute split: build an [`SpmvPlan`] once, run it many times.
//!
//! `plan` schedules every column window of a matrix (row-partitioning first
//! when it exceeds the partial-sum URAM capacity, exactly as
//! `run_partitioned` would) and packages the result with the matrix
//! fingerprint and scheduler configuration. `run_planned` replays the plan
//! against a dense vector without touching a scheduler, producing an
//! [`Execution`] bit-identical to `run` / `run_partitioned` on the source
//! matrix. Window scheduling is fanned out across threads — windows are
//! independent — with results reassembled in window order, so the plan is
//! the same at every thread count.

use crate::engine::{execute_pass, plan_pass};
use crate::memory::URAM_PARTIALS;
use crate::partitioned::combine;
use crate::{ChasonEngine, Execution, SerpensEngine, SimError};
use chason_core::plan::{PlanKey, SpmvPlan};
use chason_core::replan::ReplanReport;
use chason_core::shard::ShardedPlan;
use chason_core::window::partition_rows_capacity;
use chason_sparse::shard::ShardSpec;
use chason_sparse::{CooMatrix, MatrixDelta};

/// Threads used by `plan` when the caller does not choose a count.
fn default_planning_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Engines supporting the plan/execute split, for callers generic over the
/// accelerator family (e.g. solver backends caching plans per matrix).
pub trait PlanningEngine {
    /// Schedules `matrix` into a reusable plan. See `ChasonEngine::plan`.
    fn plan(&self, matrix: &CooMatrix) -> Result<SpmvPlan, SimError>;

    /// Executes a previously built plan against `x`. See
    /// `ChasonEngine::run_planned`.
    fn run_planned(&self, plan: &SpmvPlan, x: &[f32]) -> Result<Execution, SimError>;

    /// The cache key identifying `matrix` scheduled under this engine's
    /// configuration.
    fn plan_key(&self, matrix: &CooMatrix) -> PlanKey;

    /// Splices `delta` into `plan` by re-scheduling only the dirty windows.
    /// See `ChasonEngine::replan_delta`.
    fn replan_delta(
        &self,
        plan: &mut SpmvPlan,
        updated: &CooMatrix,
        delta: &MatrixDelta,
    ) -> Result<ReplanReport, SimError>;
}

macro_rules! impl_planning {
    ($engine:ty, $name:literal, $has_reduction:expr) => {
        impl $engine {
            /// Schedules `matrix` into a reusable [`SpmvPlan`] without
            /// executing it.
            ///
            /// The plan captures every column window's schedule (grouped
            /// into row-partition passes when the matrix exceeds the
            /// per-PE partial-sum capacity, mirroring `run_partitioned`),
            /// keyed by the matrix fingerprint and scheduler
            /// configuration. Windows are scheduled in parallel across all
            /// available cores; the result is independent of the thread
            /// count.
            ///
            /// # Errors
            ///
            /// [`SimError::InvalidConfig`] for inconsistent configurations.
            pub fn plan(&self, matrix: &CooMatrix) -> Result<SpmvPlan, SimError> {
                self.plan_with_threads(matrix, default_planning_threads())
            }

            /// [`plan`](Self::plan) with an explicit window-scheduling
            /// thread count (`1` forces serial planning).
            pub fn plan_with_threads(
                &self,
                matrix: &CooMatrix,
                threads: usize,
            ) -> Result<SpmvPlan, SimError> {
                let config = self.config();
                let total_pes = config.sched.total_pes();
                let single_pass = matrix.rows().div_ceil(total_pes.max(1)) <= URAM_PARTIALS;
                let passes = if single_pass {
                    vec![plan_pass(self.scheduler(), config, matrix, 0, threads)?]
                } else {
                    partition_rows_capacity(matrix, URAM_PARTIALS, total_pes)
                        .iter()
                        .map(|p| {
                            plan_pass(self.scheduler(), config, &p.matrix, p.row_start, threads)
                        })
                        .collect::<Result<Vec<_>, _>>()?
                };
                Ok(SpmvPlan {
                    key: PlanKey::new(matrix, config.sched),
                    engine: $name.to_string(),
                    window: config.window,
                    rows: matrix.rows(),
                    cols: matrix.cols(),
                    nnz: matrix.nnz(),
                    passes,
                })
            }

            /// Splices `delta` into `plan` by re-scheduling only the column
            /// windows the delta's row/column footprint dirties, leaving
            /// every other window's schedule untouched.
            ///
            /// `updated` must be the delta applied to the plan's source
            /// matrix (`MatrixDelta::apply`). Because the pass/window
            /// skeleton depends only on the matrix shape — which deltas
            /// never change — and this engine's scheduler is
            /// deterministic, the spliced plan is bit-identical to
            /// [`plan`](Self::plan) of `updated`; the conformance suite's
            /// delta oracle asserts exactly that across the corpus. The
            /// report says how many windows were re-scheduled.
            ///
            /// # Errors
            ///
            /// * [`SimError::PlanMismatch`] if the plan was built by a
            ///   different engine family or configuration, or if
            ///   `updated`/`delta` are inconsistent with the plan (shape or
            ///   non-zero count disagreement).
            pub fn replan_delta(
                &self,
                plan: &mut SpmvPlan,
                updated: &CooMatrix,
                delta: &MatrixDelta,
            ) -> Result<ReplanReport, SimError> {
                let config = self.config();
                if plan.engine != $name {
                    return Err(SimError::PlanMismatch(format!(
                        "plan built by the {} engine cannot be respliced on {}",
                        plan.engine, $name
                    )));
                }
                if plan.key.config != config.sched || plan.window != config.window {
                    return Err(SimError::PlanMismatch(
                        "plan was built under a different configuration".to_string(),
                    ));
                }
                plan.apply_delta(updated, delta, self.scheduler())
                    .map_err(|e| SimError::PlanMismatch(e.to_string()))
            }

            /// Executes `y = A·x` from a plan built by
            /// [`plan`](Self::plan), without rescheduling. The result is
            /// bit-identical to `run` (or `run_partitioned` for matrices
            /// that needed row partitioning) on the plan's source matrix.
            ///
            /// # Errors
            ///
            /// * [`SimError::PlanMismatch`] if the plan was built by a
            ///   different engine family or under a different scheduler
            ///   configuration or window width;
            /// * [`SimError::VectorLengthMismatch`] if
            ///   `x.len() != plan.cols`;
            /// * [`SimError::InvalidConfig`] for inconsistent
            ///   configurations.
            pub fn run_planned(&self, plan: &SpmvPlan, x: &[f32]) -> Result<Execution, SimError> {
                let config = self.config();
                if plan.engine != $name {
                    return Err(SimError::PlanMismatch(format!(
                        "plan built by the {} engine cannot run on {}",
                        plan.engine, $name
                    )));
                }
                if plan.key.config != config.sched || plan.window != config.window {
                    return Err(SimError::PlanMismatch(
                        "plan was built under a different configuration".to_string(),
                    ));
                }
                if x.len() != plan.cols {
                    return Err(SimError::VectorLengthMismatch {
                        got: x.len(),
                        expected: plan.cols,
                    });
                }
                let scug = self.scug_size();
                let mut parts = plan
                    .passes
                    .iter()
                    .map(|pass| {
                        execute_pass($name, config, scug, $has_reduction, pass, plan.cols, x)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                match parts.pop() {
                    Some(single) if parts.is_empty() => Ok(single),
                    Some(last) => {
                        parts.push(last);
                        Ok(combine($name, parts, plan.cols))
                    }
                    None => Err(SimError::PlanMismatch(
                        "plan contains no passes".to_string(),
                    )),
                }
            }
        }

        impl PlanningEngine for $engine {
            fn plan(&self, matrix: &CooMatrix) -> Result<SpmvPlan, SimError> {
                <$engine>::plan(self, matrix)
            }

            fn run_planned(&self, plan: &SpmvPlan, x: &[f32]) -> Result<Execution, SimError> {
                <$engine>::run_planned(self, plan, x)
            }

            fn plan_key(&self, matrix: &CooMatrix) -> PlanKey {
                PlanKey::new(matrix, self.config().sched)
            }

            fn replan_delta(
                &self,
                plan: &mut SpmvPlan,
                updated: &CooMatrix,
                delta: &MatrixDelta,
            ) -> Result<ReplanReport, SimError> {
                <$engine>::replan_delta(self, plan, updated, delta)
            }
        }
    };
}

impl_planning!(ChasonEngine, "chason", true);
impl_planning!(SerpensEngine, "serpens", false);

/// Result of executing a [`ShardedPlan`]'s shards and reducing the
/// partials, with the latency accounting a distributed deployment would
/// observe.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedExecution {
    /// The gathered output vector `y = A·x`.
    pub y: Vec<f32>,
    /// Makespan: the slowest shard's modeled latency (shards run
    /// concurrently in a deployment).
    pub max_latency_seconds: f64,
    /// Aggregate device time: sum of every shard's modeled latency.
    pub total_latency_seconds: f64,
}

/// Plans each row-block slice of `matrix` under `spec` with `engine`.
///
/// The spec's slices keep the full column width, so each per-shard plan
/// consumes the same dense input vector as a full-matrix plan would.
pub fn plan_shards<E: PlanningEngine>(
    engine: &E,
    matrix: &CooMatrix,
    spec: &ShardSpec,
) -> Result<ShardedPlan, SimError> {
    let mut plans = Vec::with_capacity(spec.shards());
    for k in 0..spec.shards() {
        let slice = spec
            .slice(matrix, k)
            .map_err(|e| SimError::InvalidConfig(format!("shard {k}: {e}")))?;
        plans.push(engine.plan(&slice)?);
    }
    ShardedPlan::assemble(spec.clone(), plans).map_err(|e| SimError::InvalidConfig(e.to_string()))
}

/// Executes every shard plan against `x` and reduces the partial vectors.
///
/// The gather is a pure placement (each output row is owned by exactly one
/// shard), so the result matches running the shards on separate machines
/// and concatenating their replies.
pub fn run_sharded<E: PlanningEngine>(
    engine: &E,
    sharded: &ShardedPlan,
    x: &[f32],
) -> Result<ShardedExecution, SimError> {
    let mut partials = Vec::with_capacity(sharded.shards());
    let mut max_latency = 0.0f64;
    let mut total_latency = 0.0f64;
    for plan in sharded.plans() {
        let exec = engine.run_planned(plan, x)?;
        let latency = exec.latency_seconds();
        max_latency = max_latency.max(latency);
        total_latency += latency;
        partials.push(exec.y);
    }
    let y = sharded
        .reduce_partials(&partials)
        .map_err(|e| SimError::InvalidConfig(e.to_string()))?;
    Ok(ShardedExecution {
        y,
        max_latency_seconds: max_latency,
        total_latency_seconds: total_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use chason_core::schedule::SchedulerConfig;
    use chason_sparse::generators::{power_law, uniform_random};

    #[test]
    fn planned_run_is_bit_identical_to_direct_run() {
        let m = power_law(400, 400, 3000, 1.8, 17);
        let x: Vec<f32> = (0..400).map(|i| (i as f32 * 0.21).cos()).collect();
        for threads in [1, 4] {
            let engine = ChasonEngine::default();
            let plan = engine.plan_with_threads(&m, threads).unwrap();
            assert_eq!(
                engine.run_planned(&plan, &x).unwrap(),
                engine.run(&m, &x).unwrap()
            );
        }
        let serpens = SerpensEngine::default();
        let plan = serpens.plan(&m).unwrap();
        assert_eq!(
            serpens.run_planned(&plan, &x).unwrap(),
            serpens.run(&m, &x).unwrap()
        );
    }

    #[test]
    fn parallel_planning_matches_serial() {
        let m = uniform_random(64, 60_000, 20_000, 3); // 8 windows of W = 8192
        let engine = ChasonEngine::default();
        let serial = engine.plan_with_threads(&m, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            assert_eq!(engine.plan_with_threads(&m, threads).unwrap(), serial);
        }
    }

    #[test]
    fn oversized_matrix_plans_in_passes_matching_run_partitioned() {
        let engine = ChasonEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            ..AcceleratorConfig::chason()
        });
        // 4 PEs x 8192 rows/PE = 32_768 rows per pass.
        let m = uniform_random(70_000, 128, 30_000, 5);
        let x: Vec<f32> = (0..128).map(|i| 0.25 + (i % 3) as f32).collect();
        let plan = engine.plan(&m).unwrap();
        assert_eq!(plan.passes.len(), 3);
        assert_eq!(plan.passes.iter().map(|p| p.nnz).sum::<usize>(), 30_000);
        let planned = engine.run_planned(&plan, &x).unwrap();
        assert_eq!(planned, engine.run_partitioned(&m, &x).unwrap());
    }

    #[test]
    fn plan_records_key_and_stats() {
        let m = uniform_random(128, 20_000, 5_000, 3);
        let engine = ChasonEngine::default();
        let plan = engine.plan(&m).unwrap();
        assert_eq!(
            plan.key,
            chason_core::plan::PlanKey::new(&m, engine.config().sched)
        );
        assert_eq!(plan.window_count(), 3); // 20_000 cols / W = 8192
        assert_eq!(plan.nnz, 5_000);
        let exec = engine.run_planned(&plan, &vec![1.0; 20_000]).unwrap();
        assert_eq!(plan.stalls(), exec.stalls);
    }

    /// Debug builds (and `strict-verify` release builds) run the static
    /// checker before executing a pass; a corrupted schedule is rejected
    /// with the rendered diagnostic report instead of mis-executing.
    #[test]
    #[cfg(any(debug_assertions, feature = "strict-verify"))]
    fn corrupted_plan_is_rejected_before_execution() {
        let m = uniform_random(64, 64, 300, 1);
        let engine = ChasonEngine::default();
        let mut plan = engine.plan(&m).unwrap();
        let schedule = &mut plan.passes[0].windows[0].schedule;
        assert!(chason_verify::mutate::Corruption::TagFlip.apply(schedule));
        match engine.run_planned(&plan, &vec![1.0; 64]) {
            Err(SimError::InvalidSchedule(report)) => {
                assert!(report.contains("S005"), "{report}");
                assert!(report.contains("verification failed"), "{report}");
            }
            other => panic!("expected InvalidSchedule, got {other:?}"),
        }
    }

    /// A small structural delta against a multi-window matrix: revalue and
    /// delete existing entries, insert at a vacant coordinate.
    fn sample_delta(m: &CooMatrix) -> MatrixDelta {
        let mut delta = MatrixDelta::for_matrix(m);
        let t = m.triplets();
        let (r, c, _) = t[t.len() / 3];
        delta.push_revalue(r, c, 2.75).unwrap();
        let (r, c, _) = t[2 * t.len() / 3];
        delta.push_delete(r, c).unwrap();
        let vacant = (0..m.cols())
            .find(|&c| !t.iter().any(|&(tr, tc, _)| tr == 0 && tc == c))
            .unwrap();
        delta.push_insert(0, vacant, -4.5).unwrap();
        delta
    }

    #[test]
    fn respliced_plan_equals_scratch_plan_for_both_engines() {
        let m = uniform_random(256, 20_000, 8_000, 21); // 3 windows of W = 8192
        let delta = sample_delta(&m);
        let updated = delta.apply(&m).unwrap();

        let chason = ChasonEngine::default();
        let mut spliced = chason.plan(&m).unwrap();
        let report = chason.replan_delta(&mut spliced, &updated, &delta).unwrap();
        assert_eq!(spliced, chason.plan(&updated).unwrap());
        assert!(report.windows_replanned < report.windows_total);

        let serpens = SerpensEngine::default();
        let mut spliced = serpens.plan(&m).unwrap();
        serpens
            .replan_delta(&mut spliced, &updated, &delta)
            .unwrap();
        assert_eq!(spliced, serpens.plan(&updated).unwrap());
    }

    #[test]
    fn respliced_plan_replays_like_the_updated_matrix() {
        let m = power_law(300, 17_000, 4_000, 1.8, 29);
        let delta = sample_delta(&m);
        let updated = delta.apply(&m).unwrap();
        let engine = ChasonEngine::default();
        let mut plan = engine.plan(&m).unwrap();
        engine.replan_delta(&mut plan, &updated, &delta).unwrap();
        let x: Vec<f32> = (0..m.cols()).map(|i| (i as f32 * 0.19).sin()).collect();
        assert_eq!(
            engine.run_planned(&plan, &x).unwrap(),
            engine.run(&updated, &x).unwrap()
        );
    }

    #[test]
    fn resplice_spans_row_partition_passes() {
        let engine = ChasonEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            ..AcceleratorConfig::chason()
        });
        // 4 PEs x 8192 rows/PE = 32_768 rows per pass -> 3 passes.
        let m = uniform_random(70_000, 128, 30_000, 5);
        let delta = sample_delta(&m);
        let updated = delta.apply(&m).unwrap();
        let mut spliced = engine.plan(&m).unwrap();
        let report = engine.replan_delta(&mut spliced, &updated, &delta).unwrap();
        assert_eq!(spliced, engine.plan(&updated).unwrap());
        assert!(report.passes_touched >= 1);
        assert_eq!(
            spliced.passes.iter().map(|p| p.nnz).sum::<usize>(),
            updated.nnz()
        );
    }

    #[test]
    fn resplice_rejects_foreign_or_inconsistent_inputs() {
        let m = uniform_random(64, 64, 300, 1);
        let delta = sample_delta(&m);
        let updated = delta.apply(&m).unwrap();
        let chason = ChasonEngine::default();
        let serpens = SerpensEngine::default();
        let mut plan = chason.plan(&m).unwrap();
        assert!(matches!(
            serpens.replan_delta(&mut plan, &updated, &delta),
            Err(SimError::PlanMismatch(_))
        ));
        // Updated matrix inconsistent with the delta (nnz disagreement).
        assert!(matches!(
            chason.replan_delta(&mut plan, &m, &delta),
            Err(SimError::PlanMismatch(_))
        ));
        // Plan untouched by the failed attempts.
        assert_eq!(plan, chason.plan(&m).unwrap());
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let m = uniform_random(64, 64, 300, 1);
        let chason = ChasonEngine::default();
        let serpens = SerpensEngine::default();
        let plan = chason.plan(&m).unwrap();
        assert!(matches!(
            serpens.run_planned(&plan, &[0.0; 64]),
            Err(SimError::PlanMismatch(_))
        ));
        let toy = ChasonEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            ..AcceleratorConfig::chason()
        });
        assert!(matches!(
            toy.run_planned(&plan, &[0.0; 64]),
            Err(SimError::PlanMismatch(_))
        ));
        assert!(matches!(
            chason.run_planned(&plan, &[0.0; 63]),
            Err(SimError::VectorLengthMismatch { .. })
        ));
    }
}
