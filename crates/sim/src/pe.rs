//! The processing element (§4.2.1): multiplier, adder, Router, `URAM_pvt`
//! and the Shared-Channel URAM Group (ScUG).

use crate::memory::Uram;
use crate::SimError;
use chason_core::schedule::{NzSlot, SchedulerConfig};
use std::collections::HashMap;

/// One PE of a PEG.
///
/// A PE multiplies incoming non-zeros by the buffered `x` value and
/// accumulates the product into on-chip memory. The Router (a mux pair in
/// hardware) steers the partial sum by the element's `(pvt, PE_src)` flags:
///
/// * `pvt = 1` → the PE's own `URAM_pvt`;
/// * `pvt = 0` → `URAM_sh[(hop − 1)·P + PE_src]` in the PE's ScUG, where
///   `hop` is the ring distance to the element's home channel — one bank
///   group per migration hop, segregating partial sums that belong to each
///   PE of each donor channel (hop 1 in the deployed design; §6.1's
///   extended scope adds groups).
///
/// Without this segregation, migrated values would corrupt the private
/// accumulators — the exact hazard §3.2 describes.
#[derive(Debug, Clone, PartialEq)]
pub struct Pe {
    channel: usize,
    lane: usize,
    uram_pvt: Uram,
    scug: Vec<Uram>,
    mac_ops: u64,
    /// Pipeline-hazard detector: last cycle each (bank, local row) partial
    /// sum entered the accumulator. `bank` is `None` for `URAM_pvt`.
    last_access: HashMap<(Option<usize>, usize), u64>,
    hazards: u64,
}

impl Pe {
    /// Creates a PE with `rows_per_pe` partial-sum rows and `scug_size`
    /// shared URAMs (0 for Serpens, which has no ScUG).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RowCapacityExceeded`] if one URAM cannot hold
    /// `rows_per_pe` partial sums.
    pub fn new(
        channel: usize,
        lane: usize,
        rows_per_pe: usize,
        scug_size: usize,
    ) -> Result<Self, SimError> {
        let uram_pvt = Uram::new(rows_per_pe)?;
        let scug = (0..scug_size)
            .map(|_| Uram::new(rows_per_pe))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Pe {
            channel,
            lane,
            uram_pvt,
            scug,
            mac_ops: 0,
            last_access: HashMap::new(),
            hazards: 0,
        })
    }

    /// Channel this PE belongs to.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Lane (PE index within the PEG).
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Multiply-accumulates one scheduled non-zero.
    ///
    /// `x_value` is the dense-vector word the PEG's BRAM bank delivered for
    /// the element's column.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoutingViolation`] when
    ///
    /// * a private element's row is not owned by this PE (the scheduler
    ///   mis-routed it), or
    /// * a migrated element arrives but the PE has no ScUG (Serpens), or
    ///   its `PE_src` exceeds the ScUG size.
    pub fn process(
        &mut self,
        slot: &NzSlot,
        x_value: f32,
        sched: &SchedulerConfig,
    ) -> Result<(), SimError> {
        self.process_at(slot, x_value, sched, None)
    }

    /// Like [`Pe::process`], additionally checking the accumulator
    /// read-modify-write hazard: two values of the same row entering this
    /// PE within `dependency_distance` cycles would collide on the same
    /// URAM slot mid-pipeline (§3.2's bank conflict). Detected hazards are
    /// counted (see [`Pe::hazards`]); a correct schedule produces none.
    pub fn process_at(
        &mut self,
        slot: &NzSlot,
        x_value: f32,
        sched: &SchedulerConfig,
        cycle: Option<u64>,
    ) -> Result<(), SimError> {
        let product = slot.value * x_value;
        let local_row = sched.local_row(slot.row);
        self.mac_ops += 1;
        if let Some(now) = cycle {
            let bank = if slot.pvt {
                None
            } else {
                let home = sched.channel_for_row(slot.row);
                let hop = sched.hop_for(self.channel, home);
                Some(hop.saturating_sub(1) * sched.pes_per_channel + slot.pe_src as usize)
            };
            let key = (bank, local_row);
            if let Some(&prev) = self.last_access.get(&key) {
                if now.saturating_sub(prev) < sched.dependency_distance as u64 {
                    self.hazards += 1;
                }
            }
            self.last_access.insert(key, now);
        }
        if slot.pvt {
            if sched.channel_for_row(slot.row) != self.channel
                || sched.lane_for_row(slot.row) != self.lane
            {
                return Err(SimError::RoutingViolation(format!(
                    "private element of row {} reached PE ({}, {})",
                    slot.row, self.channel, self.lane
                )));
            }
            self.uram_pvt.accumulate(local_row, product);
        } else {
            let home = sched.channel_for_row(slot.row);
            let hop = sched.hop_for(self.channel, home);
            if hop == 0 {
                return Err(SimError::RoutingViolation(format!(
                    "element of row {} tagged as migrated inside its home channel {}",
                    slot.row, self.channel
                )));
            }
            let bank = (hop - 1) * sched.pes_per_channel + slot.pe_src as usize;
            let scug_len = self.scug.len();
            match self.scug.get_mut(bank) {
                Some(uram) => uram.accumulate(local_row, product),
                None => {
                    return Err(SimError::RoutingViolation(format!(
                    "migrated element (hop {}, PE_src {}) reached PE ({}, {}) with ScUG size {}",
                    hop, slot.pe_src, self.channel, self.lane, scug_len
                )))
                }
            }
        }
        Ok(())
    }

    /// The private partial sums (`URAM_pvt` contents).
    pub fn private_partials(&self) -> &[f32] {
        self.uram_pvt.contents()
    }

    /// The shared partial sums for source lane `k` (`URAM_sh[k]` contents).
    ///
    /// # Panics
    ///
    /// Panics if `k >= scug_size`.
    pub fn shared_partials(&self, k: usize) -> &[f32] {
        self.scug[k].contents()
    }

    /// ScUG size (number of `URAM_sh` banks).
    pub fn scug_size(&self) -> usize {
        self.scug.len()
    }

    /// Multiply-accumulate operations performed so far.
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Accumulator read-modify-write hazards observed (same row re-entering
    /// this PE within the dependency distance). A valid schedule keeps this
    /// at zero; a non-zero count means the offline scheduler emitted a
    /// stream the 10-stage accumulator could not execute at II = 1.
    pub fn hazards(&self) -> u64 {
        self.hazards
    }

    /// Total URAM accesses (reads + writes) across private and shared banks.
    pub fn uram_accesses(&self) -> u64 {
        let pvt = self.uram_pvt.reads() + self.uram_pvt.writes();
        let sh: u64 = self.scug.iter().map(|u| u.reads() + u.writes()).sum();
        pvt + sh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> SchedulerConfig {
        SchedulerConfig::toy(2, 2, 4) // 4 total PEs
    }

    #[test]
    fn private_element_lands_in_uram_pvt() {
        let cfg = sched();
        // Row 1 maps to channel 0, lane 1; local row of row 5 is 1.
        let mut pe = Pe::new(0, 1, 4, 2).unwrap();
        pe.process(&NzSlot::private(2.0, 1, 0), 3.0, &cfg).unwrap();
        pe.process(&NzSlot::private(1.0, 5, 0), 10.0, &cfg).unwrap();
        assert_eq!(pe.private_partials(), &[6.0, 10.0, 0.0, 0.0]);
        assert_eq!(pe.mac_ops(), 2);
    }

    #[test]
    fn migrated_element_lands_in_scug_by_pe_src() {
        let cfg = sched();
        // Row 2 belongs to channel 1 lane 0; it migrates into channel 0.
        let mut pe = Pe::new(0, 1, 4, 2).unwrap();
        let slot = NzSlot {
            value: 2.0,
            row: 2,
            col: 0,
            pvt: false,
            pe_src: 0,
        };
        pe.process(&slot, 5.0, &cfg).unwrap();
        assert_eq!(pe.shared_partials(0)[0], 10.0);
        assert_eq!(pe.shared_partials(1)[0], 0.0);
        assert_eq!(pe.private_partials()[0], 0.0);
    }

    #[test]
    fn misrouted_private_element_is_rejected() {
        let cfg = sched();
        let mut pe = Pe::new(0, 0, 4, 2).unwrap();
        // Row 1 belongs to lane 1, not lane 0.
        let err = pe
            .process(&NzSlot::private(1.0, 1, 0), 1.0, &cfg)
            .unwrap_err();
        assert!(matches!(err, SimError::RoutingViolation(_)));
    }

    #[test]
    fn migrated_element_without_scug_is_rejected() {
        let cfg = sched();
        let mut pe = Pe::new(0, 0, 4, 0).unwrap(); // Serpens-style PE
        let slot = NzSlot {
            value: 1.0,
            row: 2,
            col: 0,
            pvt: false,
            pe_src: 0,
        };
        let err = pe.process(&slot, 1.0, &cfg).unwrap_err();
        assert!(matches!(err, SimError::RoutingViolation(_)));
    }

    #[test]
    fn uram_accesses_are_counted() {
        let cfg = sched();
        let mut pe = Pe::new(0, 0, 4, 1).unwrap();
        pe.process(&NzSlot::private(1.0, 0, 0), 1.0, &cfg).unwrap();
        // One accumulate = 1 read + 1 write.
        assert_eq!(pe.uram_accesses(), 2);
    }

    #[test]
    fn capacity_error_propagates() {
        let err = Pe::new(0, 0, crate::memory::URAM_PARTIALS + 1, 0).unwrap_err();
        assert!(matches!(err, SimError::RowCapacityExceeded { .. }));
    }
}
