//! The Chasoň accelerator engine (§4).

use crate::config::{AcceleratorConfig, Execution};
use crate::engine::execute;
use crate::SimError;
use chason_core::schedule::Crhcs;
use chason_sparse::CooMatrix;

/// The Chasoň streaming SpMV accelerator.
///
/// Chasoň schedules each column window with [`Crhcs`] (cross-channel data
/// migration) and executes it on PEGs whose PEs carry a full ScUG (one
/// `URAM_sh` per neighbour-channel PE), a Reduction Unit, and the extended
/// Rearrange/Arbiter/Merger path. Runs at 301 MHz post-route on the Alveo
/// U55c.
///
/// # Example
///
/// ```
/// use chason_sim::{AcceleratorConfig, ChasonEngine};
/// use chason_sparse::generators::uniform_random;
///
/// # fn main() -> Result<(), chason_sim::SimError> {
/// let m = uniform_random(256, 256, 1000, 1);
/// let x = vec![1.0f32; 256];
/// let exec = ChasonEngine::new(AcceleratorConfig::chason()).run(&m, &x)?;
/// assert_eq!(exec.mac_ops, 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChasonEngine {
    config: AcceleratorConfig,
    scheduler: Crhcs,
}

impl ChasonEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        ChasonEngine {
            config,
            scheduler: Crhcs::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    pub(crate) fn scheduler(&self) -> &Crhcs {
        &self.scheduler
    }

    /// Deployed ScUG size: `URAM_sh` banks per PE.
    ///
    /// Scales *linearly* with the migration-hop count: accepting elements
    /// from `h` ring neighbours requires segregated partial-sum storage for
    /// each neighbour channel's `pes_per_channel` source PEs, i.e.
    /// `h × pes_per_channel` banks. This is exactly the cost §6.1 cites for
    /// deploying only one hop on the U55c ("each extra hop costs another
    /// set of `URAM_sh` banks per PE"); no sharing across hops is modelled
    /// because partial sums from different home channels can never merge
    /// before the Reduction Unit.
    pub(crate) fn scug_size(&self) -> usize {
        self.config.sched.pes_per_channel * self.config.sched.migration_hops
    }

    /// Executes `y = A·x`, returning the result vector and the cycle/traffic
    /// accounting.
    ///
    /// # Errors
    ///
    /// * [`SimError::VectorLengthMismatch`] if `x.len() != matrix.cols()`;
    /// * [`SimError::RowCapacityExceeded`] if the matrix needs more
    ///   partial-sum rows per PE than a URAM holds (row-partition first);
    /// * [`SimError::InvalidConfig`] for inconsistent configurations.
    pub fn run(&self, matrix: &CooMatrix, x: &[f32]) -> Result<Execution, SimError> {
        execute(
            "chason",
            &self.scheduler,
            &self.config,
            self.scug_size(),
            true,
            matrix,
            x,
        )
    }
}

impl Default for ChasonEngine {
    fn default() -> Self {
        ChasonEngine::new(AcceleratorConfig::chason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::{power_law, uniform_random};

    fn reference(m: &CooMatrix, x: &[f32]) -> Vec<f32> {
        m.spmv(x)
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() / scale < 1e-4,
                "row {i}: {x} vs {y} differ beyond FP reassociation tolerance"
            );
        }
    }

    #[test]
    fn result_matches_reference_on_random_matrix() {
        let m = uniform_random(300, 300, 2500, 11);
        let x: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin()).collect();
        let exec = ChasonEngine::default().run(&m, &x).unwrap();
        assert_close(&exec.y, &reference(&m, &x));
        assert_eq!(exec.mac_ops, 2500);
        assert_eq!(exec.engine, "chason");
    }

    #[test]
    fn result_matches_reference_on_skewed_matrix() {
        let m = power_law(500, 500, 4000, 1.9, 23);
        let x: Vec<f32> = (0..500).map(|i| 1.0 + (i % 7) as f32).collect();
        let exec = ChasonEngine::default().run(&m, &x).unwrap();
        assert_close(&exec.y, &reference(&m, &x));
    }

    #[test]
    fn wide_matrix_spans_multiple_windows() {
        // 20_000 columns -> 3 windows of W = 8192.
        let m = uniform_random(64, 20_000, 5_000, 3);
        let x = vec![0.5f32; 20_000];
        let exec = ChasonEngine::default().run(&m, &x).unwrap();
        assert_eq!(exec.windows, 3);
        assert_close(&exec.y, &reference(&m, &x));
        assert!(exec.cycles.x_reload >= 3);
    }

    #[test]
    fn vector_length_is_validated() {
        let m = uniform_random(10, 10, 10, 1);
        let err = ChasonEngine::default().run(&m, &[1.0; 9]).unwrap_err();
        assert!(matches!(err, SimError::VectorLengthMismatch { .. }));
    }

    #[test]
    fn oversized_matrix_reports_capacity() {
        // 128 PEs * 8192 rows/PE = 1_048_576 rows max; exceed it.
        let m = CooMatrix::new(1_100_000, 4);
        let err = ChasonEngine::default().run(&m, &[0.0; 4]).unwrap_err();
        assert!(matches!(err, SimError::RowCapacityExceeded { .. }));
    }

    #[test]
    fn empty_matrix_executes_cleanly() {
        let m = CooMatrix::new(16, 16);
        let exec = ChasonEngine::default().run(&m, &[1.0; 16]).unwrap();
        assert_eq!(exec.y, vec![0.0; 16]);
        assert_eq!(exec.cycles.stream, 0);
    }

    #[test]
    fn multi_hop_deploys_a_linearly_larger_scug() {
        // scug_size is the per-PE partial-sum group count the PEGs deploy;
        // it must scale linearly with the hop count (§6.1's cost model,
        // mirrored by `ResourceConfig::chason_with_hops`).
        let mut config = AcceleratorConfig::chason();
        config.sched.migration_hops = 2;
        let engine = ChasonEngine::new(config);
        assert_eq!(engine.scug_size(), 2 * config.sched.pes_per_channel);
        assert_eq!(
            ChasonEngine::default().scug_size(),
            config.sched.pes_per_channel
        );
        // A two-hop machine still executes correctly end to end.
        let m = power_law(400, 400, 3000, 1.9, 7);
        let x: Vec<f32> = (0..400).map(|i| 0.5 + (i % 5) as f32).collect();
        let exec = engine.run(&m, &x).unwrap();
        assert_close(&exec.y, &reference(&m, &x));
        // More migration reach can only help utilization.
        let one_hop = ChasonEngine::default().run(&m, &x).unwrap();
        assert!(exec.underutilization <= one_hop.underutilization + 1e-12);
    }

    #[test]
    fn reduction_cycles_are_charged() {
        let m = uniform_random(256, 256, 500, 2);
        let exec = ChasonEngine::default().run(&m, &vec![1.0; 256]).unwrap();
        // 256 rows / 128 PEs = 2 rows per PE + tree depth 3, derated by the
        // memory-path initiation interval.
        let ii = AcceleratorConfig::chason().stream_ii;
        assert_eq!(exec.cycles.reduction, ((2.0 + 3.0) * ii).ceil() as u64);
    }
}
