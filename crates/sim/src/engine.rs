//! Shared execution core of the two accelerator engines, split into a
//! *planning* half (schedule every column window — vector-independent,
//! parallelizable) and an *execution* half (replay a plan against a dense
//! vector). `run` composes the two, so planned and unplanned execution are
//! bit-identical by construction.

use crate::config::{AcceleratorConfig, CycleBreakdown, Execution};
use crate::peg::Peg;
use crate::rearrange::merge_outputs;
use crate::SimError;
use chason_core::plan::{PassPlan, PlanWindow};
use chason_core::schedule::Scheduler;
use chason_core::window::partition_columns;
use chason_sparse::CooMatrix;

/// Schedules every column window of `matrix`, producing the windows of a
/// [`PassPlan`] covering rows `row_start..row_start + matrix.rows()`.
///
/// Windows are independent — each is scheduled from its own sub-matrix — so
/// with `threads > 1` they are scheduled concurrently. Workers own disjoint
/// contiguous chunks of the window list and results are reassembled in
/// window order, so the plan is identical for every thread count.
pub(crate) fn plan_pass<S: Scheduler + Sync>(
    scheduler: &S,
    config: &AcceleratorConfig,
    matrix: &CooMatrix,
    row_start: usize,
    threads: usize,
) -> Result<PassPlan, SimError> {
    if !config.is_valid() {
        return Err(SimError::InvalidConfig(
            "accelerator configuration failed validation".to_string(),
        ));
    }
    let sched = &config.sched;
    let windows = partition_columns(matrix, config.window);

    let plan_one = |window: &chason_core::window::ColumnWindow| {
        let schedule = scheduler.schedule(&window.matrix, sched);
        PlanWindow {
            col_start: window.col_start,
            col_end: window.col_end,
            nnz: window.matrix.nnz(),
            stalls: schedule.stalls(),
            stream_cycles: schedule.stream_cycles(),
            schedule,
        }
    };

    let threads = threads.clamp(1, windows.len().max(1));
    let planned: Vec<PlanWindow> = if threads <= 1 {
        windows.iter().map(plan_one).collect()
    } else {
        let chunk = windows.len().div_ceil(threads);
        let chunks = crossbeam::scope(|scope| {
            let handles: Vec<_> = windows
                .chunks(chunk)
                .map(|ws| scope.spawn(move |_| ws.iter().map(plan_one).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // A panic in a worker can only come from a scheduler bug;
                    // propagating it (rather than discarding the plan) is the
                    // correct surface for that failure.
                    #[allow(clippy::expect_used)] // xtask: propagates worker panics
                    h.join().expect("window planner threads do not panic")
                })
                .collect()
        });
        #[allow(clippy::expect_used)] // xtask: scope only errs if a child panicked
        let chunks: Vec<Vec<PlanWindow>> = chunks.expect("window planner scope does not panic");
        chunks.into_iter().flatten().collect()
    };

    Ok(PassPlan {
        row_start,
        row_end: row_start + matrix.rows(),
        nnz: matrix.nnz(),
        windows: planned,
    })
}

/// Executes one planned pass against `x`, replaying each window's stored
/// schedule on the PEG models and charging the cycle/traffic accounting.
///
/// In debug builds (and under the `strict-verify` feature) the pass is
/// first run through the `chason-verify` static checker; a pass with rule
/// violations is rejected with [`SimError::InvalidSchedule`] instead of
/// executing and producing silently wrong numbers.
pub(crate) fn execute_pass(
    engine: &'static str,
    config: &AcceleratorConfig,
    scug_size: usize,
    has_reduction: bool,
    pass: &PassPlan,
    cols: usize,
    x: &[f32],
) -> Result<Execution, SimError> {
    if !config.is_valid() {
        return Err(SimError::InvalidConfig(
            "accelerator configuration failed validation".to_string(),
        ));
    }
    if x.len() != cols {
        return Err(SimError::VectorLengthMismatch {
            got: x.len(),
            expected: cols,
        });
    }
    #[cfg(any(debug_assertions, feature = "strict-verify"))]
    {
        let report = chason_verify::verify_pass(pass, &config.sched, config.window);
        if report.has_errors() {
            return Err(SimError::InvalidSchedule(report.to_string()));
        }
    }
    let sched = &config.sched;
    let rows = pass.rows();
    let rows_per_pe = rows.div_ceil(sched.total_pes().max(1));

    // Build one PEG per channel.
    let mut pegs = (0..sched.channels)
        .map(|c| {
            Peg::new(
                c,
                sched.pes_per_channel,
                config.window,
                rows_per_pe,
                scug_size,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;

    let mut cycles = CycleBreakdown::default();
    let mut stalls = 0usize;
    let mut bytes_streamed = 0u64;
    let mut stamp_base = 0u64;
    let mut bytes_auxiliary = 0u64;
    let mut occupancy: Vec<u16> = Vec::new();

    for window in &pass.windows {
        let schedule = &window.schedule;
        // Reload every PEG's x buffer with this window's slice; the reload
        // is broadcast from one HBM channel at `x_reload_lanes` words/cycle.
        let x_slice = &x[window.col_start..window.col_end];
        for peg in &mut pegs {
            peg.load_x(x_slice);
        }
        cycles.x_reload +=
            (x_slice.len().div_ceil(config.x_reload_lanes) as f64 * config.stream_ii).ceil() as u64;

        // Stream: all channels advance in lockstep, one beat per cycle,
        // derated by the calibrated initiation-interval inflation.
        let stream_cycles = schedule.stream_cycles();
        cycles.stream += (stream_cycles as f64 * config.stream_ii).ceil() as u64;
        cycles.fill_drain += sched.dependency_distance as u64;
        stalls += schedule.stalls();
        // Every channel streams its (equalized) list: one 64-bit word per
        // lane per cycle.
        bytes_streamed += (stream_cycles * sched.channels * sched.pes_per_channel * 8) as u64;
        bytes_auxiliary += (x_slice.len() * 4) as u64; // x reload

        let occupancy_base = occupancy.len();
        if config.record_occupancy {
            occupancy.resize(occupancy_base + stream_cycles, 0);
        }
        for (c, channel) in schedule.channels.iter().enumerate() {
            for (cycle, slots) in channel.grid.iter().enumerate() {
                // Stamp the global cycle so the PEs' hazard detectors can
                // verify the schedule is executable at II = 1; the base
                // advances across windows (the reload gap separates them).
                pegs[c].consume_cycle_at(slots, sched, Some(stamp_base + cycle as u64))?;
                if config.record_occupancy {
                    let busy = slots.iter().flatten().count() as u16;
                    occupancy[occupancy_base + cycle] += busy;
                }
            }
        }
        stamp_base += (stream_cycles
            + sched.dependency_distance
            + config.window.div_ceil(config.x_reload_lanes)) as u64;
    }

    // Reduction Unit sweep (Chasoň only): the adder tree visits every
    // partial-sum address once per source lane's consolidated URAM, plus the
    // tree's own depth (§4.2.2).
    if has_reduction && scug_size > 0 {
        let tree_depth = (sched.pes_per_channel as f64).log2().ceil() as u64;
        cycles.reduction +=
            ((rows_per_pe as u64 + tree_depth) as f64 * config.stream_ii).ceil() as u64;
    }
    // Arbiter/Merger drain: 16 FP32 output values per cycle (§4.3).
    cycles.merge += (rows.div_ceil(config.merge_width) as f64 * config.stream_ii).ceil() as u64;
    cycles.invocation += config.invocation_overhead_cycles;

    let outputs: Vec<_> = pegs.iter().map(Peg::reduce).collect();
    let y = merge_outputs(&outputs, sched, rows);
    let mac_ops: u64 = pegs.iter().map(Peg::mac_ops).sum();
    let hazards: u64 = pegs.iter().map(Peg::hazards).sum();
    debug_assert_eq!(hazards, 0, "scheduler emitted a stream with RAW hazards");

    let nnz = pass.nnz;
    let underutilization = if nnz + stalls == 0 {
        0.0
    } else {
        stalls as f64 / (nnz + stalls) as f64
    };

    bytes_auxiliary += (rows * 4) as u64; // y writeback
    Ok(Execution {
        engine,
        y,
        cycles,
        clock_mhz: config.clock_mhz,
        nnz,
        rows,
        cols,
        stalls,
        underutilization,
        bytes_streamed,
        bytes_auxiliary,
        windows: pass.windows.len(),
        mac_ops,
        occupancy,
    })
}

/// Runs one SpMV on the architecture described by `config`, scheduling each
/// column window with `scheduler` and executing immediately.
///
/// `scug_size` selects the architecture family: `pes_per_channel` for
/// Chasoň (one `URAM_sh` per neighbour PE), 0 for Serpens. When
/// `has_reduction` is set the Reduction Unit sweep is charged to the cycle
/// budget (§4.2.2); Serpens has no such unit.
pub(crate) fn execute<S: Scheduler + Sync>(
    engine: &'static str,
    scheduler: &S,
    config: &AcceleratorConfig,
    scug_size: usize,
    has_reduction: bool,
    matrix: &CooMatrix,
    x: &[f32],
) -> Result<Execution, SimError> {
    if x.len() != matrix.cols() {
        return Err(SimError::VectorLengthMismatch {
            got: x.len(),
            expected: matrix.cols(),
        });
    }
    let pass = plan_pass(scheduler, config, matrix, 0, 1)?;
    execute_pass(
        engine,
        config,
        scug_size,
        has_reduction,
        &pass,
        matrix.cols(),
        x,
    )
}
