//! Row-partitioned execution (§4.5).
//!
//! Reducing the deployed ScUG size trades partial-sum capacity for URAMs:
//! "it results in decreasing the size of the input sparse matrix A that can
//! be processed in a single pass. In such a situation, we partition the
//! bigger sparse matrix A and feed the partitions into Chasoň." This module
//! implements that pass loop: the matrix is split on per-PE URAM capacity
//! boundaries, each partition runs as an independent pass (paying its own
//! invocation and reload overheads), and the output vector is concatenated.

use crate::config::{CycleBreakdown, Execution};
use crate::{ChasonEngine, SerpensEngine, SimError};
use chason_core::window::partition_rows_capacity;
use chason_sparse::CooMatrix;

pub(crate) fn combine(engine: &'static str, parts: Vec<Execution>, cols: usize) -> Execution {
    let mut y = Vec::new();
    let mut cycles = CycleBreakdown::default();
    let mut stalls = 0usize;
    let mut nnz = 0usize;
    let mut bytes = 0u64;
    let mut bytes_aux = 0u64;
    let mut windows = 0usize;
    let mut mac_ops = 0u64;
    let mut occupancy = Vec::new();
    let clock_mhz = parts.first().map_or(1.0, |e| e.clock_mhz);
    for e in parts {
        y.extend_from_slice(&e.y);
        occupancy.extend_from_slice(&e.occupancy);
        cycles.stream += e.cycles.stream;
        cycles.fill_drain += e.cycles.fill_drain;
        cycles.x_reload += e.cycles.x_reload;
        cycles.reduction += e.cycles.reduction;
        cycles.merge += e.cycles.merge;
        cycles.invocation += e.cycles.invocation;
        stalls += e.stalls;
        nnz += e.nnz;
        bytes += e.bytes_streamed;
        bytes_aux += e.bytes_auxiliary;
        windows += e.windows;
        mac_ops += e.mac_ops;
    }
    let underutilization = if nnz + stalls == 0 {
        0.0
    } else {
        stalls as f64 / (nnz + stalls) as f64
    };
    Execution {
        engine,
        rows: y.len(),
        y,
        cycles,
        clock_mhz,
        nnz,
        cols,
        stalls,
        underutilization,
        bytes_streamed: bytes,
        bytes_auxiliary: bytes_aux,
        windows,
        mac_ops,
        occupancy,
    }
}

macro_rules! impl_run_partitioned {
    ($engine:ty, $name:literal) => {
        impl $engine {
            /// Executes `y = A·x`, automatically row-partitioning matrices
            /// whose per-PE row count exceeds the partial-sum URAM capacity
            /// (§4.5). Each pass pays its own invocation and x-reload
            /// overheads, exactly as the hardware would.
            ///
            /// # Errors
            ///
            /// Same conditions as `run`, except that
            /// [`SimError::RowCapacityExceeded`] can no longer occur.
            pub fn run_partitioned(
                &self,
                matrix: &CooMatrix,
                x: &[f32],
            ) -> Result<Execution, SimError> {
                if x.len() != matrix.cols() {
                    return Err(SimError::VectorLengthMismatch {
                        got: x.len(),
                        expected: matrix.cols(),
                    });
                }
                let total_pes = self.config().sched.total_pes();
                let capacity = crate::memory::URAM_PARTIALS;
                if matrix.rows().div_ceil(total_pes.max(1)) <= capacity {
                    return self.run(matrix, x);
                }
                let parts = partition_rows_capacity(matrix, capacity, total_pes)
                    .iter()
                    .map(|p| self.run(&p.matrix, x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(combine($name, parts, matrix.cols()))
            }
        }
    };
}

impl_run_partitioned!(ChasonEngine, "chason");
impl_run_partitioned!(SerpensEngine, "serpens");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use chason_core::schedule::SchedulerConfig;
    use chason_sparse::generators::uniform_random;

    /// A tiny machine (4 PEs) makes partitioning kick in at small sizes
    /// without allocating million-row URAM mirrors.
    fn tiny_engine() -> ChasonEngine {
        ChasonEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            ..AcceleratorConfig::chason()
        })
    }

    #[test]
    fn small_matrices_take_the_single_pass_path() {
        let m = uniform_random(128, 64, 400, 3);
        let x = vec![1.0f32; 64];
        let direct = ChasonEngine::default().run(&m, &x).unwrap();
        let auto = ChasonEngine::default().run_partitioned(&m, &x).unwrap();
        assert_eq!(direct, auto);
    }

    #[test]
    fn oversized_matrix_is_partitioned_and_correct() {
        // 4 PEs x 8192 rows/PE = 32_768 rows per pass; use 70_000 rows.
        let m = uniform_random(70_000, 128, 30_000, 5);
        let x: Vec<f32> = (0..128).map(|i| 0.25 + (i % 3) as f32).collect();
        let engine = tiny_engine();
        assert!(matches!(
            engine.run(&m, &x),
            Err(SimError::RowCapacityExceeded { .. })
        ));
        let exec = engine.run_partitioned(&m, &x).unwrap();
        assert_eq!(exec.y.len(), 70_000);
        assert_eq!(exec.mac_ops, 30_000);
        let oracle = m.spmv(&x);
        for (i, (a, b)) in exec.y.iter().zip(&oracle).enumerate() {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() / scale < 1e-4, "row {i}: {a} vs {b}");
        }
        // Three passes, each paying an invocation overhead.
        let passes = 70_000usize.div_ceil(32_768) as u64;
        assert_eq!(
            exec.cycles.invocation,
            passes * engine.config().invocation_overhead_cycles
        );
    }

    #[test]
    fn serpens_partitions_too() {
        let m = uniform_random(40_000, 64, 10_000, 7);
        let x = vec![0.5f32; 64];
        let engine = SerpensEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            clock_mhz: 223.0,
            ..AcceleratorConfig::serpens()
        });
        let exec = engine.run_partitioned(&m, &x).unwrap();
        assert_eq!(exec.engine, "serpens");
        assert_eq!(exec.y.len(), 40_000);
        let oracle = m.spmv(&x);
        let err: f32 = exec
            .y
            .iter()
            .zip(&oracle)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 1e-2, "max abs err {err}");
    }

    #[test]
    fn vector_mismatch_is_still_detected() {
        let m = uniform_random(10, 10, 10, 1);
        let err = ChasonEngine::default()
            .run_partitioned(&m, &[1.0; 3])
            .unwrap_err();
        assert!(matches!(err, SimError::VectorLengthMismatch { .. }));
    }
}
