//! The processing element group (§4.2): eight PEs, the dense-vector BRAM
//! banks, and the Reduction Unit.

use crate::memory::{Bram, BRAM18K_WORDS};
use crate::pe::Pe;
use crate::SimError;
use chason_core::schedule::{NzSlot, SchedulerConfig};

/// Final partial sums a PEG delivers to the Rearrange Unit.
#[derive(Debug, Clone, PartialEq)]
pub struct PegOutputs {
    /// `pvt[lane][local_row]`: each PE's private partial sums.
    pub pvt: Vec<Vec<f32>>,
    /// `shared[k][local_row]`: the Reduction Unit's consolidated partial
    /// sums for PE `k` of the *neighbouring* channel (empty for Serpens).
    pub shared: Vec<Vec<f32>>,
}

/// One PE group: the compute side of one HBM channel.
///
/// The PEG buffers the current `x` window in dual-port BRAM banks, feeds one
/// 64-bit lane of the channel's 512-bit beat to each PE, and (in Chasoň)
/// hosts the Reduction Unit — an adder tree that sweeps the `k`-th `URAM_sh`
/// of all eight ScUGs and consolidates them into a single URAM per source PE
/// (§4.2.2, Fig. 7c).
#[derive(Debug, Clone, PartialEq)]
pub struct Peg {
    channel: usize,
    pes: Vec<Pe>,
    x_banks: Vec<Bram>,
    x_len: usize,
}

impl Peg {
    /// Creates a PEG for `channel` with `lanes` PEs.
    ///
    /// `window` is the x-buffer capacity in words; `rows_per_pe` sizes the
    /// partial-sum URAMs; `scug_size` is 0 for Serpens and `lanes` for
    /// Chasoň.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::RowCapacityExceeded`] from PE construction.
    pub fn new(
        channel: usize,
        lanes: usize,
        window: usize,
        rows_per_pe: usize,
        scug_size: usize,
    ) -> Result<Self, SimError> {
        let pes = (0..lanes)
            .map(|lane| Pe::new(channel, lane, rows_per_pe, scug_size))
            .collect::<Result<Vec<_>, _>>()?;
        let banks = window.div_ceil(BRAM18K_WORDS).max(1);
        let x_banks = (0..banks)
            .map(|b| {
                let remaining = window.saturating_sub(b * BRAM18K_WORDS);
                Bram::new(remaining.min(BRAM18K_WORDS))
            })
            .collect();
        Ok(Peg {
            channel,
            pes,
            x_banks,
            x_len: 0,
        })
    }

    /// Channel this PEG serves.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The PEs of this group.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// Number of BRAM banks buffering `x`.
    pub fn x_bank_count(&self) -> usize {
        self.x_banks.len()
    }

    /// Loads a new `x` window into the BRAM banks (the inter-window reload
    /// of §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the buffer.
    pub fn load_x(&mut self, x_window: &[f32]) {
        let capacity: usize = self.x_banks.iter().map(Bram::len).sum();
        assert!(x_window.len() <= capacity, "x window exceeds BRAM capacity");
        for (addr, &v) in x_window.iter().enumerate() {
            self.x_banks[addr / BRAM18K_WORDS].write(addr % BRAM18K_WORDS, v);
        }
        self.x_len = x_window.len();
    }

    fn read_x(&mut self, addr: usize) -> f32 {
        debug_assert!(addr < self.x_len, "x read past loaded window");
        self.x_banks[addr / BRAM18K_WORDS].read(addr % BRAM18K_WORDS)
    }

    /// Consumes one beat: `slots[lane]` goes to PE `lane`; stalls are
    /// skipped (the multiply/accumulate is suppressed, §2.2).
    ///
    /// # Errors
    ///
    /// Propagates routing violations from the PEs.
    pub fn consume_cycle(
        &mut self,
        slots: &[Option<NzSlot>],
        sched: &SchedulerConfig,
    ) -> Result<(), SimError> {
        self.consume_cycle_at(slots, sched, None)
    }

    /// Like [`Peg::consume_cycle`], with a cycle stamp enabling the PEs'
    /// pipeline-hazard detectors (see [`crate::Pe::hazards`]).
    ///
    /// # Errors
    ///
    /// Propagates routing violations from the PEs.
    pub fn consume_cycle_at(
        &mut self,
        slots: &[Option<NzSlot>],
        sched: &SchedulerConfig,
        cycle: Option<u64>,
    ) -> Result<(), SimError> {
        for (lane, slot) in slots.iter().enumerate() {
            if let Some(nz) = slot {
                let x_value = self.read_x(nz.col);
                self.pes[lane].process_at(nz, x_value, sched, cycle)?;
            }
        }
        Ok(())
    }

    /// Total pipeline hazards observed by the group's PEs.
    pub fn hazards(&self) -> u64 {
        self.pes.iter().map(Pe::hazards).sum()
    }

    /// Runs the Reduction Unit and gathers the PEG's final partial sums.
    ///
    /// For each source lane `k`, the adder tree sums `URAM_sh[k]` across all
    /// PEs (Fig. 7c); private URAMs are passed through unchanged.
    pub fn reduce(&self) -> PegOutputs {
        let pvt: Vec<Vec<f32>> = self
            .pes
            .iter()
            .map(|pe| pe.private_partials().to_vec())
            .collect();
        let scug_size = self.pes.first().map_or(0, Pe::scug_size);
        let rows = pvt.first().map_or(0, Vec::len);
        let mut shared = Vec::with_capacity(scug_size);
        for k in 0..scug_size {
            let mut consolidated = vec![0.0f32; rows];
            for pe in &self.pes {
                for (row, &v) in pe.shared_partials(k).iter().enumerate() {
                    consolidated[row] += v;
                }
            }
            shared.push(consolidated);
        }
        PegOutputs { pvt, shared }
    }

    /// Total MAC operations performed by the group's PEs.
    pub fn mac_ops(&self) -> u64 {
        self.pes.iter().map(Pe::mac_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> SchedulerConfig {
        SchedulerConfig::toy(2, 2, 4)
    }

    #[test]
    fn bram_bank_count_covers_the_window() {
        let peg = Peg::new(0, 8, 8192, 64, 8).unwrap();
        assert_eq!(peg.x_bank_count(), 8192usize.div_ceil(BRAM18K_WORDS));
    }

    #[test]
    fn consume_cycle_multiplies_by_buffered_x() {
        let cfg = sched();
        let mut peg = Peg::new(0, 2, 16, 4, 2).unwrap();
        peg.load_x(&[0.0, 10.0, 20.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Row 0 -> (ch 0, lane 0); row 1 -> (ch 0, lane 1).
        let slots = vec![
            Some(NzSlot::private(2.0, 0, 1)),
            Some(NzSlot::private(3.0, 1, 2)),
        ];
        peg.consume_cycle(&slots, &cfg).unwrap();
        let out = peg.reduce();
        assert_eq!(out.pvt[0][0], 20.0);
        assert_eq!(out.pvt[1][0], 60.0);
        assert_eq!(peg.mac_ops(), 2);
    }

    #[test]
    fn stall_slots_are_skipped() {
        let cfg = sched();
        let mut peg = Peg::new(0, 2, 8, 4, 2).unwrap();
        peg.load_x(&[1.0; 8]);
        peg.consume_cycle(&[None, None], &cfg).unwrap();
        assert_eq!(peg.mac_ops(), 0);
    }

    #[test]
    fn reduction_unit_consolidates_scugs_across_pes() {
        let cfg = sched();
        let mut peg = Peg::new(0, 2, 8, 4, 2).unwrap();
        peg.load_x(&[1.0; 8]);
        // Two migrated values of the same source row (row 2 of channel 1,
        // lane 0, local row 0) processed by *different* PEs of channel 0.
        let m0 = NzSlot {
            value: 5.0,
            row: 2,
            col: 0,
            pvt: false,
            pe_src: 0,
        };
        let m1 = NzSlot {
            value: 7.0,
            row: 2,
            col: 0,
            pvt: false,
            pe_src: 0,
        };
        peg.consume_cycle(&[Some(m0), Some(m1)], &cfg).unwrap();
        let out = peg.reduce();
        // The adder tree must merge both PEs' URAM_sh[0] banks.
        assert_eq!(out.shared[0][0], 12.0);
        assert_eq!(out.shared[1][0], 0.0);
    }

    #[test]
    fn serpens_peg_has_no_shared_outputs() {
        let peg = Peg::new(0, 2, 8, 4, 0).unwrap();
        assert!(peg.reduce().shared.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds BRAM capacity")]
    fn oversize_x_window_is_rejected() {
        let mut peg = Peg::new(0, 2, 8, 4, 0).unwrap();
        peg.load_x(&[0.0; 1024]);
    }
}
