//! The Serpens baseline engine (§4.4).

use crate::config::{AcceleratorConfig, Execution};
use crate::engine::execute;
use crate::SimError;
use chason_core::schedule::PeAware;
use chason_sparse::CooMatrix;

/// The Serpens streaming SpMV accelerator (Song et al., DAC 2022) — the
/// paper's primary baseline.
///
/// Serpens schedules each window with the intra-channel PE-aware OoO scheme
/// and executes on PEGs whose PEs have only a private partial-sum URAM: no
/// ScUGs, no Reduction Unit, and an Arbiter/Merger that merely concatenates
/// private streams. Its U55c implementation closes timing at 223 MHz
/// (§5.2). Running a CrHCS schedule on this engine is a routing violation —
/// the hardware cannot segregate migrated partial sums.
#[derive(Debug, Clone)]
pub struct SerpensEngine {
    config: AcceleratorConfig,
    scheduler: PeAware,
}

impl SerpensEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        SerpensEngine {
            config,
            scheduler: PeAware::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    pub(crate) fn scheduler(&self) -> &PeAware {
        &self.scheduler
    }

    /// Serpens PEs carry no ScUG.
    pub(crate) fn scug_size(&self) -> usize {
        0
    }

    /// Executes `y = A·x`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::ChasonEngine::run`].
    pub fn run(&self, matrix: &CooMatrix, x: &[f32]) -> Result<Execution, SimError> {
        execute(
            "serpens",
            &self.scheduler,
            &self.config,
            0,
            false,
            matrix,
            x,
        )
    }
}

impl Default for SerpensEngine {
    fn default() -> Self {
        SerpensEngine::new(AcceleratorConfig::serpens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChasonEngine;
    use chason_sparse::generators::{power_law, uniform_random};

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() / scale < 1e-4,
                "row {i}: {x} vs {y} differ beyond FP reassociation tolerance"
            );
        }
    }

    #[test]
    fn result_matches_reference() {
        let m = uniform_random(300, 300, 2500, 7);
        let x: Vec<f32> = (0..300).map(|i| (i as f32 * 0.11).cos()).collect();
        let exec = SerpensEngine::default().run(&m, &x).unwrap();
        assert_close(&exec.y, &m.spmv(&x));
        assert_eq!(exec.engine, "serpens");
        assert_eq!(exec.cycles.reduction, 0, "serpens has no reduction unit");
    }

    #[test]
    fn both_engines_agree_on_the_same_problem() {
        let m = power_law(600, 600, 5000, 1.7, 31);
        let x: Vec<f32> = (0..600).map(|i| 0.25 + (i % 13) as f32 * 0.5).collect();
        let chason = ChasonEngine::default().run(&m, &x).unwrap();
        let serpens = SerpensEngine::default().run(&m, &x).unwrap();
        assert_close(&chason.y, &serpens.y);
    }

    #[test]
    fn chason_streams_no_more_cycles_than_serpens() {
        let m = power_law(1000, 1000, 8000, 1.8, 5);
        let x = vec![1.0f32; 1000];
        let chason = ChasonEngine::default().run(&m, &x).unwrap();
        let serpens = SerpensEngine::default().run(&m, &x).unwrap();
        assert!(chason.cycles.stream <= serpens.cycles.stream);
        assert!(chason.bytes_streamed <= serpens.bytes_streamed);
        assert!(chason.underutilization <= serpens.underutilization);
    }

    #[test]
    fn serpens_is_slower_in_wall_clock_on_skewed_input() {
        let m = power_law(2000, 2000, 10_000, 1.9, 9);
        let x = vec![1.0f32; 2000];
        let chason = ChasonEngine::default().run(&m, &x).unwrap();
        let serpens = SerpensEngine::default().run(&m, &x).unwrap();
        assert!(
            chason.latency_seconds() < serpens.latency_seconds(),
            "chason {} s vs serpens {} s",
            chason.latency_seconds(),
            serpens.latency_seconds()
        );
    }
}
