//! Cycle-level architecture models of the **Chasoň** and **Serpens** HBM
//! streaming SpMV accelerators (§4 of the paper).
//!
//! The two engines consume schedules produced by `chason-core` and execute
//! them *functionally* — every multiply-accumulate lands in the on-chip
//! memory the real datapath would use (`URAM_pvt`, the per-PE Shared-Channel
//! URAM Groups, the Reduction Unit adder tree, the Rearrange/Arbiter/Merger
//! path) — while a cycle model accounts for stream, drain, reduction and
//! merge time at the implemented clock frequency (301 MHz for Chasoň,
//! 223 MHz for Serpens).
//!
//! Companion modules reproduce the paper's static artifacts:
//!
//! * [`power`] — the Fig. 10 power breakdown and the measured operating
//!   points used for energy efficiency;
//! * [`resources`] — the Table 1 FPGA resource algebra (Eq. 3);
//! * [`report`] — latency / throughput / bandwidth / energy metrics
//!   (Eqs. 5–7).
//!
//! # Example
//!
//! ```
//! use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
//! use chason_sparse::generators::power_law;
//!
//! # fn main() -> Result<(), chason_sim::SimError> {
//! let matrix = power_law(512, 512, 4000, 1.8, 42);
//! let x = vec![1.0f32; matrix.cols()];
//!
//! let chason = ChasonEngine::new(AcceleratorConfig::chason()).run(&matrix, &x)?;
//! let serpens = SerpensEngine::new(AcceleratorConfig::serpens()).run(&matrix, &x)?;
//!
//! // Both engines compute the same SpMV result ...
//! assert_eq!(chason.y.len(), serpens.y.len());
//! // ... but Chasoň streams fewer cycles at a higher clock.
//! assert!(chason.latency_seconds() <= serpens.latency_seconds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chason;
mod config;
mod engine;
mod error;
mod memory;
mod partitioned;
mod pe;
mod peg;
mod plan;
pub mod power;
pub mod profile;
mod rearrange;
pub mod report;
pub mod resources;
mod serpens;
pub mod spmm;

pub use chason::ChasonEngine;
pub use config::{AcceleratorConfig, CycleBreakdown, Execution};
pub use error::SimError;
pub use memory::{Bram, Uram, BRAM18K_WORDS, URAM_PARTIALS};
pub use pe::Pe;
pub use peg::Peg;
pub use plan::{plan_shards, run_sharded, PlanningEngine, ShardedExecution};
pub use profile::{Attribution, LaneSlots, ProfiledExecution};
pub use serpens::SerpensEngine;
pub use spmm::SpmmExecution;
