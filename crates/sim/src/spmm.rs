//! SpMM extension (§7.2): `C = α·A·B + β·C` on the Chasoň/Serpens
//! datapaths.
//!
//! The paper sketches the SpMM configuration: the same non-zero schedule
//! for `A` is streamed while each PE multiplies against a *tile* of dense
//! `B` columns (the prior OoO SpMM accelerator, Sextans, uses 8-column
//! tiles), with the ScUG URAMs widened to hold one partial sum per tile
//! column. This module reproduces that execution model:
//!
//! * `A` is scheduled exactly once per column window (CrHCS for Chasoň,
//!   PE-aware for Serpens);
//! * the stream is re-played once per 8-column tile of `B`, so stream
//!   cycles scale with `⌈N / 8⌉` while the schedule (and its stalls) is
//!   shared;
//! * functionally, every tile column is executed through the same
//!   PEG/ScUG/Reduction/Merge pipeline as SpMV, so the `pvt`/`PE_src`
//!   routing is exercised for every output column.

use crate::config::{AcceleratorConfig, CycleBreakdown};
use crate::peg::Peg;
use crate::rearrange::merge_outputs;
use crate::SimError;
use chason_core::schedule::{Crhcs, PeAware, ScheduledMatrix, Scheduler};
use chason_core::window::partition_columns;
use chason_sparse::{CooMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};

/// Dense-column tile width: one URAM slot pair per tile column (Sextans'
/// and §7.2's operating point).
pub const TILE_COLS: usize = 8;

/// The result of one simulated SpMM execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmmExecution {
    /// Engine name.
    pub engine: &'static str,
    /// The computed `C = α·A·B + β·C`.
    pub c: DenseMatrix,
    /// Cycle accounting (stream scales with the number of tiles).
    pub cycles: CycleBreakdown,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Number of 8-column tiles of `B`.
    pub tiles: usize,
    /// Multiply-accumulate operations performed (`nnz × N`).
    pub mac_ops: u64,
    /// Bytes streamed from the sparse-matrix channels (all tiles).
    pub bytes_streamed: u64,
}

impl SpmmExecution {
    /// Wall-clock latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.cycles.total() as f64 / (self.clock_mhz * 1e6)
    }

    /// Throughput in GFLOPS: `2·nnz·N` useful FLOPs over the latency
    /// (the SpMM analogue of Eq. 5).
    pub fn throughput_gflops(&self) -> f64 {
        let latency_ns = self.latency_seconds() * 1e9;
        if latency_ns == 0.0 {
            0.0
        } else {
            2.0 * self.mac_ops as f64 / latency_ns
        }
    }
}

/// Shared SpMM executor (see module docs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_spmm<S: Scheduler>(
    engine: &'static str,
    scheduler: &S,
    config: &AcceleratorConfig,
    scug_size: usize,
    has_reduction: bool,
    a: &CooMatrix,
    b: &DenseMatrix,
    alpha: f32,
    beta: f32,
    c0: &DenseMatrix,
) -> Result<SpmmExecution, SimError> {
    if !config.is_valid() {
        return Err(SimError::InvalidConfig(
            "accelerator configuration failed validation".to_string(),
        ));
    }
    if b.rows() != a.cols() {
        return Err(SimError::VectorLengthMismatch {
            got: b.rows(),
            expected: a.cols(),
        });
    }
    if c0.rows() != a.rows() || c0.cols() != b.cols() {
        return Err(SimError::InvalidConfig(format!(
            "C shape {}x{} must be {}x{}",
            c0.rows(),
            c0.cols(),
            a.rows(),
            b.cols()
        )));
    }
    let sched = &config.sched;
    let rows_per_pe = a.rows().div_ceil(sched.total_pes().max(1));
    let n = b.cols();
    let tiles = n.div_ceil(TILE_COLS).max(usize::from(n == 0));

    // Schedule every window of A exactly once; the schedule is shared by
    // all tiles (§7.2: the non-zero stream is independent of B).
    let windows = partition_columns(a, config.window);
    let schedules: Vec<ScheduledMatrix> = windows
        .iter()
        .map(|w| scheduler.schedule(&w.matrix, sched))
        .collect();

    let mut cycles = CycleBreakdown::default();
    let mut bytes_streamed = 0u64;
    for s in &schedules {
        let stream = s.stream_cycles() as u64;
        cycles.stream += ((stream * tiles as u64) as f64 * config.stream_ii).ceil() as u64;
        cycles.fill_drain += (sched.dependency_distance * tiles.max(1)) as u64;
        bytes_streamed +=
            stream * (sched.channels * sched.pes_per_channel * 8) as u64 * tiles as u64;
    }

    let mut c = DenseMatrix::zeros(a.rows(), n);
    let mut mac_ops = 0u64;
    // Execute each output column through the full PEG pipeline. Columns of
    // a tile run concurrently in hardware (widened URAM slots); the
    // functional result is column-separable, so we drive them one plane at
    // a time while the cycle model above charges per-tile streams.
    for j in 0..n {
        let mut pegs = (0..sched.channels)
            .map(|ch| {
                Peg::new(
                    ch,
                    sched.pes_per_channel,
                    config.window,
                    rows_per_pe,
                    scug_size,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let b_col = b.column(j);
        for (window, schedule) in windows.iter().zip(&schedules) {
            let slice = &b_col[window.col_start..window.col_end];
            for peg in &mut pegs {
                peg.load_x(slice);
            }
            for (ch, channel) in schedule.channels.iter().enumerate() {
                for slots in &channel.grid {
                    pegs[ch].consume_cycle(slots, sched)?;
                }
            }
        }
        mac_ops += pegs.iter().map(Peg::mac_ops).sum::<u64>();
        let outputs: Vec<_> = pegs.iter().map(Peg::reduce).collect();
        let column = merge_outputs(&outputs, sched, a.rows());
        for (r, &v) in column.iter().enumerate() {
            c.set(r, j, alpha * v + beta * c0.get(r, j));
        }
    }

    // B-tile loading between windows (4 channels stream B in §7.2).
    let reload = (windows.len() * tiles)
        .max(1)
        .saturating_mul(config.window.div_ceil(config.x_reload_lanes));
    cycles.x_reload += (reload as f64 * config.stream_ii).ceil() as u64;
    if has_reduction && scug_size > 0 {
        let tree_depth = (sched.pes_per_channel as f64).log2().ceil() as u64;
        cycles.reduction += (((rows_per_pe as u64 + tree_depth) * tiles as u64) as f64
            * config.stream_ii)
            .ceil() as u64;
    }
    // C read-modify-write through the 8 output channels (§7.2).
    cycles.merge +=
        (((a.rows() * n).div_ceil(config.merge_width)) as f64 * config.stream_ii).ceil() as u64;
    cycles.invocation += config.invocation_overhead_cycles;

    Ok(SpmmExecution {
        engine,
        c,
        cycles,
        clock_mhz: config.clock_mhz,
        tiles,
        mac_ops,
        bytes_streamed,
    })
}

impl crate::ChasonEngine {
    /// Executes `C = α·A·B + β·C` on the Chasoň datapath (§7.2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::ChasonEngine::run`], plus shape
    /// mismatches between `A`, `B` and `C`.
    pub fn run_spmm(
        &self,
        a: &CooMatrix,
        b: &DenseMatrix,
        alpha: f32,
        beta: f32,
        c: &DenseMatrix,
    ) -> Result<SpmmExecution, SimError> {
        let config = *self.config();
        execute_spmm(
            "chason",
            &Crhcs::new(),
            &config,
            config.sched.pes_per_channel * config.sched.migration_hops,
            true,
            a,
            b,
            alpha,
            beta,
            c,
        )
    }
}

impl crate::SerpensEngine {
    /// Executes `C = α·A·B + β·C` on the Serpens-style datapath (as in
    /// Sextans, the prior OoO SpMM accelerator).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::SerpensEngine::run`], plus shape
    /// mismatches between `A`, `B` and `C`.
    pub fn run_spmm(
        &self,
        a: &CooMatrix,
        b: &DenseMatrix,
        alpha: f32,
        beta: f32,
        c: &DenseMatrix,
    ) -> Result<SpmmExecution, SimError> {
        let config = *self.config();
        execute_spmm(
            "serpens",
            &PeAware::new(),
            &config,
            0,
            false,
            a,
            b,
            alpha,
            beta,
            c,
        )
    }
}

/// Dense reference SpMM oracle: `α·A·B + β·C0`.
pub fn reference_spmm(
    a: &CooMatrix,
    b: &DenseMatrix,
    alpha: f32,
    beta: f32,
    c0: &DenseMatrix,
) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for j in 0..b.cols() {
            c.set(r, j, beta * c0.get(r, j));
        }
    }
    for &(r, k, v) in a.iter() {
        for j in 0..b.cols() {
            let cur = c.get(r, j);
            c.set(r, j, cur + alpha * v * b.get(k, j));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcceleratorConfig, ChasonEngine, SerpensEngine};
    use chason_sparse::generators::power_law;

    fn operands(n_cols: usize) -> (CooMatrix, DenseMatrix, DenseMatrix) {
        let a = power_law(300, 300, 2200, 1.6, 17);
        let b = DenseMatrix::from_fn(300, n_cols, |r, c| ((r + 2 * c) % 7) as f32 * 0.5 - 1.0);
        let c0 = DenseMatrix::from_fn(300, n_cols, |r, c| ((r * c) % 5) as f32 * 0.25);
        (a, b, c0)
    }

    fn assert_close(a: &DenseMatrix, b: &DenseMatrix, tol: f32) {
        let diff = a.max_abs_diff(b);
        assert!(diff < tol, "max abs diff {diff}");
    }

    #[test]
    fn chason_spmm_matches_reference() {
        let (a, b, c0) = operands(12);
        let oracle = reference_spmm(&a, &b, 1.5, 0.5, &c0);
        let exec = ChasonEngine::default()
            .run_spmm(&a, &b, 1.5, 0.5, &c0)
            .unwrap();
        assert_close(&exec.c, &oracle, 1e-2);
        assert_eq!(exec.mac_ops, 2200 * 12);
        assert_eq!(exec.tiles, 2);
    }

    #[test]
    fn serpens_spmm_matches_reference_and_is_slower() {
        let (a, b, c0) = operands(8);
        let oracle = reference_spmm(&a, &b, 1.0, 0.0, &c0);
        let serpens = SerpensEngine::default()
            .run_spmm(&a, &b, 1.0, 0.0, &c0)
            .unwrap();
        let chason = ChasonEngine::default()
            .run_spmm(&a, &b, 1.0, 0.0, &c0)
            .unwrap();
        assert_close(&serpens.c, &oracle, 1e-2);
        assert_close(&chason.c, &serpens.c, 1e-2);
        assert!(chason.latency_seconds() <= serpens.latency_seconds());
    }

    #[test]
    fn stream_cycles_scale_with_tiles() {
        let (a, b1, c1) = operands(8);
        let (_, b3, c3) = operands(24);
        let e1 = ChasonEngine::default()
            .run_spmm(&a, &b1, 1.0, 0.0, &c1)
            .unwrap();
        let e3 = ChasonEngine::default()
            .run_spmm(&a, &b3, 1.0, 0.0, &c3)
            .unwrap();
        assert_eq!(e1.tiles, 1);
        assert_eq!(e3.tiles, 3);
        // Up to a cycle of II rounding per window.
        let expected = 3 * e1.cycles.stream;
        assert!(
            e3.cycles.stream.abs_diff(expected) <= 3,
            "stream {} vs 3x {}",
            e3.cycles.stream,
            e1.cycles.stream
        );
    }

    #[test]
    fn beta_zero_ignores_initial_c() {
        let (a, b, _) = operands(4);
        let garbage = DenseMatrix::from_fn(300, 4, |_, _| f32::from_bits(0x7f7fffff));
        let oracle = reference_spmm(&a, &b, 2.0, 0.0, &DenseMatrix::zeros(300, 4));
        let exec = ChasonEngine::default()
            .run_spmm(&a, &b, 2.0, 0.0, &garbage)
            .unwrap();
        assert_close(&exec.c, &oracle, 1e-2);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let (a, b, c0) = operands(4);
        let bad_b = DenseMatrix::zeros(299, 4);
        assert!(matches!(
            ChasonEngine::default().run_spmm(&a, &bad_b, 1.0, 0.0, &c0),
            Err(SimError::VectorLengthMismatch { .. })
        ));
        let bad_c = DenseMatrix::zeros(300, 5);
        assert!(matches!(
            ChasonEngine::default().run_spmm(&a, &b, 1.0, 0.0, &bad_c),
            Err(SimError::InvalidConfig(_))
        ));
        let _ = AcceleratorConfig::chason();
    }

    #[test]
    fn empty_b_is_a_noop() {
        let (a, _, _) = operands(4);
        let b = DenseMatrix::zeros(300, 0);
        let c0 = DenseMatrix::zeros(300, 0);
        let exec = ChasonEngine::default()
            .run_spmm(&a, &b, 1.0, 1.0, &c0)
            .unwrap();
        assert_eq!(exec.mac_ops, 0);
        assert_eq!(exec.c.cols(), 0);
    }
}
