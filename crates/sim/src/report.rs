//! Evaluation metrics (Eqs. 5–7) bundled per execution — the columns of
//! Table 3.

use crate::config::Execution;
use crate::power::MeasuredPower;
use serde::{Deserialize, Serialize};

/// One row of a Table 3-style report: the derived metrics of a single
/// accelerator execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// Engine that produced the execution.
    pub engine: String,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in GFLOPS (Eq. 5).
    pub throughput_gflops: f64,
    /// Bandwidth efficiency in GFLOPS per GB/s (Eq. 7).
    pub bandwidth_efficiency: f64,
    /// Energy efficiency in GFLOPS/W (Eq. 6).
    pub energy_efficiency: f64,
    /// Total cycles.
    pub cycles: u64,
    /// PE underutilization in percent (Eq. 4).
    pub underutilization_pct: f64,
    /// Bytes streamed from the sparse-matrix channels.
    pub bytes_streamed: u64,
}

impl PerformanceReport {
    /// Builds a report from an execution, the aggregate sparse-matrix
    /// bandwidth in GB/s (Eq. 7's denominator), and the measured power
    /// (Eq. 6's denominator).
    pub fn from_execution(exec: &Execution, bandwidth_gbps: f64, power: MeasuredPower) -> Self {
        let gflops = exec.throughput_gflops();
        PerformanceReport {
            engine: exec.engine.to_string(),
            latency_ms: exec.latency_ms(),
            throughput_gflops: gflops,
            bandwidth_efficiency: if bandwidth_gbps > 0.0 {
                gflops / bandwidth_gbps
            } else {
                0.0
            },
            energy_efficiency: power.energy_efficiency(gflops),
            cycles: exec.cycles.total(),
            underutilization_pct: exec.underutilization * 100.0,
            bytes_streamed: exec.bytes_streamed,
        }
    }

    /// Latency speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &PerformanceReport) -> f64 {
        if self.latency_ms == 0.0 {
            return if other.latency_ms == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        other.latency_ms / self.latency_ms
    }

    /// Energy-efficiency gain of `self` over `other`.
    pub fn energy_gain_over(&self, other: &PerformanceReport) -> f64 {
        if other.energy_efficiency == 0.0 {
            return if self.energy_efficiency == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.energy_efficiency / other.energy_efficiency
    }

    /// Data-transfer reduction of `self` relative to `other` (>1 means
    /// `self` moves less data) — the Fig. 15 metric.
    pub fn transfer_reduction_over(&self, other: &PerformanceReport) -> f64 {
        if self.bytes_streamed == 0 {
            return if other.bytes_streamed == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        other.bytes_streamed as f64 / self.bytes_streamed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CycleBreakdown;

    fn exec(engine: &'static str, cycles: u64, mhz: f64, bytes: u64) -> Execution {
        Execution {
            engine,
            y: vec![],
            cycles: CycleBreakdown {
                stream: cycles,
                ..Default::default()
            },
            clock_mhz: mhz,
            nnz: 100_000,
            rows: 1000,
            cols: 1000,
            stalls: 100_000,
            underutilization: 0.5,
            bytes_streamed: bytes,
            bytes_auxiliary: 0,
            windows: 1,
            mac_ops: 100_000,
            occupancy: Vec::new(),
        }
    }

    #[test]
    fn report_derives_all_metrics() {
        let e = exec("chason", 301_000, 301.0, 4096); // exactly 1 ms
        let r = PerformanceReport::from_execution(&e, 273.0, MeasuredPower::chason());
        assert!((r.latency_ms - 1.0).abs() < 1e-9);
        // Eq. 5: 2 * 101_000 / 1e6 ns = 0.202 GFLOPS.
        assert!((r.throughput_gflops - 0.202).abs() < 1e-9);
        assert!((r.bandwidth_efficiency - 0.202 / 273.0).abs() < 1e-12);
        assert!((r.energy_efficiency - 0.202 / 39.0).abs() < 1e-12);
        assert!((r.underutilization_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_gains_compare_correctly() {
        let fast = PerformanceReport::from_execution(
            &exec("chason", 301_000, 301.0, 1000),
            273.0,
            MeasuredPower::chason(),
        );
        let slow = PerformanceReport::from_execution(
            &exec("serpens", 892_000, 223.0, 7000), // 4 ms
            273.0,
            MeasuredPower::serpens(),
        );
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((fast.transfer_reduction_over(&slow) - 7.0).abs() < 1e-12);
        assert!(fast.energy_gain_over(&slow) > 1.0);
    }

    #[test]
    fn zero_denominators_are_graceful() {
        let r = PerformanceReport::from_execution(
            &exec("chason", 0, 301.0, 0),
            0.0,
            MeasuredPower { watts: 0.0 },
        );
        assert_eq!(r.bandwidth_efficiency, 0.0);
        assert_eq!(r.energy_efficiency, 0.0);
        assert_eq!(r.speedup_over(&r), 1.0);
        assert_eq!(r.transfer_reduction_over(&r), 1.0);
    }
}
