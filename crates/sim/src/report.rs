//! Evaluation metrics (Eqs. 5–7) bundled per execution — the columns of
//! Table 3.

use crate::config::Execution;
use crate::power::MeasuredPower;
use serde::{Deserialize, Serialize};

/// One row of a Table 3-style report: the derived metrics of a single
/// accelerator execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// Engine that produced the execution.
    pub engine: String,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in GFLOPS (Eq. 5).
    pub throughput_gflops: f64,
    /// Bandwidth efficiency in GFLOPS per GB/s (Eq. 7).
    pub bandwidth_efficiency: f64,
    /// Energy efficiency in GFLOPS/W (Eq. 6).
    pub energy_efficiency: f64,
    /// Total cycles.
    pub cycles: u64,
    /// PE underutilization in percent (Eq. 4).
    pub underutilization_pct: f64,
    /// Bytes streamed from the sparse-matrix channels.
    pub bytes_streamed: u64,
}

impl PerformanceReport {
    /// Builds a report from an execution, the aggregate sparse-matrix
    /// bandwidth in GB/s (Eq. 7's denominator), and the measured power
    /// (Eq. 6's denominator).
    pub fn from_execution(exec: &Execution, bandwidth_gbps: f64, power: MeasuredPower) -> Self {
        let gflops = exec.throughput_gflops();
        PerformanceReport {
            engine: exec.engine.to_string(),
            latency_ms: exec.latency_ms(),
            throughput_gflops: gflops,
            bandwidth_efficiency: if bandwidth_gbps > 0.0 {
                gflops / bandwidth_gbps
            } else {
                0.0
            },
            energy_efficiency: power.energy_efficiency(gflops),
            cycles: exec.cycles.total(),
            underutilization_pct: exec.underutilization * 100.0,
            bytes_streamed: exec.bytes_streamed,
        }
    }

    /// Latency speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &PerformanceReport) -> f64 {
        if self.latency_ms == 0.0 {
            return if other.latency_ms == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        other.latency_ms / self.latency_ms
    }

    /// Energy-efficiency gain of `self` over `other`.
    pub fn energy_gain_over(&self, other: &PerformanceReport) -> f64 {
        if other.energy_efficiency == 0.0 {
            return if self.energy_efficiency == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.energy_efficiency / other.energy_efficiency
    }

    /// Data-transfer reduction of `self` relative to `other` (>1 means
    /// `self` moves less data) — the Fig. 15 metric.
    pub fn transfer_reduction_over(&self, other: &PerformanceReport) -> f64 {
        if self.bytes_streamed == 0 {
            return if other.bytes_streamed == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        other.bytes_streamed as f64 / self.bytes_streamed as f64
    }
}

/// A [`PerformanceReport`] extended with the profiler's unit-level
/// attribution — the Table 3 metrics plus *where* the cycles and stream
/// slots went (`chason profile`'s data model).
///
/// The attribution's unit rows sum exactly to `report.cycles`; see
/// [`Attribution::verify_exact`](crate::profile::Attribution::verify_exact).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedReport {
    /// The derived Table 3 metrics.
    pub report: PerformanceReport,
    /// Per-unit cycle and per-PE slot attribution.
    pub attribution: crate::profile::Attribution,
}

impl AttributedReport {
    /// Builds the extended report from a profiled execution plus the
    /// bandwidth and power denominators of Eqs. 6–7.
    pub fn from_profiled(
        profiled: &crate::profile::ProfiledExecution,
        bandwidth_gbps: f64,
        power: MeasuredPower,
    ) -> Self {
        AttributedReport {
            report: PerformanceReport::from_execution(&profiled.execution, bandwidth_gbps, power),
            attribution: profiled.attribution.clone(),
        }
    }
}

/// An integer-only snapshot of one execution's cycle accounting.
///
/// Every field is a counter the simulator computes exactly — no floats, no
/// wall-clock — so the rendered line is byte-identical across runs, thread
/// counts, and machines. The conformance harness commits these lines as
/// golden traces under `tests/golden/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleTrace {
    /// Engine name.
    pub engine: String,
    /// Source-matrix rows.
    pub rows: usize,
    /// Source-matrix columns.
    pub cols: usize,
    /// Source-matrix non-zeros.
    pub nnz: usize,
    /// Column windows processed.
    pub windows: usize,
    /// Stall slots across all windows.
    pub stalls: usize,
    /// Multiply-accumulate operations performed.
    pub mac_ops: u64,
    /// Bytes streamed from the sparse-matrix channels.
    pub bytes_streamed: u64,
    /// Bytes moved on the auxiliary (`x`/`y`) channels.
    pub bytes_auxiliary: u64,
    /// The six-way cycle breakdown.
    pub cycles: crate::config::CycleBreakdown,
}

impl CycleTrace {
    /// Extracts the integer counters of an execution.
    pub fn from_execution(exec: &Execution) -> Self {
        CycleTrace {
            engine: exec.engine.to_string(),
            rows: exec.rows,
            cols: exec.cols,
            nnz: exec.nnz,
            windows: exec.windows,
            stalls: exec.stalls,
            mac_ops: exec.mac_ops,
            bytes_streamed: exec.bytes_streamed,
            bytes_auxiliary: exec.bytes_auxiliary,
            cycles: exec.cycles,
        }
    }
}

impl std::fmt::Display for CycleTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.cycles;
        write!(
            f,
            "{} {}x{} nnz={} windows={} stalls={} macs={} stream={} fill={} xrel={} red={} mrg={} inv={} total={} bytes={}+{}",
            self.engine, self.rows, self.cols, self.nnz, self.windows, self.stalls,
            self.mac_ops, c.stream, c.fill_drain, c.x_reload, c.reduction, c.merge,
            c.invocation, c.total(), self.bytes_streamed, self.bytes_auxiliary,
        )
    }
}

impl std::str::FromStr for CycleTrace {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tokens = s.split_whitespace();
        let engine = tokens.next().ok_or("empty trace line")?.to_string();
        let dims = tokens.next().ok_or("missing dimensions")?;
        let (rows, cols) = dims
            .split_once('x')
            .ok_or_else(|| format!("bad dimensions {dims:?}"))?;
        let parse = |v: &str| v.parse::<u64>().map_err(|e| format!("{v:?}: {e}"));
        let mut fields = std::collections::BTreeMap::new();
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("bad field {token:?}"))?;
            if key == "bytes" {
                let (a, b) = value
                    .split_once('+')
                    .ok_or_else(|| format!("bad bytes {value:?}"))?;
                fields.insert("bytes_streamed", parse(a)?);
                fields.insert("bytes_auxiliary", parse(b)?);
            } else {
                fields.insert(
                    match key {
                        "nnz" => "nnz",
                        "windows" => "windows",
                        "stalls" => "stalls",
                        "macs" => "macs",
                        "stream" => "stream",
                        "fill" => "fill",
                        "xrel" => "xrel",
                        "red" => "red",
                        "mrg" => "mrg",
                        "inv" => "inv",
                        "total" => "total",
                        other => return Err(format!("unknown field {other:?}")),
                    },
                    parse(value)?,
                );
            }
        }
        let get = |k: &str| fields.get(k).copied().ok_or_else(|| format!("missing {k}"));
        let trace = CycleTrace {
            engine,
            rows: rows.parse().map_err(|e| format!("rows: {e}"))?,
            cols: cols.parse().map_err(|e| format!("cols: {e}"))?,
            nnz: get("nnz")? as usize,
            windows: get("windows")? as usize,
            stalls: get("stalls")? as usize,
            mac_ops: get("macs")?,
            bytes_streamed: get("bytes_streamed")?,
            bytes_auxiliary: get("bytes_auxiliary")?,
            cycles: crate::config::CycleBreakdown {
                stream: get("stream")?,
                fill_drain: get("fill")?,
                x_reload: get("xrel")?,
                reduction: get("red")?,
                merge: get("mrg")?,
                invocation: get("inv")?,
            },
        };
        if trace.cycles.total() != get("total")? {
            return Err(format!(
                "total={} does not match the breakdown sum {}",
                get("total")?,
                trace.cycles.total()
            ));
        }
        Ok(trace)
    }
}

impl PerformanceReport {
    /// Renders the report as one `key=value` record line. Floating-point
    /// fields are written as IEEE-754 bit patterns in hex, so
    /// [`PerformanceReport::from_record`] round-trips *bit-exactly* — the
    /// basis of the committed format-compatibility fixtures.
    pub fn to_record(&self) -> String {
        format!(
            "engine={} latency_ms={:#018x} gflops={:#018x} bw_eff={:#018x} energy_eff={:#018x} \
             cycles={} underutil_pct={:#018x} bytes={}",
            self.engine,
            self.latency_ms.to_bits(),
            self.throughput_gflops.to_bits(),
            self.bandwidth_efficiency.to_bits(),
            self.energy_efficiency.to_bits(),
            self.cycles,
            self.underutilization_pct.to_bits(),
            self.bytes_streamed,
        )
    }

    /// Parses a [`PerformanceReport::to_record`] line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_record(line: &str) -> Result<Self, String> {
        let mut fields = std::collections::BTreeMap::new();
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("bad field {token:?}"))?;
            fields.insert(key, value);
        }
        let get = |k: &str| fields.get(k).copied().ok_or_else(|| format!("missing {k}"));
        let bits = |k: &str| -> Result<f64, String> {
            let v = get(k)?;
            let hex = v
                .strip_prefix("0x")
                .ok_or_else(|| format!("{k}: expected hex bits, got {v:?}"))?;
            u64::from_str_radix(hex, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("{k}: {e}"))
        };
        Ok(PerformanceReport {
            engine: get("engine")?.to_string(),
            latency_ms: bits("latency_ms")?,
            throughput_gflops: bits("gflops")?,
            bandwidth_efficiency: bits("bw_eff")?,
            energy_efficiency: bits("energy_eff")?,
            cycles: get("cycles")?.parse().map_err(|e| format!("cycles: {e}"))?,
            underutilization_pct: bits("underutil_pct")?,
            bytes_streamed: get("bytes")?.parse().map_err(|e| format!("bytes: {e}"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CycleBreakdown;

    fn exec(engine: &'static str, cycles: u64, mhz: f64, bytes: u64) -> Execution {
        Execution {
            engine,
            y: vec![],
            cycles: CycleBreakdown {
                stream: cycles,
                ..Default::default()
            },
            clock_mhz: mhz,
            nnz: 100_000,
            rows: 1000,
            cols: 1000,
            stalls: 100_000,
            underutilization: 0.5,
            bytes_streamed: bytes,
            bytes_auxiliary: 0,
            windows: 1,
            mac_ops: 100_000,
            occupancy: Vec::new(),
        }
    }

    #[test]
    fn report_derives_all_metrics() {
        let e = exec("chason", 301_000, 301.0, 4096); // exactly 1 ms
        let r = PerformanceReport::from_execution(&e, 273.0, MeasuredPower::chason());
        assert!((r.latency_ms - 1.0).abs() < 1e-9);
        // Eq. 5: 2 * 101_000 / 1e6 ns = 0.202 GFLOPS.
        assert!((r.throughput_gflops - 0.202).abs() < 1e-9);
        assert!((r.bandwidth_efficiency - 0.202 / 273.0).abs() < 1e-12);
        assert!((r.energy_efficiency - 0.202 / 39.0).abs() < 1e-12);
        assert!((r.underutilization_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_gains_compare_correctly() {
        let fast = PerformanceReport::from_execution(
            &exec("chason", 301_000, 301.0, 1000),
            273.0,
            MeasuredPower::chason(),
        );
        let slow = PerformanceReport::from_execution(
            &exec("serpens", 892_000, 223.0, 7000), // 4 ms
            273.0,
            MeasuredPower::serpens(),
        );
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((fast.transfer_reduction_over(&slow) - 7.0).abs() < 1e-12);
        assert!(fast.energy_gain_over(&slow) > 1.0);
    }

    #[test]
    fn zero_denominators_are_graceful() {
        let r = PerformanceReport::from_execution(
            &exec("chason", 0, 301.0, 0),
            0.0,
            MeasuredPower { watts: 0.0 },
        );
        assert_eq!(r.bandwidth_efficiency, 0.0);
        assert_eq!(r.energy_efficiency, 0.0);
        assert_eq!(r.speedup_over(&r), 1.0);
        assert_eq!(r.transfer_reduction_over(&r), 1.0);
    }

    #[test]
    fn cycle_trace_round_trips_through_display() {
        let mut e = exec("chason", 301_000, 301.0, 4096);
        e.cycles = CycleBreakdown {
            stream: 88,
            fill_drain: 6,
            x_reload: 3,
            reduction: 12,
            merge: 17,
            invocation: 500,
        };
        e.bytes_auxiliary = 128;
        let trace = CycleTrace::from_execution(&e);
        let line = trace.to_string();
        let parsed: CycleTrace = line.parse().unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_string(), line);
    }

    #[test]
    fn cycle_trace_rejects_inconsistent_totals() {
        let line = "chason 10x10 nnz=5 windows=1 stalls=0 macs=5 stream=1 fill=1 \
                    xrel=0 red=0 mrg=0 inv=0 total=99 bytes=64+0";
        let err = line.parse::<CycleTrace>().unwrap_err();
        assert!(err.contains("total"), "{err}");
    }

    #[test]
    fn report_record_round_trips_bit_exactly() {
        let r = PerformanceReport::from_execution(
            &exec("chason", 301_000, 301.0, 4096),
            273.0,
            MeasuredPower::chason(),
        );
        let parsed = PerformanceReport::from_record(&r.to_record()).unwrap();
        assert_eq!(parsed, r);
        // Bit-exactness, not mere closeness.
        assert_eq!(
            parsed.throughput_gflops.to_bits(),
            r.throughput_gflops.to_bits()
        );
        assert_eq!(parsed.to_record(), r.to_record());
    }

    #[test]
    fn report_record_names_missing_fields() {
        let err = PerformanceReport::from_record("engine=chason cycles=5").unwrap_err();
        assert!(err.contains("latency_ms"), "{err}");
    }
}
