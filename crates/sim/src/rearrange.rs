//! The Rearrange Unit: Re-order, Arbiter and Merger (§4.3, Fig. 8).
//!
//! After streaming, each PEG holds two groups of final partial sums: the
//! private sums of its own channel's rows and the consolidated shared sums
//! that belong to the rows of the *next* channel in the ring. The Re-order
//! Unit aligns the shared streams with the channel they belong to, and the
//! Merger adds the private and shared streams so every output row is
//! complete before it leaves the accelerator.

use crate::peg::PegOutputs;
use chason_core::schedule::SchedulerConfig;

/// Merges per-PEG outputs into the dense result vector `y`.
///
/// For the row owned by `(channel c, lane l)` at local address `r`:
///
/// ```text
/// y[row] = pvt[c][l][r] + Σ_hop shared[(c + C − hop) % C][(hop−1)·P + l][r]
/// ```
///
/// — channel `d`'s hop-`h` ScUG banks hold partial sums for channel
/// `(d + h) % C`, so the shared contributions of channel `c`'s rows live in
/// its ring predecessors (one per migration hop; the deployed design has
/// one). PEGs without shared outputs (Serpens) contribute private sums
/// only.
pub(crate) fn merge_outputs(
    outputs: &[PegOutputs],
    sched: &SchedulerConfig,
    rows: usize,
) -> Vec<f32> {
    let channels = sched.channels;
    let pes = sched.pes_per_channel;
    let mut y = vec![0.0f32; rows];
    for (row, out) in y.iter_mut().enumerate() {
        let c = sched.channel_for_row(row);
        let l = sched.lane_for_row(row);
        let r = sched.local_row(row);
        let mut acc = 0.0f32;
        if let Some(pvt) = outputs.get(c).and_then(|o| o.pvt.get(l)) {
            if let Some(&v) = pvt.get(r) {
                acc += v;
            }
        }
        if channels >= 2 {
            for hop in 1..=sched.migration_hops.min(channels - 1) {
                let holder = (c + channels - hop) % channels;
                let bank = (hop - 1) * pes + l;
                if let Some(sh) = outputs.get(holder).and_then(|o| o.shared.get(bank)) {
                    if let Some(&v) = sh.get(r) {
                        acc += v;
                    }
                }
            }
        }
        *out = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs_2ch() -> Vec<PegOutputs> {
        // 2 channels x 2 lanes, 2 local rows each (rows 0..8).
        vec![
            PegOutputs {
                // channel 0 private: rows 0 (l0,r0), 4 (l0,r1), 1 (l1,r0), 5 (l1,r1)
                pvt: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                // channel 0 shared: rows of channel 1 -> rows 2, 6 (lane 0), 3, 7 (lane 1)
                shared: vec![vec![10.0, 20.0], vec![30.0, 40.0]],
            },
            PegOutputs {
                // channel 1 private: rows 2, 6, 3, 7
                pvt: vec![vec![100.0, 200.0], vec![300.0, 400.0]],
                // channel 1 shared: rows of channel 0
                shared: vec![vec![0.5, 0.25], vec![0.125, 0.0625]],
            },
        ]
    }

    #[test]
    fn merge_adds_private_and_ring_predecessor_shared() {
        let sched = SchedulerConfig::toy(2, 2, 4);
        let y = merge_outputs(&outputs_2ch(), &sched, 8);
        // Row 0: pvt ch0 lane0 r0 = 1.0, shared held by ch1 lane0 r0 = 0.5.
        assert_eq!(y[0], 1.5);
        // Row 2 (owned by ch1 lane0 r0): pvt 100.0 + ch0 shared 10.0.
        assert_eq!(y[2], 110.0);
        // Row 7 (ch1 lane1 r1): 400.0 + 40.0.
        assert_eq!(y[7], 440.0);
        // Row 4 (ch0 lane0 r1): 2.0 + 0.25.
        assert_eq!(y[4], 2.25);
    }

    #[test]
    fn serpens_outputs_use_private_only() {
        let sched = SchedulerConfig::toy(2, 2, 4);
        let outputs = vec![
            PegOutputs {
                pvt: vec![vec![1.0], vec![2.0]],
                shared: vec![],
            },
            PegOutputs {
                pvt: vec![vec![3.0], vec![4.0]],
                shared: vec![],
            },
        ];
        let y = merge_outputs(&outputs, &sched, 4);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn single_channel_skips_shared_lookup() {
        let sched = SchedulerConfig::toy(1, 2, 4);
        let outputs = vec![PegOutputs {
            pvt: vec![vec![5.0], vec![6.0]],
            shared: vec![vec![99.0], vec![99.0]],
        }];
        let y = merge_outputs(&outputs, &sched, 2);
        // With one channel there is no neighbour; shared is ignored.
        assert_eq!(y, vec![5.0, 6.0]);
    }

    #[test]
    fn rows_beyond_outputs_default_to_zero() {
        let sched = SchedulerConfig::toy(2, 2, 4);
        let outputs = vec![
            PegOutputs {
                pvt: vec![vec![], vec![]],
                shared: vec![],
            },
            PegOutputs {
                pvt: vec![vec![], vec![]],
                shared: vec![],
            },
        ];
        let y = merge_outputs(&outputs, &sched, 4);
        assert_eq!(y, vec![0.0; 4]);
    }
}
