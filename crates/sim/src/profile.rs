//! Cycle-attribution profiler: breaks a simulated execution down per
//! unit and per PE, in the paper's Fig. 8/9 taxonomy.
//!
//! Two attributions are produced from a plan and the execution it drove:
//!
//! * **unit cycles** — the six [`CycleBreakdown`] categories mapped to the
//!   architecture units they model (router/stream, pipeline fill/drain,
//!   x-buffer fill, Reduction Unit, Rearrange/Arbiter-Merger, invocation
//!   overhead). They sum *exactly* to the execution's total cycle count —
//!   [`Attribution::verify_exact`] enforces it, and [`attribute`] refuses
//!   to return an attribution that fails it;
//! * **stream slots** — every slot of every channel's (equalized) data
//!   list classified as a private fill (`URAM_pvt` access), a migrated
//!   fill (ScUG access — a stall slot CrHCS reclaimed), or a residual
//!   stall, per `(channel, lane)`. `pvt + migrated = nnz` and
//!   `stalls` matches [`Execution::stalls`], so Chasoň's reclaimed-stall
//!   benefit over Serpens is read directly off `migrated_slots`.
//!
//! Attribution is computed from the *plan* (schedule grids), not by
//! instrumenting the execution hot loop, so profiling costs nothing when
//! unused. Window spans ([`window_spans`]) carry simulated-cycle
//! timestamps replicating the executor's stamp arithmetic — integers
//! derived only from the plan, hence byte-identical across runs, machines,
//! and planning thread counts.

use crate::config::{AcceleratorConfig, CycleBreakdown, Execution};
use crate::plan::PlanningEngine;
use crate::SimError;
use chason_core::plan::SpmvPlan;
use chason_sparse::CooMatrix;
use chason_telemetry::trace::SpanEvent;

/// Stream-slot classification of one PE (one lane of one channel's PEG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneSlots {
    /// Channel the lane belongs to.
    pub channel: usize,
    /// Lane index within the channel's PEG.
    pub lane: usize,
    /// Slots carrying a private element (`URAM_pvt` access).
    pub pvt: u64,
    /// Slots carrying a migrated element (ScUG access; a reclaimed stall).
    pub migrated: u64,
    /// Residual stall slots, including the virtual padding that equalizes
    /// every channel list to the longest (§3.1's synchronized finish).
    pub stall: u64,
}

/// Per-unit and per-PE attribution of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Engine that produced the execution (`"chason"` or `"serpens"`).
    pub engine: String,
    /// The six-way unit cycle breakdown (sums exactly to
    /// [`Attribution::total_cycles`]).
    pub cycles: CycleBreakdown,
    /// Total cycles of the execution.
    pub total_cycles: u64,
    /// Stream slots filled with private elements across all windows.
    pub pvt_slots: u64,
    /// Stream slots filled with migrated elements (stalls CrHCS
    /// reclaimed; always 0 for Serpens).
    pub migrated_slots: u64,
    /// Residual stall slots (matches [`Execution::stalls`]).
    pub stall_slots: u64,
    /// Slot classification per `(channel, lane)`, sorted by channel then
    /// lane; sums to the three aggregates above.
    pub per_lane: Vec<LaneSlots>,
    /// Column windows the attribution covers.
    pub windows: usize,
}

impl Attribution {
    /// Unit rows in paper terminology, in render order. The cycle counts
    /// sum exactly to [`Attribution::total_cycles`].
    pub fn unit_rows(&self) -> [(&'static str, u64); 6] {
        [
            ("router/stream", self.cycles.stream),
            ("pipeline fill/drain", self.cycles.fill_drain),
            ("x-buffer fill", self.cycles.x_reload),
            ("Reduction Unit", self.cycles.reduction),
            ("Rearrange/Merge", self.cycles.merge),
            ("invocation", self.cycles.invocation),
        ]
    }

    /// Total stream slots (`pvt + migrated + stall`).
    pub fn slots_total(&self) -> u64 {
        self.pvt_slots + self.migrated_slots + self.stall_slots
    }

    /// PE slots doing useful work, as a fraction of all stream slots.
    pub fn occupancy(&self) -> f64 {
        let total = self.slots_total();
        if total == 0 {
            0.0
        } else {
            (self.pvt_slots + self.migrated_slots) as f64 / total as f64
        }
    }

    /// Checks the exactness invariants: unit cycles sum to the total, and
    /// the per-lane classification sums to the aggregate slot counts.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub fn verify_exact(&self) -> Result<(), String> {
        let unit_sum: u64 = self.unit_rows().iter().map(|(_, c)| c).sum();
        if unit_sum != self.total_cycles {
            return Err(format!(
                "unit cycles sum to {unit_sum}, execution total is {}",
                self.total_cycles
            ));
        }
        let (mut pvt, mut migrated, mut stall) = (0u64, 0u64, 0u64);
        for lane in &self.per_lane {
            pvt += lane.pvt;
            migrated += lane.migrated;
            stall += lane.stall;
        }
        if (pvt, migrated, stall) != (self.pvt_slots, self.migrated_slots, self.stall_slots) {
            return Err(format!(
                "per-lane slots ({pvt}, {migrated}, {stall}) disagree with aggregates ({}, {}, {})",
                self.pvt_slots, self.migrated_slots, self.stall_slots
            ));
        }
        Ok(())
    }
}

/// A planned execution paired with its attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledExecution {
    /// The execution itself.
    pub execution: Execution,
    /// Where its cycles and stream slots went.
    pub attribution: Attribution,
}

/// Classifies every stream slot of `plan` and pairs the result with
/// `execution`'s cycle breakdown.
///
/// # Errors
///
/// [`SimError::PlanMismatch`] when the plan and execution disagree (they
/// must come from the same `plan`/`run_planned` pair): engine name,
/// non-zero count, stall count, or an internal exactness violation.
pub fn attribute(plan: &SpmvPlan, execution: &Execution) -> Result<Attribution, SimError> {
    if plan.engine != execution.engine {
        return Err(SimError::PlanMismatch(format!(
            "attributing a {} execution against a {} plan",
            execution.engine, plan.engine
        )));
    }
    let sched = &plan.key.config;
    let pes = sched.pes_per_channel;
    let mut per_lane: Vec<LaneSlots> = (0..sched.channels)
        .flat_map(|c| {
            (0..pes).map(move |l| LaneSlots {
                channel: c,
                lane: l,
                ..LaneSlots::default()
            })
        })
        .collect();
    let mut windows = 0usize;
    for pass in &plan.passes {
        for window in &pass.windows {
            windows += 1;
            let schedule = &window.schedule;
            // The equalized list length: every channel streams this many
            // beats, trailing all-stall beats stored only virtually.
            let stream_cycles = schedule.stream_cycles() as u64;
            for channel in &schedule.channels {
                let mut filled = vec![0u64; pes];
                for cycle in &channel.grid {
                    for (lane, slot) in cycle.iter().enumerate().take(pes) {
                        if let Some(nz) = slot {
                            let entry = &mut per_lane[channel.channel * pes + lane];
                            if nz.pvt {
                                entry.pvt += 1;
                            } else {
                                entry.migrated += 1;
                            }
                            filled[lane] += 1;
                        }
                    }
                }
                for (lane, &busy) in filled.iter().enumerate() {
                    per_lane[channel.channel * pes + lane].stall += stream_cycles - busy;
                }
            }
        }
    }
    let pvt_slots: u64 = per_lane.iter().map(|l| l.pvt).sum();
    let migrated_slots: u64 = per_lane.iter().map(|l| l.migrated).sum();
    let stall_slots: u64 = per_lane.iter().map(|l| l.stall).sum();
    if pvt_slots + migrated_slots != execution.nnz as u64 {
        return Err(SimError::PlanMismatch(format!(
            "plan schedules {} non-zeros, execution computed {}",
            pvt_slots + migrated_slots,
            execution.nnz
        )));
    }
    if stall_slots != execution.stalls as u64 {
        return Err(SimError::PlanMismatch(format!(
            "plan carries {stall_slots} stall slots, execution charged {}",
            execution.stalls
        )));
    }
    let attribution = Attribution {
        engine: execution.engine.to_string(),
        cycles: execution.cycles,
        total_cycles: execution.cycles.total(),
        pvt_slots,
        migrated_slots,
        stall_slots,
        per_lane,
        windows,
    };
    attribution.verify_exact().map_err(SimError::PlanMismatch)?;
    Ok(attribution)
}

/// Plans, runs, and attributes one SpMV on `engine`.
///
/// # Errors
///
/// Any planning or execution error of the engine, plus
/// [`SimError::PlanMismatch`] if attribution invariants fail (a simulator
/// bug, not a caller error).
pub fn profile_run<E: PlanningEngine>(
    engine: &E,
    matrix: &CooMatrix,
    x: &[f32],
) -> Result<ProfiledExecution, SimError> {
    let plan = engine.plan(matrix)?;
    profile_planned(engine, &plan, x)
}

/// Runs a previously built plan and attributes the execution.
///
/// # Errors
///
/// See [`profile_run`].
pub fn profile_planned<E: PlanningEngine>(
    engine: &E,
    plan: &SpmvPlan,
    x: &[f32],
) -> Result<ProfiledExecution, SimError> {
    let execution = engine.run_planned(plan, x)?;
    let attribution = attribute(plan, &execution)?;
    Ok(ProfiledExecution {
        execution,
        attribution,
    })
}

/// One deterministic span per column window, timestamped in simulated
/// stream beats.
///
/// Timestamps replicate the executor's stamp arithmetic: window `w`
/// starts where window `w-1`'s stream, drain and x-reload gap ended, and
/// passes follow each other. Every field derives from the plan alone —
/// no wall clock — so the rendered JSONL is byte-identical across runs
/// and planning thread counts, which is what lets golden traces be
/// committed.
pub fn window_spans(plan: &SpmvPlan, config: &AcceleratorConfig) -> Vec<SpanEvent> {
    let mut spans = Vec::new();
    let mut stamp_base = 0u64;
    for (p, pass) in plan.passes.iter().enumerate() {
        for (w, window) in pass.windows.iter().enumerate() {
            let schedule = &window.schedule;
            let stream_cycles = schedule.stream_cycles() as u64;
            let migrated = schedule
                .channels
                .iter()
                .flat_map(|ch| ch.grid.iter().flatten().flatten())
                .filter(|nz| !nz.pvt)
                .count() as u64;
            spans.push(
                SpanEvent::new("sim.window", stamp_base, stamp_base + stream_cycles)
                    .attr("engine", plan.engine.as_str())
                    .attr("pass", p)
                    .attr("window", w)
                    .attr("col_start", window.col_start)
                    .attr("col_end", window.col_end)
                    .attr("nnz", window.nnz)
                    .attr("migrated", migrated)
                    .attr("stalls", window.stalls),
            );
            stamp_base += stream_cycles
                + plan.key.config.dependency_distance as u64
                + config.window.div_ceil(config.x_reload_lanes) as u64;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcceleratorConfig, ChasonEngine, SerpensEngine};
    use chason_core::schedule::SchedulerConfig;
    use chason_sparse::generators::{power_law, uniform_random};
    use chason_telemetry::trace::to_jsonl;

    fn engines() -> (ChasonEngine, SerpensEngine) {
        let sched = SchedulerConfig::toy(4, 4, 6);
        (
            ChasonEngine::new(AcceleratorConfig {
                sched,
                ..AcceleratorConfig::chason()
            }),
            SerpensEngine::new(AcceleratorConfig {
                sched,
                ..AcceleratorConfig::serpens()
            }),
        )
    }

    #[test]
    fn attribution_sums_exactly_and_matches_the_execution() {
        let (chason, serpens) = engines();
        let m = power_law(96, 96, 700, 1.7, 31);
        let x: Vec<f32> = (0..96).map(|i| (i as f32 * 0.37).sin()).collect();
        for profiled in [
            profile_run(&chason, &m, &x).expect("chason profiles"),
            profile_run(&serpens, &m, &x).expect("serpens profiles"),
        ] {
            let a = &profiled.attribution;
            a.verify_exact().expect("exactness invariants");
            let unit_sum: u64 = a.unit_rows().iter().map(|(_, c)| c).sum();
            assert_eq!(unit_sum, profiled.execution.cycles.total());
            assert_eq!(
                a.pvt_slots + a.migrated_slots,
                profiled.execution.nnz as u64
            );
            assert_eq!(a.stall_slots, profiled.execution.stalls as u64);
            assert_eq!(a.windows, profiled.execution.windows);
            assert!(a.occupancy() > 0.0 && a.occupancy() <= 1.0);
        }
    }

    #[test]
    fn serpens_never_migrates_and_chason_reclaims_stalls_on_skewed() {
        let (chason, serpens) = engines();
        // A skewed (power-law) matrix leaves channels imbalanced — the
        // regime CrHCS exists for (§2.3, §6.1).
        let m = power_law(256, 256, 2200, 2.2, 11);
        let x = vec![1.0f32; 256];
        let c = profile_run(&chason, &m, &x).expect("chason").attribution;
        let s = profile_run(&serpens, &m, &x).expect("serpens").attribution;
        assert_eq!(s.migrated_slots, 0, "Serpens has no migration path");
        assert!(
            c.migrated_slots > 0,
            "CrHCS must migrate on a banded matrix"
        );
        assert!(
            c.stall_slots < s.stall_slots,
            "chason stalls {} must undercut serpens {}",
            c.stall_slots,
            s.stall_slots
        );
        // Every migrated slot is a reclaimed stall: totals are conserved.
        assert_eq!(
            c.pvt_slots + c.migrated_slots,
            s.pvt_slots + s.migrated_slots
        );
    }

    #[test]
    fn multi_pass_plans_attribute_across_all_passes() {
        let engine = ChasonEngine::new(AcceleratorConfig {
            sched: SchedulerConfig::toy(2, 2, 4),
            ..AcceleratorConfig::chason()
        });
        let m = uniform_random(70_000, 128, 30_000, 5);
        let x: Vec<f32> = (0..128).map(|i| 0.25 + (i % 3) as f32).collect();
        let plan = engine.plan(&m).expect("plan");
        assert!(plan.passes.len() > 1, "test needs a row-partitioned plan");
        let profiled = profile_planned(&engine, &plan, &x).expect("profiled");
        let a = &profiled.attribution;
        assert_eq!(a.pvt_slots + a.migrated_slots, 30_000);
        assert_eq!(a.stall_slots, profiled.execution.stalls as u64);
        assert_eq!(a.windows, profiled.execution.windows);
    }

    #[test]
    fn mismatched_plan_and_execution_are_refused() {
        let (chason, serpens) = engines();
        let m = uniform_random(64, 64, 300, 1);
        let x = vec![1.0f32; 64];
        let plan = chason.plan(&m).expect("plan");
        let foreign = serpens.run(&m, &x).expect("serpens run");
        assert!(matches!(
            attribute(&plan, &foreign),
            Err(SimError::PlanMismatch(_))
        ));
    }

    #[test]
    fn window_spans_are_identical_across_planning_thread_counts() {
        let (chason, _) = engines();
        let m = uniform_random(64, 40_000, 12_000, 3); // several windows
        let config = *chason.config();
        let serial = chason.plan_with_threads(&m, 1).expect("serial plan");
        let baseline = to_jsonl(&window_spans(&serial, &config));
        assert!(!baseline.is_empty());
        for threads in [2, 4, 8] {
            let plan = chason.plan_with_threads(&m, threads).expect("plan");
            assert_eq!(
                to_jsonl(&window_spans(&plan, &config)),
                baseline,
                "trace must be byte-stable at {threads} threads"
            );
        }
        // Spans are ordered and non-overlapping per the stamp arithmetic.
        let spans = window_spans(&serial, &config);
        for pair in spans.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    }
}
