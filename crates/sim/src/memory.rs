//! On-chip memory models: BRAM (dense-vector buffers) and URAM (partial-sum
//! stores).
//!
//! The models are functional-plus-counters: they hold the actual values the
//! datapath reads and writes and count accesses, so tests can verify both
//! numerical results and traffic. Capacities mirror the Alveo U55c blocks
//! the paper uses: 18 Kb dual-port BRAMs for the `x` buffer and 36 KB
//! (288 Kb) URAMs whose 72-bit slots hold two FP32 partial sums (§4.2.1).

use crate::SimError;

/// Capacity of one 18 Kb BRAM in FP32 words (18 432 bits / 32).
pub const BRAM18K_WORDS: usize = 576;
/// Capacity of one URAM in FP32 partial sums: 4096 slots × 72 bits, two
/// FP32 values per slot (§4.2.1).
pub const URAM_PARTIALS: usize = 8192;

/// A dual-port 18 Kb block RAM buffering a slice of the dense vector `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bram {
    words: Vec<f32>,
    reads: u64,
    writes: u64,
}

impl Bram {
    /// Creates a zeroed buffer of `words` FP32 entries.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds [`BRAM18K_WORDS`] — compose multiple BRAMs
    /// (see [`Peg`](crate::Peg)) for larger buffers.
    pub fn new(words: usize) -> Self {
        assert!(
            words <= BRAM18K_WORDS,
            "one BRAM18K holds at most {BRAM18K_WORDS} words"
        );
        Bram {
            words: vec![0.0; words],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of FP32 words the buffer holds.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads a word (counted).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> f32 {
        self.reads += 1;
        self.words[addr]
    }

    /// Writes a word (counted).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: f32) {
        self.writes += 1;
        self.words[addr] = value;
    }

    /// Total reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

/// A URAM bank holding FP32 partial sums, addressed by local row.
#[derive(Debug, Clone, PartialEq)]
pub struct Uram {
    partials: Vec<f32>,
    reads: u64,
    writes: u64,
}

impl Uram {
    /// Creates a zeroed partial-sum store of `rows` entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RowCapacityExceeded`] if `rows` exceeds one
    /// URAM's capacity ([`URAM_PARTIALS`]).
    pub fn new(rows: usize) -> Result<Self, SimError> {
        if rows > URAM_PARTIALS {
            return Err(SimError::RowCapacityExceeded {
                rows_per_pe: rows,
                capacity: URAM_PARTIALS,
            });
        }
        Ok(Uram {
            partials: vec![0.0; rows],
            reads: 0,
            writes: 0,
        })
    }

    /// Number of partial-sum rows.
    pub fn len(&self) -> usize {
        self.partials.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.partials.is_empty()
    }

    /// Read-modify-write accumulate: `partials[row] += delta` (the paper's
    /// fetch → add → write-back sequence, §4.2.1).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn accumulate(&mut self, row: usize, delta: f32) {
        self.reads += 1;
        self.writes += 1;
        self.partials[row] += delta;
    }

    /// Reads a partial sum (counted).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read(&mut self, row: usize) -> f32 {
        self.reads += 1;
        self.partials[row]
    }

    /// Overwrites a partial sum (counted).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn write(&mut self, row: usize, value: f32) {
        self.writes += 1;
        self.partials[row] = value;
    }

    /// Borrows the raw contents (uncounted; used by the Reduction Unit
    /// sweep, whose cycles are charged separately).
    pub fn contents(&self) -> &[f32] {
        &self.partials
    }

    /// Total reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_counts_accesses() {
        let mut b = Bram::new(16);
        b.write(3, 2.5);
        assert_eq!(b.read(3), 2.5);
        assert_eq!(b.reads(), 1);
        assert_eq!(b.writes(), 1);
        assert_eq!(b.len(), 16);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn bram_rejects_oversize() {
        let _ = Bram::new(BRAM18K_WORDS + 1);
    }

    #[test]
    fn uram_accumulates_with_rmw_counting() {
        let mut u = Uram::new(8).unwrap();
        u.accumulate(2, 1.5);
        u.accumulate(2, 2.5);
        assert_eq!(u.contents()[2], 4.0);
        assert_eq!(u.reads(), 2);
        assert_eq!(u.writes(), 2);
    }

    #[test]
    fn uram_capacity_is_enforced() {
        assert!(Uram::new(URAM_PARTIALS).is_ok());
        let err = Uram::new(URAM_PARTIALS + 1).unwrap_err();
        assert!(matches!(err, SimError::RowCapacityExceeded { .. }));
    }

    #[test]
    fn uram_capacity_matches_paper_geometry() {
        // 4096 slots × two FP32 per 72-bit slot.
        assert_eq!(URAM_PARTIALS, 4096 * 2);
    }

    #[test]
    fn uram_read_write_roundtrip() {
        let mut u = Uram::new(4).unwrap();
        u.write(0, 7.0);
        assert_eq!(u.read(0), 7.0);
    }
}
