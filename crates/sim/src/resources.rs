//! FPGA resource model (Table 1 and Eq. 3 of §4.5).
//!
//! Resource consumption is a static function of the architecture
//! parameters: PEG count, PEs per PEG, and the ScUG size. The per-unit
//! coefficients below are calibrated so the two paper operating points
//! reproduce Table 1 exactly:
//!
//! | | Serpens | Chasoň |
//! |---|---|---|
//! | LUT | 219 K (16%) | 346 K (26%) |
//! | FF | 252 K (9.6%) | 418 K (16%) |
//! | DSP | 798 (9.6%) | 1254 (13%) |
//! | BRAM18K | 1024 (28%) | 1024 (28%) |
//! | URAM | 384 (40%) | 512 (52%) |
//!
//! URAM counts follow §4.5's accounting: each PE owns `scug_urams` shared
//! banks plus one private bank, so `URAMs = PEG × PE × (ScUG + pvt)`. The
//! three sizes the section discusses — the full design (1024), the deployed
//! design (512) and the theoretical minimum (256) — correspond to 7, 3 and
//! 1 shared URAMs per PE respectively.

use serde::{Deserialize, Serialize};

/// Device totals of the AMD Xilinx Alveo U55c (XCU55C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCapacity {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// 18 Kb block RAMs.
    pub bram18k: u64,
    /// UltraRAM blocks.
    pub uram: u64,
}

impl DeviceCapacity {
    /// The Alveo U55c totals (960 URAMs, as §4.5 states).
    pub fn alveo_u55c() -> Self {
        DeviceCapacity {
            lut: 1_303_680,
            ff: 2_607_360,
            dsp: 9024,
            bram18k: 4032,
            uram: 960,
        }
    }
}

/// Architecture parameters the resource algebra consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Number of PEGs (= sparse-matrix HBM channels).
    pub pegs: u64,
    /// PEs per PEG.
    pub pes_per_peg: u64,
    /// Shared URAMs per PE's ScUG (0 for Serpens).
    pub scug_urams: u64,
    /// Whether the design has the CrHCS support units (Reduction Unit,
    /// Re-order Unit, per-PE Router).
    pub crhcs_support: bool,
}

impl ResourceConfig {
    /// Chasoň as deployed: 16 PEGs × 8 PEs, 3 shared + 1 private URAM per
    /// PE (512 total).
    pub fn chason() -> Self {
        ResourceConfig {
            pegs: 16,
            pes_per_peg: 8,
            scug_urams: 3,
            crhcs_support: true,
        }
    }

    /// Serpens baseline: same parallelism, no CrHCS units; its partial-sum
    /// store occupies 3 URAMs per PE (384 total, Table 1).
    pub fn serpens() -> Self {
        ResourceConfig {
            pegs: 16,
            pes_per_peg: 8,
            scug_urams: 0,
            crhcs_support: false,
        }
    }

    /// Total PEs.
    pub fn total_pes(&self) -> u64 {
        self.pegs * self.pes_per_peg
    }

    /// Chasoň accepting migrations from `hops` ring neighbours.
    ///
    /// ScUG storage scales *linearly* with the hop count: every neighbour
    /// channel contributes its own set of source PEs whose partial sums
    /// must stay segregated until the Reduction Unit, so each extra hop
    /// costs another full set of shared URAM banks per PE (the §6.1 cost
    /// argument for deploying only one hop on the U55c). The same linear
    /// model drives the engine's deployed ScUG size
    /// (`pes_per_channel × migration_hops` partial-sum groups per PE).
    ///
    /// # Panics
    ///
    /// Panics if `hops == 0`.
    pub fn chason_with_hops(hops: u64) -> Self {
        assert!(hops >= 1, "chason needs at least one migration hop");
        let deployed = ResourceConfig::chason();
        ResourceConfig {
            scug_urams: deployed.scug_urams * hops,
            ..deployed
        }
    }
}

/// A resource utilization estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// 18 Kb block RAMs.
    pub bram18k: u64,
    /// UltraRAM blocks.
    pub uram: u64,
}

impl ResourceUsage {
    /// Estimates usage for an architecture configuration.
    ///
    /// Coefficients are calibrated against Table 1 (see module docs): the
    /// baseline datapath costs are per-PE; CrHCS support adds per-PE Router
    /// and per-PEG Reduction/Re-order costs.
    pub fn estimate(config: &ResourceConfig) -> Self {
        let pes = config.total_pes();
        // Baseline Serpens datapath (per PE): multiplier + adder + control.
        let mut lut = pes * 1711; // 128 × 1711 ≈ 219 K
        let mut ff = pes * 1969; // 128 × 1969 ≈ 252 K
        let mut dsp = pes * 6 + 30; // 128 × 6 + 30 = 798
        let bram18k = config.pegs * 32 + 512; // x buffers + I/O FIFOs = 1024
                                              // Partial-sum URAMs: Serpens banks its store over 3 URAMs per PE;
                                              // Chasoň replaces it with 1 private + `scug_urams` shared banks.
        let uram_per_pe = if config.crhcs_support {
            1 + config.scug_urams
        } else {
            3
        };
        let uram = pes * uram_per_pe;
        if config.crhcs_support {
            // Router muxes per PE, Reduction + Re-order units per PEG.
            lut += pes * 727 + config.pegs * 2122; // ≈ +127 K
            ff += pes * 1000 + config.pegs * 2375; // ≈ +166 K
            dsp += pes * 3 + config.pegs * 4 + 8; // adder tree + re-order: +456
        }
        ResourceUsage {
            lut,
            ff,
            dsp,
            bram18k,
            uram,
        }
    }

    /// Utilization percentages against a device.
    pub fn utilization_pct(&self, device: &DeviceCapacity) -> [(&'static str, f64); 5] {
        let pct = |used: u64, avail: u64| 100.0 * used as f64 / avail as f64;
        [
            ("LUT", pct(self.lut, device.lut)),
            ("FF", pct(self.ff, device.ff)),
            ("DSP", pct(self.dsp, device.dsp)),
            ("BRAM18K", pct(self.bram18k, device.bram18k)),
            ("URAM", pct(self.uram, device.uram)),
        ]
    }

    /// Whether the design fits the device.
    pub fn fits(&self, device: &DeviceCapacity) -> bool {
        self.lut <= device.lut
            && self.ff <= device.ff
            && self.dsp <= device.dsp
            && self.bram18k <= device.bram18k
            && self.uram <= device.uram
    }
}

/// §4.5's URAM accounting (Eq. 3, as deployed): total URAMs for a design
/// with `pegs × pes` PEs and `scug_urams` shared banks plus one private
/// bank per PE.
pub fn uram_count(pegs: u64, pes_per_peg: u64, scug_urams: u64) -> u64 {
    pegs * pes_per_peg * (scug_urams + 1)
}

/// On-chip memory the URAMs provide, in bytes (36 KB each on the U55c).
pub fn uram_bytes(urams: u64) -> u64 {
    urams * 36 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chason_matches_table1() {
        let u = ResourceUsage::estimate(&ResourceConfig::chason());
        assert_eq!(u.uram, 512);
        assert_eq!(u.bram18k, 1024);
        assert!((u.lut as f64 - 346_000.0).abs() < 4_000.0, "lut {}", u.lut);
        assert!((u.ff as f64 - 418_000.0).abs() < 4_000.0, "ff {}", u.ff);
        assert_eq!(u.dsp, 1254);
    }

    #[test]
    fn serpens_matches_table1() {
        let u = ResourceUsage::estimate(&ResourceConfig::serpens());
        assert_eq!(u.uram, 384);
        assert_eq!(u.bram18k, 1024);
        assert!((u.lut as f64 - 219_000.0).abs() < 1_000.0, "lut {}", u.lut);
        assert!((u.ff as f64 - 252_000.0).abs() < 1_000.0, "ff {}", u.ff);
        assert_eq!(u.dsp, 798);
    }

    #[test]
    fn utilization_percentages_match_table1() {
        let dev = DeviceCapacity::alveo_u55c();
        let chason = ResourceUsage::estimate(&ResourceConfig::chason());
        let pct: Vec<f64> = chason
            .utilization_pct(&dev)
            .iter()
            .map(|&(_, p)| p)
            .collect();
        assert!((pct[0] - 26.0).abs() < 1.5, "LUT% {}", pct[0]); // 26%
        assert!((pct[4] - 52.0).abs() < 2.0, "URAM% {}", pct[4]); // 52%
        assert!(chason.fits(&dev));
    }

    #[test]
    fn full_scug_design_exceeds_the_device() {
        // §4.5: the full design (7 shared + 1 private per PE = 1024 URAMs)
        // exceeds the 960 available.
        let full = ResourceConfig {
            scug_urams: 7,
            ..ResourceConfig::chason()
        };
        let u = ResourceUsage::estimate(&full);
        assert_eq!(u.uram, 1024);
        assert!(!u.fits(&DeviceCapacity::alveo_u55c()));
    }

    #[test]
    fn uram_cost_scales_linearly_with_migration_hops() {
        // One hop is the deployed design (512 URAMs, 52% of the U55c).
        let dev = DeviceCapacity::alveo_u55c();
        let one = ResourceUsage::estimate(&ResourceConfig::chason_with_hops(1));
        assert_eq!(one, ResourceUsage::estimate(&ResourceConfig::chason()));
        assert_eq!(one.uram, 512);
        // Each extra hop adds another full set of shared banks: +3 URAMs
        // per PE, +384 total.
        let two = ResourceUsage::estimate(&ResourceConfig::chason_with_hops(2));
        assert_eq!(two.uram, 896); // 16 × 8 × (1 + 6)
        assert_eq!(two.uram - one.uram, 384);
        // Two hops still squeezes onto the device (93% of its URAMs);
        // three hops is the point §6.1 defers to a larger FPGA.
        assert!(two.fits(&dev));
        let three = ResourceUsage::estimate(&ResourceConfig::chason_with_hops(3));
        assert_eq!(three.uram, 1280);
        assert!(!three.fits(&dev));
    }

    #[test]
    fn eq3_operating_points() {
        assert_eq!(uram_count(16, 8, 7), 1024); // full design
        assert_eq!(uram_count(16, 8, 3), 512); // as deployed
        assert_eq!(uram_count(16, 8, 1), 256); // theoretical minimum
    }

    #[test]
    fn deployed_uram_capacity_is_18_mb() {
        // §4.5: 512 URAMs → 18 MB of partial-sum storage.
        assert_eq!(uram_bytes(512), 18 * 1024 * 1024);
        // Serpens: 384 URAMs → 13.5 MB.
        assert_eq!(uram_bytes(384), (13.5 * 1024.0 * 1024.0) as u64);
    }
}
