use std::error::Error;
use std::fmt;

/// Error type of the architecture simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The matrix has more rows per PE than a partial-sum URAM can hold; the
    /// problem must be row-partitioned before simulation (§4.5).
    RowCapacityExceeded {
        /// Rows the busiest PE would need to track.
        rows_per_pe: usize,
        /// URAM capacity in rows per PE.
        capacity: usize,
    },
    /// The dense input vector length does not match the matrix columns.
    VectorLengthMismatch {
        /// Supplied vector length.
        got: usize,
        /// Matrix column count.
        expected: usize,
    },
    /// The accelerator configuration is inconsistent.
    InvalidConfig(String),
    /// A scheduled slot was routed to hardware that cannot process it (e.g.
    /// a migrated element reaching a Serpens PE, which has no ScUG).
    RoutingViolation(String),
    /// A schedule plan was handed to an engine whose configuration (or
    /// family) differs from the one that produced it.
    PlanMismatch(String),
    /// The pre-execution static checker (`chason-verify`, run in debug
    /// builds and under the `strict-verify` feature) found rule violations
    /// in the pass about to execute. Carries the rendered diagnostic report.
    InvalidSchedule(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RowCapacityExceeded { rows_per_pe, capacity } => write!(
                f,
                "matrix needs {rows_per_pe} partial-sum rows per PE but URAMs hold {capacity}; row-partition the matrix"
            ),
            SimError::VectorLengthMismatch { got, expected } => {
                write!(f, "dense vector length {got} does not match {expected} matrix columns")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid accelerator config: {msg}"),
            SimError::RoutingViolation(msg) => write!(f, "routing violation: {msg}"),
            SimError::PlanMismatch(msg) => write!(f, "plan mismatch: {msg}"),
            SimError::InvalidSchedule(report) => {
                write!(f, "schedule failed verification:\n{report}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::RowCapacityExceeded {
            rows_per_pe: 99999,
            capacity: 8192,
        };
        assert!(e.to_string().contains("99999"));
        let e = SimError::VectorLengthMismatch {
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
