//! Property-based and failure-injection tests of the architecture model.

use chason_core::schedule::{Crhcs, NzSlot, PeAware, Scheduler, SchedulerConfig};
use chason_sim::{AcceleratorConfig, ChasonEngine, Peg, SerpensEngine};
use chason_sparse::CooMatrix;
use chason_testutil::sparse_matrix;
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = CooMatrix> {
    sparse_matrix(48, 120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's MAC counter always equals the matrix's non-zero count:
    /// no element is dropped or processed twice, under any configuration.
    #[test]
    fn mac_count_equals_nnz(
        m in matrix_strategy(),
        channels in 1usize..4,
        pes in 1usize..5,
        d in 1usize..12,
        hops in 1usize..3,
    ) {
        let hops = hops.min(channels.saturating_sub(1)).max(1);
        let sched = SchedulerConfig {
            migration_hops: hops,
            ..SchedulerConfig::toy(channels, pes, d)
        };
        prop_assume!(sched.is_valid());
        let config = AcceleratorConfig { sched, ..AcceleratorConfig::chason() };
        let x = vec![1.0f32; m.cols()];
        let exec = ChasonEngine::new(config).run(&m, &x).expect("run succeeds");
        prop_assert_eq!(exec.mac_ops as usize, m.nnz());
        prop_assert_eq!(exec.y.len(), m.rows());
    }

    /// Chasoň's stream never exceeds Serpens' for the same problem and
    /// parallelism (CrHCS starts from the PE-aware schedule and only trims).
    #[test]
    fn chason_stream_never_longer(m in matrix_strategy(), channels in 2usize..4, pes in 1usize..5) {
        let sched = SchedulerConfig::toy(channels, pes, 6);
        let chason = ChasonEngine::new(AcceleratorConfig { sched, ..AcceleratorConfig::chason() });
        let serpens = SerpensEngine::new(AcceleratorConfig { sched, ..AcceleratorConfig::serpens() });
        let x = vec![0.5f32; m.cols()];
        let ce = chason.run(&m, &x).expect("chason runs");
        let se = serpens.run(&m, &x).expect("serpens runs");
        prop_assert!(ce.cycles.stream <= se.cycles.stream);
        prop_assert!(ce.bytes_streamed <= se.bytes_streamed);
    }
}

/// Failure injection: hand the Chasoň PEG a slot whose `pvt` flag was
/// corrupted (claims to be private but belongs to another channel's row).
/// The Router must refuse instead of silently corrupting a partial sum.
#[test]
fn corrupted_pvt_flag_is_caught() {
    let sched = SchedulerConfig::toy(2, 2, 4);
    let mut peg = Peg::new(0, 2, 16, 8, 2).unwrap();
    peg.load_x(&[1.0; 16]);
    // Row 2 belongs to channel 1; claim it is private to channel 0.
    let corrupted = NzSlot {
        value: 1.0,
        row: 2,
        col: 0,
        pvt: true,
        pe_src: 0,
    };
    let err = peg
        .consume_cycle(&[Some(corrupted), None], &sched)
        .unwrap_err();
    assert!(err.to_string().contains("routing violation"), "{err}");
}

/// Failure injection: a migrated element whose home channel equals the
/// streaming channel is structurally impossible; the Router must refuse.
#[test]
fn migrated_flag_inside_home_channel_is_caught() {
    let sched = SchedulerConfig::toy(2, 2, 4);
    let mut peg = Peg::new(0, 2, 16, 8, 2).unwrap();
    peg.load_x(&[1.0; 16]);
    // Row 0 belongs to channel 0, but the slot claims it migrated.
    let corrupted = NzSlot {
        value: 1.0,
        row: 0,
        col: 0,
        pvt: false,
        pe_src: 0,
    };
    let err = peg
        .consume_cycle(&[Some(corrupted), None], &sched)
        .unwrap_err();
    assert!(err.to_string().contains("home channel"), "{err}");
}

/// Failure injection: running a CrHCS schedule on the Serpens datapath
/// (no ScUGs) must fail loudly whenever migration actually happened —
/// mirrors §4.4's point that Serpens cannot support cross-channel data.
#[test]
fn crhcs_schedule_on_serpens_hardware_is_rejected() {
    let sched = SchedulerConfig::toy(2, 2, 4);
    // A matrix that forces migration: all rows on channel 1, many values.
    let t: Vec<_> = (0..30)
        .map(|i| (2 + (i % 2) + 4 * (i / 2), i % 8, 1.0 + i as f32))
        .collect();
    let m = CooMatrix::from_triplets(64, 8, t).unwrap();
    let schedule = Crhcs::new().schedule(&m, &sched);
    let migrated = schedule
        .channels
        .iter()
        .flat_map(|c| c.grid.iter().flatten().flatten())
        .any(|nz| !nz.pvt);
    assert!(migrated, "test needs actual migration");
    // Serpens-style PEG: scug_size = 0.
    let mut peg0 = Peg::new(0, 2, 32, 16, 0).unwrap();
    peg0.load_x(&[1.0; 8]);
    let mut failed = false;
    for slots in &schedule.channels[0].grid {
        if peg0.consume_cycle(slots, &sched).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "Serpens hardware must reject migrated elements");
}

/// Failure injection: a hand-built schedule that violates the RAW distance
/// (two values of one row on one PE in consecutive cycles) trips the PEs'
/// pipeline-hazard detector.
#[test]
fn raw_violating_schedule_trips_the_hazard_detector() {
    let sched = SchedulerConfig::toy(1, 1, 10);
    let mut peg = Peg::new(0, 1, 8, 8, 0).unwrap();
    peg.load_x(&[1.0; 8]);
    let v1 = NzSlot::private(1.0, 0, 0);
    let v2 = NzSlot::private(2.0, 0, 1);
    peg.consume_cycle_at(&[Some(v1)], &sched, Some(0)).unwrap();
    peg.consume_cycle_at(&[Some(v2)], &sched, Some(1)).unwrap();
    assert_eq!(
        peg.hazards(),
        1,
        "back-to-back same-row values must be flagged"
    );
    // A third value at the full distance is fine.
    let v3 = NzSlot::private(3.0, 0, 2);
    peg.consume_cycle_at(&[Some(v3)], &sched, Some(11)).unwrap();
    assert_eq!(peg.hazards(), 1);
}

/// Every scheduler's real output executes hazard-free (the detector stays
/// at zero when driven by the actual schedulers).
#[test]
fn real_schedules_are_hazard_free() {
    let sched = SchedulerConfig::toy(2, 4, 10);
    let m = chason_sparse::generators::arrow_with_nnz(512, 3, 4, 6_000, 7);
    for schedule in [
        PeAware::new().schedule(&m, &sched),
        Crhcs::new().schedule(&m, &sched),
    ] {
        let mut pegs: Vec<Peg> = (0..2)
            .map(|c| Peg::new(c, 4, 512, 64, 8).unwrap())
            .collect();
        for peg in &mut pegs {
            peg.load_x(&vec![1.0; 512]);
        }
        for (c, channel) in schedule.channels.iter().enumerate() {
            for (cycle, slots) in channel.grid.iter().enumerate() {
                pegs[c]
                    .consume_cycle_at(slots, &sched, Some(cycle as u64))
                    .unwrap();
            }
        }
        let hazards: u64 = pegs.iter().map(Peg::hazards).sum();
        assert_eq!(hazards, 0, "scheduler produced a hazardous stream");
    }
}

/// The PE-aware scheduler's output on Serpens hardware is always accepted
/// (the complementary positive case).
#[test]
fn pe_aware_schedule_on_serpens_hardware_is_accepted() {
    let sched = SchedulerConfig::toy(2, 2, 4);
    let m = chason_sparse::generators::uniform_random(64, 8, 100, 3);
    let schedule = PeAware::new().schedule(&m, &sched);
    for (ch, channel) in schedule.channels.iter().enumerate() {
        let mut peg = Peg::new(ch, 2, 32, 16, 0).unwrap();
        peg.load_x(&[1.0; 8]);
        for slots in &channel.grid {
            peg.consume_cycle(slots, &sched)
                .expect("private-only schedule runs");
        }
    }
}
