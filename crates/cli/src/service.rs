//! `chason serve` / `chason route` / `chason client` / `chason loadgen` —
//! the CHSP service front ends.

use crate::args::Args;
use crate::commands::scheduler_config;
use chason_router::{Router, RouterConfig};
use chason_serve::client::{Client, ClientError, RetryPolicy};
use chason_serve::loadgen::{self, LoadgenOptions};
use chason_serve::proto::{Engine, SolverKind};
use chason_serve::server::{ServeConfig, Server};
use chason_serve::NetMode;
use chason_sparse::market::read_matrix_market;
use chason_sparse::CooMatrix;
use std::fs::File;
use std::io::Write;
use std::time::Duration;

fn parse_engine(args: &Args) -> Result<Engine, String> {
    let name = args.get("engine").unwrap_or("chason");
    Engine::from_name(name).ok_or_else(|| format!("unknown engine '{name}'"))
}

fn read_positional_matrix(args: &Args, index: usize) -> Result<CooMatrix, String> {
    let path = args
        .positional
        .get(index)
        .ok_or_else(|| "expected a MatrixMarket file path".to_string())?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_matrix_market(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// `chason serve` — run the CHSP daemon until a `Shutdown` request
/// arrives.
pub fn serve(args: &Args) -> Result<(), String> {
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7477").to_string(),
        workers: args.get_or("workers", 4usize)?,
        queue_capacity: args.get_or("queue", 64usize)?,
        plan_cache_capacity: args.get_or("plan-cache", 64usize)?,
        matrix_cache_capacity: args.get_or("matrix-cache", 32usize)?,
        idle_timeout: Duration::from_secs(args.get_or("idle-timeout-secs", 30u64)?),
        batch_max: args.get_or("batch-max", 8usize)?,
        retry_after_ms: args.get_or("retry-after-ms", 20u32)?,
        sched: scheduler_config(args)?,
        net: NetMode::parse(args.get("net").unwrap_or("async"))?,
        ..ServeConfig::default()
    };
    let server = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("chason serve listening on {}", server.local_addr());
    // The line above is how scripts discover an ephemeral port; make sure
    // it is visible before we block.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    server.join();
    println!("chason serve drained and exited");
    Ok(())
}

/// `chason route` — scatter-gather CHSP frontend over N backend shards;
/// runs until a `Shutdown` request arrives (forwarded to every shard
/// when `--shutdown-shards` is set).
pub fn route(args: &Args) -> Result<(), String> {
    let shards: Vec<String> = args
        .get("shards")
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shards.is_empty() {
        return Err("route needs --shards HOST:PORT,HOST:PORT,...".to_string());
    }
    let config = RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7478").to_string(),
        shards,
        workers: args.get_or("workers", 4usize)?,
        queue_capacity: args.get_or("queue", 64usize)?,
        matrix_cache_capacity: args.get_or("matrix-cache", 32usize)?,
        retry_after_ms: args.get_or("retry-after-ms", 20u32)?,
        shard_retry: RetryPolicy {
            max_attempts: args.get_or("retry-attempts", RetryPolicy::default().max_attempts)?,
            ..RetryPolicy::default()
        },
        health_interval: Duration::from_millis(args.get_or("health-interval-ms", 2000u64)?),
        shutdown_shards: args.has_flag("shutdown-shards"),
        net: NetMode::parse(args.get("net").unwrap_or("async"))?,
        ..RouterConfig::default()
    };
    let router = Router::start(config).map_err(|e| format!("cannot start router: {e}"))?;
    println!("chason route listening on {}", router.local_addr());
    // The line above is how scripts discover an ephemeral port; make sure
    // it is visible before we block.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    router.join();
    println!("chason route drained and exited");
    Ok(())
}

fn connect(args: &Args) -> Result<Client, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7477");
    let client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let retries = args.get_or("retries", 0u32)?;
    Ok(if retries > 0 {
        client.with_retry(Some(RetryPolicy {
            max_attempts: retries,
            ..RetryPolicy::default()
        }))
    } else {
        client
    })
}

/// Renders a client error for the terminal, surfacing the server's
/// back-off hint on `Busy` instead of a generic failure string.
fn describe(err: ClientError) -> String {
    match err {
        ClientError::Busy { retry_after_ms } => format!(
            "server busy — retry after {retry_after_ms} ms \
             (pass --retries N to back off and retry automatically)"
        ),
        ClientError::RetriesExhausted {
            attempts,
            retry_after_ms,
        } => format!(
            "server still busy after {attempts} attempts — last hint: \
             retry after {retry_after_ms} ms"
        ),
        other => other.to_string(),
    }
}

/// Parses a `;`-separated list of `row,col,value` triplets
/// (e.g. `--insert "0,5,1.5;2,7,-3.25"`).
fn parse_triplets(spec: &str) -> Result<Vec<(u64, u64, f32)>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            let parts: Vec<&str> = s.split(',').map(str::trim).collect();
            let [r, c, v] = parts.as_slice() else {
                return Err(format!("expected row,col,value in '{s}'"));
            };
            Ok((
                r.parse()
                    .map_err(|_| format!("invalid row '{r}' in '{s}'"))?,
                c.parse()
                    .map_err(|_| format!("invalid col '{c}' in '{s}'"))?,
                v.parse()
                    .map_err(|_| format!("invalid value '{v}' in '{s}'"))?,
            ))
        })
        .collect()
}

/// Parses a `;`-separated list of `row,col` coordinates
/// (e.g. `--delete "0,5;2,7"`).
fn parse_coords(spec: &str) -> Result<Vec<(u64, u64)>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            let parts: Vec<&str> = s.split(',').map(str::trim).collect();
            let [r, c] = parts.as_slice() else {
                return Err(format!("expected row,col in '{s}'"));
            };
            Ok((
                r.parse()
                    .map_err(|_| format!("invalid row '{r}' in '{s}'"))?,
                c.parse()
                    .map_err(|_| format!("invalid col '{c}' in '{s}'"))?,
            ))
        })
        .collect()
}

/// `chason client <op>` — one-shot CHSP requests against a running
/// server.
pub fn client(args: &Args) -> Result<(), String> {
    let op = args.positional.first().map(String::as_str).ok_or_else(|| {
        "expected an operation: stats | metrics | load | spmv | solve | plan | update | shutdown"
            .to_string()
    })?;
    let mut client = connect(args)?;
    match op {
        "stats" => {
            let snapshot = client.stats().map_err(describe)?;
            print!("{}", snapshot.render_table());
        }
        "metrics" => {
            let text = client.metrics().map_err(describe)?;
            print!("{text}");
        }
        "load" => {
            let matrix = read_positional_matrix(args, 1)?;
            let (handle, fresh) = client.load_matrix(&matrix).map_err(describe)?;
            println!(
                "handle {handle:#018x} ({}, {} x {}, {} nnz)",
                if fresh { "fresh" } else { "already resident" },
                matrix.rows(),
                matrix.cols(),
                matrix.nnz()
            );
        }
        "spmv" => {
            let matrix = read_positional_matrix(args, 1)?;
            let engine = parse_engine(args)?;
            let (handle, _) = client.load_matrix(&matrix).map_err(describe)?;
            let x = vec![1.0f32; matrix.cols()];
            let (y, service_micros, simulated_nanos) =
                client.spmv(handle, engine, x).map_err(describe)?;
            let checksum: f64 = y.iter().map(|&v| v as f64).sum();
            println!("engine        : {}", engine.name());
            println!("y checksum    : {checksum:.6}");
            println!("service time  : {service_micros} us");
            println!("modeled time  : {simulated_nanos} ns");
        }
        "solve" => {
            let matrix = read_positional_matrix(args, 1)?;
            let engine = parse_engine(args)?;
            let solver_name = args.get("solver").unwrap_or("cg");
            let solver = SolverKind::from_name(solver_name)
                .ok_or_else(|| format!("unknown solver '{solver_name}'"))?;
            let max_iterations = args.get_or("max-iterations", 500u32)?;
            let tolerance = args.get_or("tolerance", 1e-6f64)?;
            let (handle, _) = client.load_matrix(&matrix).map_err(describe)?;
            let b = vec![1.0f32; matrix.rows()];
            let outcome = client
                .solve(handle, engine, solver, max_iterations, tolerance, b)
                .map_err(describe)?;
            println!("solver        : {} on {}", solver.name(), engine.name());
            println!(
                "converged     : {} after {} iterations (residual {:.3e})",
                outcome.converged, outcome.iterations, outcome.residual
            );
            println!("service time  : {} us", outcome.service_micros);
            println!("modeled time  : {} ns", outcome.simulated_nanos);
        }
        "plan" => {
            let matrix = read_positional_matrix(args, 1)?;
            let engine = parse_engine(args)?;
            let (handle, _) = client.load_matrix(&matrix).map_err(describe)?;
            let bytes = client.plan(handle, engine).map_err(describe)?;
            match args.get("out") {
                Some(path) => {
                    std::fs::write(path, &bytes)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("wrote {} CHPL bytes to {path}", bytes.len());
                }
                None => println!(
                    "plan artifact: {} CHPL bytes (use --out FILE to save)",
                    bytes.len()
                ),
            }
        }
        "update" => {
            let matrix = read_positional_matrix(args, 1)?;
            let inserts = args
                .get("insert")
                .map(parse_triplets)
                .transpose()?
                .unwrap_or_default();
            let revalues = args
                .get("revalue")
                .map(parse_triplets)
                .transpose()?
                .unwrap_or_default();
            let deletes = args
                .get("delete")
                .map(parse_coords)
                .transpose()?
                .unwrap_or_default();
            if inserts.is_empty() && revalues.is_empty() && deletes.is_empty() {
                return Err(
                    "update needs at least one --insert r,c,v / --revalue r,c,v / --delete r,c"
                        .to_string(),
                );
            }
            // Loading is idempotent: if the matrix is already resident this
            // just resolves the handle of its current lineage.
            let (handle, _) = client.load_matrix(&matrix).map_err(describe)?;
            let outcome = client
                .update(handle, inserts, revalues, deletes)
                .map_err(describe)?;
            println!("handle        : {handle:#018x}");
            println!("version       : {}", outcome.version);
            println!("nnz           : {}", outcome.nnz);
            println!(
                "plans spliced : {} ({}/{} windows replanned)",
                outcome.plans_spliced, outcome.windows_replanned, outcome.windows_total
            );
        }
        "shutdown" => {
            client.shutdown().map_err(describe)?;
            println!("server acknowledged shutdown");
        }
        other => return Err(format!("unknown client operation '{other}'")),
    }
    Ok(())
}

/// `chason loadgen` — deterministic load against a CHSP server (or an
/// in-process one when `--addr` is omitted): closed-loop by default,
/// pipelined with `--pipeline DEPTH`, open-loop with `--open-loop RPS`.
pub fn run_loadgen(args: &Args) -> Result<(), String> {
    let churn = args.get_or("churn", 0u64)?;
    if churn > 100 {
        return Err(format!(
            "--churn {churn} is out of range (percentage, 0-100)"
        ));
    }
    let open_loop_rps = args
        .get("open-loop")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|e| format!("--open-loop {raw}: {e}"))
        })
        .transpose()?;
    let options = LoadgenOptions {
        connections: args.get_or("connections", 4usize)?,
        requests: args.get_or("requests", 1000usize)?,
        seed: args.get_or("seed", 7u64)?,
        addr: args.get("addr").map(str::to_string),
        require_hits: args.has_flag("require-hits"),
        churn,
        router: args.has_flag("router"),
        pipeline: args.get_or("pipeline", 1usize)?,
        open_loop_rps,
    };
    let report = loadgen::run(&options)?;
    let rendered = match args.get("format").unwrap_or("text") {
        "text" => report.render(),
        "json" => {
            let mut json = report.render_json();
            json.push('\n');
            json
        }
        other => return Err(format!("unknown format '{other}' (expected text or json)")),
    };
    print!("{rendered}");
    if let Some(path) = args.get("report") {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}
