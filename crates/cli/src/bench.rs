//! `chason bench` — wall-clock benchmark runs and baseline comparison.
//!
//! ```text
//! chason bench                       # run smoke profile, write BENCH_smoke.json
//! chason bench --profile full --name baseline --out results/bench
//! chason bench --baseline BENCH_smoke.json       # run, then gate vs baseline
//! chason bench --baseline a.json --current b.json  # compare only, no run
//! ```

use crate::args::Args;
use chason_bench::wallclock::report::BenchReport;
use chason_bench::wallclock::runner::Profile;
use chason_bench::wallclock::{compare, render_table, run_report};
use std::path::PathBuf;

fn read_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Entry point for `chason bench`.
pub fn bench(args: &Args) -> Result<(), String> {
    let threshold = args.get_or("threshold", 20.0)? / 100.0;
    if threshold < 0.0 {
        return Err("--threshold must be non-negative (percent)".to_string());
    }

    // Compare-only mode: both sides come from files, nothing runs.
    if let (Some(baseline_path), Some(current_path)) = (args.get("baseline"), args.get("current")) {
        let baseline = read_report(baseline_path)?;
        let current = read_report(current_path)?;
        return gate(&baseline, &current, threshold);
    }
    if args.get("current").is_some() {
        return Err("--current requires --baseline".to_string());
    }

    let profile = Profile::by_name(args.get("profile").unwrap_or("smoke"))?;
    let filter = args.get("filter");
    let name = args.get("name").unwrap_or(profile.name);
    let report = run_report(name, &profile, filter);
    if report.results.is_empty() {
        return Err(match filter {
            Some(f) => format!("no registered benchmark matches filter '{f}'"),
            None => "no benchmarks registered".to_string(),
        });
    }
    print!("{}", render_table(&report));

    let out_dir = PathBuf::from(args.get("out").unwrap_or("."));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let out_path = out_dir.join(report.file_name());
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    println!("wrote {}", out_path.display());

    match args.get("baseline") {
        Some(baseline_path) => gate(&read_report(baseline_path)?, &report, threshold),
        None => Ok(()),
    }
}

fn gate(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Result<(), String> {
    let cmp = compare::compare(baseline, current, threshold);
    print!("{}", cmp.render());
    if cmp.is_failure() {
        Err(format!(
            "benchmark gate failed: {} regression(s), {} missing benchmark(s)",
            cmp.regressions().count(),
            cmp.missing.len()
        ))
    } else {
        Ok(())
    }
}
