//! Subcommand implementations.

use crate::args::Args;
use chason::solvers::{
    conjugate_gradient, jacobi, CgOptions, CpuBackend, EngineBackend, SpmvBackend,
};
use chason_core::metrics::{schedule_insights, windowed_metrics, WindowedMetrics};
use chason_core::schedule::{Crhcs, PeAware, RowBased, Scheduler, SchedulerConfig};
use chason_hbm::HbmConfig;
use chason_sim::power::MeasuredPower;
use chason_sim::report::PerformanceReport;
use chason_sim::{AcceleratorConfig, ChasonEngine, Execution, SerpensEngine};
use chason_sparse::generators::{arrow_with_nnz, banded_with_nnz, power_law, uniform_random};
use chason_sparse::market::{read_matrix_market, write_matrix_market};
use chason_sparse::stats::row_stats;
use chason_sparse::CooMatrix;
use chason_verify::mutate::Corruption;
use std::fs::File;
use std::io::BufWriter;

fn load_matrix(args: &Args) -> Result<CooMatrix, String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| "expected a MatrixMarket file path".to_string())?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_matrix_market(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

pub(crate) fn scheduler_config(args: &Args) -> Result<SchedulerConfig, String> {
    let config = SchedulerConfig {
        channels: args.get_or("channels", 16usize)?,
        pes_per_channel: args.get_or("pes", 8usize)?,
        dependency_distance: args.get_or("distance", 10usize)?,
        migration_scan_limit: args.get_or("scan-limit", 256usize)?,
        migration_hops: args.get_or("hops", 1usize)?,
    };
    if !config.is_valid() {
        return Err(format!(
            "invalid scheduling configuration: {} channels x {} PEs, D = {}, hops = {}",
            config.channels,
            config.pes_per_channel,
            config.dependency_distance,
            config.migration_hops
        ));
    }
    Ok(config)
}

fn describe_metrics(m: &WindowedMetrics) {
    println!("scheduler        : {}", m.scheduler);
    println!("non-zeros        : {}", m.nnz);
    println!("stall slots      : {}", m.stalls);
    println!("stream cycles    : {}", m.stream_cycles);
    println!("column windows   : {}", m.windows);
    println!("underutilization : {:.2}%", m.underutilization_pct());
    let per_peg = m.per_peg_underutilization_pct();
    let min = per_peg.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_peg.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("per-PEG range    : {min:.1}% .. {max:.1}%");
}

/// `chason schedule <matrix.mtx>` — offline scheduling metrics.
pub fn schedule(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    let config = scheduler_config(args)?;
    let stats = row_stats(&matrix);
    println!(
        "matrix: {} x {}, {} nnz (max row {} nnz, gini {:.2})\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        stats.max_row_nnz,
        stats.gini
    );
    let window = chason_core::element::WINDOW;
    let name = args.get("scheduler").unwrap_or("crhcs").to_string();
    let metrics = match name.as_str() {
        "crhcs" => windowed_metrics(&Crhcs::new(), &matrix, &config, window),
        "pe-aware" => windowed_metrics(&PeAware::new(), &matrix, &config, window),
        "row-based" => windowed_metrics(&RowBased::new(), &matrix, &config, window),
        other => return Err(format!("unknown scheduler '{other}'")),
    };
    describe_metrics(&metrics);
    if args.has_flag("insights") && matrix.cols() <= chason_core::element::WINDOW {
        let schedule = match name.as_str() {
            "crhcs" => Crhcs::new().schedule(&matrix, &config),
            "pe-aware" => PeAware::new().schedule(&matrix, &config),
            _ => RowBased::new().schedule(&matrix, &config),
        };
        let insights = schedule_insights(&schedule);
        println!("longest idle run : {} cycles", insights.longest_stall_run);
        println!(
            "migrated values  : {} ({:?} per hop)",
            insights.migrated, insights.migrated_per_hop
        );
        println!(
            "mean fill point  : {:.2} of the stream",
            insights.mean_fill_position
        );
    }
    Ok(())
}

fn print_execution(exec: &Execution) {
    let hbm = HbmConfig::alveo_u55c();
    let bandwidth = hbm.aggregate_bandwidth_gbps(16);
    let power = match exec.engine {
        "chason" => MeasuredPower::chason(),
        _ => MeasuredPower::serpens(),
    };
    let report = PerformanceReport::from_execution(exec, bandwidth, power);
    println!("engine               : {}", exec.engine);
    println!("latency              : {:.4} ms", report.latency_ms);
    println!(
        "throughput           : {:.3} GFLOPS",
        report.throughput_gflops
    );
    println!(
        "bandwidth efficiency : {:.4} GFLOPS/(GB/s)",
        report.bandwidth_efficiency
    );
    println!(
        "energy efficiency    : {:.4} GFLOPS/W",
        report.energy_efficiency
    );
    println!("PE underutilization  : {:.2}%", report.underutilization_pct);
    println!("cycles               : {} total", exec.cycles.total());
    println!(
        "                       stream {} | drain {} | x-reload {} | reduce {} | merge {} | invoke {}",
        exec.cycles.stream,
        exec.cycles.fill_drain,
        exec.cycles.x_reload,
        exec.cycles.reduction,
        exec.cycles.merge,
        exec.cycles.invocation
    );
    println!(
        "data streamed        : {:.3} MB",
        exec.bytes_streamed as f64 / 1e6
    );
}

fn execute(args: &Args, matrix: &CooMatrix, engine_name: &str) -> Result<Execution, String> {
    let sched = scheduler_config(args)?;
    let x = vec![1.0f32; matrix.cols()];
    // Plan first (windows scheduled in parallel), then execute the plan —
    // the same artifact a solver would cache across iterations.
    match engine_name {
        "chason" => {
            let config = AcceleratorConfig {
                sched,
                ..AcceleratorConfig::chason()
            };
            let engine = ChasonEngine::new(config);
            let plan = engine.plan(matrix).map_err(|e| e.to_string())?;
            engine.run_planned(&plan, &x).map_err(|e| e.to_string())
        }
        "serpens" => {
            let config = AcceleratorConfig {
                sched,
                ..AcceleratorConfig::serpens()
            };
            let engine = SerpensEngine::new(config);
            let plan = engine.plan(matrix).map_err(|e| e.to_string())?;
            engine.run_planned(&plan, &x).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown engine '{other}'")),
    }
}

/// `chason run <matrix.mtx>` — simulated execution.
pub fn run(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    let engine = args.get("engine").unwrap_or("chason").to_string();
    let exec = execute(args, &matrix, &engine)?;
    print_execution(&exec);
    Ok(())
}

/// `chason compare <matrix.mtx>` — both engines side by side.
pub fn compare(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    let chason = execute(args, &matrix, "chason")?;
    let serpens = execute(args, &matrix, "serpens")?;
    print_execution(&serpens);
    println!();
    print_execution(&chason);
    println!();
    println!(
        "speedup: {:.2}x | transfer reduction: {:.2}x",
        serpens.latency_seconds() / chason.latency_seconds(),
        serpens.bytes_streamed as f64 / chason.bytes_streamed.max(1) as f64
    );
    Ok(())
}

/// `chason generate <recipe> <out.mtx>` — synthetic matrix generation.
pub fn generate(args: &Args) -> Result<(), String> {
    let recipe = args
        .positional
        .first()
        .ok_or_else(|| "expected a recipe (uniform|powerlaw|banded|arrow)".to_string())?
        .clone();
    let out = args
        .positional
        .get(1)
        .ok_or_else(|| "expected an output path".to_string())?;
    let n: usize = args.get_or("n", 0)?;
    let nnz: usize = args.get_or("nnz", 0)?;
    if n == 0 || nnz == 0 {
        return Err("--n and --nnz are required".to_string());
    }
    let seed: u64 = args.get_or("seed", 1)?;
    let matrix = match recipe.as_str() {
        "uniform" => uniform_random(n, n, nnz, seed),
        "powerlaw" => power_law(n, n, nnz, args.get_or("alpha", 1.7f64)?, seed),
        "banded" => banded_with_nnz(n, args.get_or("bandwidth", 8usize)?, nnz, seed),
        "arrow" => arrow_with_nnz(
            n,
            args.get_or("bandwidth", 8usize)?,
            args.get_or("dense-rows", 4usize)?,
            nnz,
            seed,
        ),
        other => return Err(format!("unknown recipe '{other}'")),
    };
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_matrix_market(BufWriter::new(file), &matrix).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} x {}, {} nnz, density {:.4}%)",
        out,
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.density() * 100.0
    );
    Ok(())
}

/// `chason solve <matrix.mtx>` — iterative solve with an accelerator (or
/// CPU) backend; the right-hand side is `A·1` so the exact solution is the
/// all-ones vector, giving a built-in correctness check.
pub fn solve(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    if matrix.rows() != matrix.cols() {
        return Err("solve requires a square system".to_string());
    }
    let ones = vec![1.0f32; matrix.cols()];
    let b = matrix.spmv(&ones);
    let options = CgOptions {
        max_iterations: args.get_or("max-iterations", 500usize)?,
        tolerance: args.get_or("tolerance", 1e-6f64)?,
    };
    let solver = args.get("solver").unwrap_or("jacobi").to_string();
    let sched = scheduler_config(args)?;
    let mut backend: Box<dyn SpmvBackend> = match args.get("engine").unwrap_or("chason") {
        "chason" => Box::new(EngineBackend::chason(ChasonEngine::new(
            AcceleratorConfig {
                sched,
                ..AcceleratorConfig::chason()
            },
        ))),
        "serpens" => Box::new(EngineBackend::serpens(SerpensEngine::new(
            AcceleratorConfig {
                sched,
                ..AcceleratorConfig::serpens()
            },
        ))),
        "cpu" => Box::new(CpuBackend::default()),
        other => return Err(format!("unknown engine '{other}'")),
    };
    let result = match solver.as_str() {
        "cg" => conjugate_gradient(backend.as_mut(), &matrix, &b, options),
        "jacobi" => jacobi(backend.as_mut(), &matrix, &b, options),
        other => return Err(format!("unknown solver '{other}' (cg|jacobi)")),
    }
    .map_err(|e| e.to_string())?;
    let max_err = result
        .solution
        .iter()
        .map(|&v| (v - 1.0).abs())
        .fold(0.0f32, f32::max);
    println!("solver            : {solver} on {}", backend.name());
    println!("iterations        : {}", result.iterations);
    println!("relative residual : {:.3e}", result.residual);
    println!("converged         : {}", result.converged);
    println!("max |x - 1|       : {max_err:.3e}");
    println!(
        "SpMV time         : {:.4} ms (simulated for engines)",
        result.spmv_seconds * 1e3
    );
    Ok(())
}

/// `chason export <matrix.mtx> <out.chsn>` — run CrHCS offline and write
/// the binary schedule artifact(s) the accelerator host would consume.
/// Matrices wider than one `W = 8192` window produce one artifact per
/// window, suffixed `.w<N>`.
pub fn export(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    let out = args
        .positional
        .get(1)
        .ok_or_else(|| "expected an output path".to_string())?;
    let config = scheduler_config(args)?;
    let windows = chason_core::window::partition_paper_windows(&matrix);
    let multi = windows.len() > 1;
    for w in &windows {
        let schedule = Crhcs::new().schedule(&w.matrix, &config);
        let path = if multi {
            format!("{out}.w{}", w.index)
        } else {
            out.clone()
        };
        let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        chason_core::export::write_schedule(BufWriter::new(file), &schedule)
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {path}: window {} (cols {}..{}), {} cycles, {:.1}% underutilization",
            w.index,
            w.col_start,
            w.col_end,
            schedule.stream_cycles(),
            schedule.underutilization() * 100.0
        );
    }
    Ok(())
}

/// `chason inspect <file.chsn>` — print a schedule artifact's header and
/// stall statistics.
pub fn inspect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| "expected an artifact path".to_string())?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let artifact = chason_core::export::read_schedule(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    println!("artifact          : {path}");
    println!(
        "geometry          : {} channels x {} PEs, D = {}, hops = {}",
        artifact.config.channels,
        artifact.config.pes_per_channel,
        artifact.config.dependency_distance,
        artifact.config.migration_hops
    );
    println!(
        "matrix            : {} x {}, {} nnz",
        artifact.rows, artifact.cols, artifact.nnz
    );
    println!("stream length     : {} cycles per channel", artifact.cycles);
    println!("stall words       : {}", artifact.stalls());
    println!(
        "underutilization  : {:.2}%",
        artifact.underutilization() * 100.0
    );
    Ok(())
}

/// `chason verify <matrix.mtx>` — schedule every column window and run the
/// `chason-verify` static checker over each, printing a `rustc`-style
/// report of **all** rule violations (S001–S006, P001, R001).
///
/// `--corrupt KIND` applies one targeted corruption from the mutation
/// library to window 0 before checking — a self-demonstration that the
/// analyzer catches that class of bug. Exits non-zero when any
/// error-severity diagnostic is found.
pub fn verify(args: &Args) -> Result<(), String> {
    let matrix = load_matrix(args)?;
    let config = scheduler_config(args)?;
    let name = args.get("scheduler").unwrap_or("crhcs").to_string();
    let scheduler: Box<dyn Scheduler> = match name.as_str() {
        "crhcs" => Box::new(Crhcs::new()),
        "pe-aware" => Box::new(PeAware::new()),
        "row-based" => Box::new(RowBased::new()),
        other => return Err(format!("unknown scheduler '{other}'")),
    };
    let corruption = match args.get("corrupt") {
        None => None,
        Some(kind) => Some(Corruption::from_name(kind).ok_or_else(|| {
            let known: Vec<&str> = Corruption::ALL.iter().map(|c| c.name()).collect();
            format!("unknown corruption '{kind}' (one of: {})", known.join(", "))
        })?),
    };
    let windows = chason_core::window::partition_paper_windows(&matrix);
    let mut combined = chason_verify::Report::new();
    for w in &windows {
        let mut schedule = scheduler.schedule(&w.matrix, &config);
        if w.index == 0 {
            if let Some(c) = corruption {
                if !c.apply(&mut schedule) {
                    return Err(format!(
                        "corruption '{}' found no site in window 0",
                        c.name()
                    ));
                }
                println!(
                    "applied corruption '{}' to window 0 (targets rule {})\n",
                    c.name(),
                    c.expected_rule()
                );
            }
        }
        combined.merge_window(
            chason_verify::verify_schedule(&schedule, Some(&w.matrix)),
            w.index,
        );
    }
    combined.sort();
    println!(
        "verified {} window(s) of {} under {} ({} channels x {} PEs)\n",
        windows.len(),
        args.positional.first().map_or("<matrix>", String::as_str),
        name,
        config.channels,
        config.pes_per_channel
    );
    println!("{combined}");
    if combined.has_errors() {
        Err(combined.summary())
    } else {
        Ok(())
    }
}

/// `chason conformance` — the differential cross-engine harness plus the
/// deterministic schedule fuzzer.
pub fn conformance(args: &Args) -> Result<(), String> {
    use chason_conformance::{fuzz, fuzz_deltas, CorpusSize, DeltaOptions, HarnessOptions};

    let corpus_name = args.get("corpus").unwrap_or("small");
    let size = CorpusSize::from_name(corpus_name)
        .ok_or_else(|| format!("unknown corpus '{corpus_name}' (small or extended)"))?;
    let mut cases = chason_conformance::corpus(size);
    if let Some(dir) = args.get("fixtures") {
        let extra = chason_conformance::load_fixtures(std::path::Path::new(dir))
            .map_err(|e| format!("cannot load fixtures from {dir}: {e}"))?;
        println!("loaded {} fixture(s) from {dir}", extra.len());
        cases.extend(extra);
    }

    let options = HarnessOptions::default();
    let report = chason_conformance::run_cases(&cases, &options);
    for v in &report.violations {
        println!("VIOLATION {v}");
    }
    println!("{}", report.summary());

    let iterations = args.get_or("fuzz", 40u64)?;
    let seed = args.get_or("seed", 1u64)?;
    let outcome = fuzz(seed, iterations);
    println!(
        "\nfuzz: {} iteration(s), seed {seed}, {} skipped (no site)\n",
        outcome.iterations, outcome.skipped
    );
    println!("{}", outcome.detection_table());
    if !outcome.escapes.is_empty() {
        if let Some(dir) = args.get("artifacts") {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            for e in &outcome.escapes {
                let path = dir.join(format!(
                    "escape-{}-{}.mtx",
                    e.iteration,
                    e.corruption.name()
                ));
                let file =
                    File::create(&path).map_err(|err| format!("cannot write {path:?}: {err}"))?;
                write_matrix_market(BufWriter::new(file), &e.source)
                    .map_err(|err| format!("cannot write {path:?}: {err}"))?;
                println!(
                    "escape artifact: {path:?} ({} on {}, {} channels x {} PEs)",
                    e.corruption.name(),
                    e.matrix,
                    e.config.channels,
                    e.config.pes_per_channel
                );
            }
        }
        return Err(format!(
            "{} fuzz escape(s): corruptions evaded both the static checker and every dynamic oracle",
            outcome.escapes.len()
        ));
    }
    if iterations >= 10 && !outcome.covered_all_corruptions() {
        return Err("fuzz run did not apply every corruption at least once".to_string());
    }

    // Delta-splice oracles: every spliced plan must be bit-identical to a
    // from-scratch plan of the updated matrix and replay to the reference.
    // The corpus pass runs under a toy geometry with a narrow window so
    // the small matrices span several windows and splices are genuinely
    // partial; `--deltas N` sizes the randomized delta fuzzer on top.
    let delta_iterations = args.get_or("deltas", 16u64)?;
    let delta_options = DeltaOptions {
        sched: SchedulerConfig::toy(4, 4, 6),
        window: Some(32),
        seed,
        ..DeltaOptions::default()
    };
    let delta_report = chason_conformance::run_delta_cases(&cases, &delta_options);
    for v in &delta_report.violations {
        println!("VIOLATION {v}");
    }
    println!("\n{}", delta_report.summary());

    let delta_outcome = fuzz_deltas(seed, delta_iterations);
    println!(
        "delta fuzz: {} iteration(s), seed {seed}, {} skipped (no valid delta)\n",
        delta_outcome.iterations, delta_outcome.skipped
    );
    println!("{}", delta_outcome.equivalence_table());
    if !delta_outcome.escapes.is_empty() {
        if let Some(dir) = args.get("artifacts") {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            for e in &delta_outcome.escapes {
                let path = dir.join(format!(
                    "delta-escape-{}-{}.mtx",
                    e.iteration,
                    e.kind.name()
                ));
                let file =
                    File::create(&path).map_err(|err| format!("cannot write {path:?}: {err}"))?;
                write_matrix_market(BufWriter::new(file), &e.source)
                    .map_err(|err| format!("cannot write {path:?}: {err}"))?;
                println!(
                    "delta escape artifact: {path:?} ({} on {}: {})",
                    e.kind.name(),
                    e.matrix,
                    e.detail
                );
            }
        }
        return Err(format!(
            "{} delta-splice escape(s): spliced plans diverged from scratch plans or replayed wrong",
            delta_outcome.escapes.len()
        ));
    }
    if delta_iterations >= 8 && !delta_outcome.covered_all_kinds() {
        return Err("delta fuzz run did not apply every delta kind at least once".to_string());
    }
    if !delta_report.is_clean() {
        return Err(delta_report.summary());
    }
    if !report.is_clean() {
        return Err(report.summary());
    }
    Ok(())
}

/// `chason profile <matrix.mtx>` — cycle-attribution profiler: per-unit
/// cycle table and stream-slot classification, Chasoň and Serpens side by
/// side.
///
/// `--trace FILE` writes both engines' deterministic window spans as
/// JSONL. `--assert-reclaim` exits non-zero unless Chasoň's residual
/// stall slots are at most Serpens's (the CrHCS reclaim guarantee CI
/// checks on migration-friendly matrices).
pub fn profile(args: &Args) -> Result<(), String> {
    use chason_sim::profile::{profile_planned, window_spans};
    use chason_telemetry::trace::to_jsonl;

    let matrix = load_matrix(args)?;
    let sched = scheduler_config(args)?;
    let x = vec![1.0f32; matrix.cols()];

    let chason_engine = ChasonEngine::new(AcceleratorConfig {
        sched,
        ..AcceleratorConfig::chason()
    });
    let serpens_engine = SerpensEngine::new(AcceleratorConfig {
        sched,
        ..AcceleratorConfig::serpens()
    });
    let chason_plan = chason_engine.plan(&matrix).map_err(|e| e.to_string())?;
    let serpens_plan = serpens_engine.plan(&matrix).map_err(|e| e.to_string())?;
    let chason = profile_planned(&chason_engine, &chason_plan, &x).map_err(|e| e.to_string())?;
    let serpens = profile_planned(&serpens_engine, &serpens_plan, &x).map_err(|e| e.to_string())?;
    let (c, s) = (&chason.attribution, &serpens.attribution);

    println!(
        "matrix: {} x {}, {} nnz, {} column window(s)\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        c.windows
    );
    println!("{:<22} {:>14} {:>14}", "unit", "serpens", "chason");
    for ((unit, chason_cycles), (_, serpens_cycles)) in c.unit_rows().iter().zip(s.unit_rows()) {
        println!("{unit:<22} {serpens_cycles:>14} {chason_cycles:>14}");
    }
    println!(
        "{:<22} {:>14} {:>14}",
        "total cycles", s.total_cycles, c.total_cycles
    );
    println!();
    println!("{:<22} {:>14} {:>14}", "stream slots", "serpens", "chason");
    println!(
        "{:<22} {:>14} {:>14}",
        "URAM_pvt fill", s.pvt_slots, c.pvt_slots
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "ScUG (migrated) fill", s.migrated_slots, c.migrated_slots
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "stall", s.stall_slots, c.stall_slots
    );
    println!(
        "{:<22} {:>13.1}% {:>13.1}%",
        "PE occupancy",
        s.occupancy() * 100.0,
        c.occupancy() * 100.0
    );
    let reclaimed = s.stall_slots.saturating_sub(c.stall_slots);
    println!(
        "\nCrHCS reclaimed {reclaimed} of {} Serpens stall slots ({:.1}%)",
        s.stall_slots,
        if s.stall_slots == 0 {
            0.0
        } else {
            reclaimed as f64 / s.stall_slots as f64 * 100.0
        }
    );

    if let Some(path) = args.get("trace") {
        let mut jsonl = to_jsonl(&window_spans(&serpens_plan, serpens_engine.config()));
        jsonl.push_str(&to_jsonl(&window_spans(
            &chason_plan,
            chason_engine.config(),
        )));
        std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if args.has_flag("assert-reclaim") && c.stall_slots > s.stall_slots {
        return Err(format!(
            "reclaim assertion failed: chason has {} stall slots, serpens {}",
            c.stall_slots, s.stall_slots
        ));
    }
    Ok(())
}

/// `chason catalog` — the Table 2 evaluation matrices.
pub fn catalog() -> Result<(), String> {
    println!(
        "{:<4} {:<26} {:<12} {:>9} {:>9}",
        "ID", "name", "collection", "NNZ", "dens%"
    );
    for spec in chason_sparse::datasets::table2() {
        println!(
            "{:<4} {:<26} {:<12} {:>9} {:>9.4}",
            spec.id, spec.name, spec.collection, spec.nnz, spec.density_pct
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn write_temp_matrix() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chason-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m{}.mtx", std::process::id()));
        let m = uniform_random(64, 64, 200, 3);
        let file = File::create(&path).unwrap();
        write_matrix_market(BufWriter::new(file), &m).unwrap();
        path
    }

    #[test]
    fn schedule_and_run_round_trip_a_real_file() {
        let path = write_temp_matrix();
        let line = format!("schedule {} --scheduler crhcs", path.display());
        schedule(&args(&line)).unwrap();
        let line = format!("run {} --engine serpens", path.display());
        run(&args(&line)).unwrap();
        let line = format!("compare {}", path.display());
        compare(&args(&line)).unwrap();
    }

    #[test]
    fn profile_runs_writes_a_trace_and_asserts_reclaim_on_skewed_input() {
        let dir = std::env::temp_dir().join("chason-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("profile{}.mtx", std::process::id()));
        // Skewed power-law input: the regime where CrHCS reclaims stalls.
        let m = power_law(256, 256, 2200, 2.2, 11);
        let file = File::create(&path).unwrap();
        write_matrix_market(BufWriter::new(file), &m).unwrap();
        let trace = dir.join(format!("profile{}.jsonl", std::process::id()));
        profile(&args(&format!(
            "profile {} --channels 4 --pes 4 --distance 6 --trace {} --assert-reclaim",
            path.display(),
            trace.display()
        )))
        .unwrap();
        // The trace is valid span JSONL covering both engines.
        let text = std::fs::read_to_string(&trace).unwrap();
        let spans = chason_telemetry::trace::parse_jsonl(&text).unwrap();
        assert!(!spans.is_empty());
        for engine in ["chason", "serpens"] {
            assert!(
                text.contains(&format!("\"engine\":\"{engine}\"")),
                "trace must carry {engine} spans"
            );
        }
    }

    #[test]
    fn generate_writes_a_readable_file() {
        let dir = std::env::temp_dir().join("chason-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("gen{}.mtx", std::process::id()));
        let line = format!(
            "generate arrow {} --n 500 --nnz 4000 --dense-rows 3 --seed 9",
            out.display()
        );
        generate(&args(&line)).unwrap();
        let m = read_matrix_market(File::open(&out).unwrap()).unwrap();
        assert_eq!(m.nnz(), 4000);
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(schedule(&args("schedule /nonexistent.mtx")).is_err());
        assert!(generate(&args("generate bogus /tmp/x.mtx --n 10 --nnz 5")).is_err());
        assert!(generate(&args("generate uniform /tmp/x.mtx")).is_err());
        let path = write_temp_matrix();
        assert!(run(&args(&format!("run {} --engine gpu", path.display()))).is_err());
        assert!(schedule(&args(&format!(
            "schedule {} --scheduler foo",
            path.display()
        )))
        .is_err());
        assert!(schedule(&args(&format!("schedule {} --pes 9", path.display()))).is_err());
    }

    #[test]
    fn catalog_prints() {
        catalog().unwrap();
    }

    #[test]
    fn verify_passes_on_honest_schedules() {
        let path = write_temp_matrix();
        verify(&args(&format!("verify {}", path.display()))).unwrap();
        verify(&args(&format!(
            "verify {} --scheduler pe-aware --channels 4 --pes 4",
            path.display()
        )))
        .unwrap();
    }

    #[test]
    fn verify_reports_injected_corruptions() {
        let path = write_temp_matrix();
        let err = verify(&args(&format!("verify {} --corrupt drop", path.display()))).unwrap_err();
        assert!(err.contains("S002"), "{err}");
        let err = verify(&args(&format!(
            "verify {} --corrupt tag-flip --scheduler pe-aware",
            path.display()
        )))
        .unwrap_err();
        assert!(err.contains("S005"), "{err}");
    }

    #[test]
    fn verify_rejects_bad_flags() {
        let path = write_temp_matrix();
        let err = verify(&args(&format!("verify {} --corrupt bogus", path.display()))).unwrap_err();
        assert!(err.contains("unknown corruption"), "{err}");
        assert!(err.contains("zero-value"), "{err}");
        assert!(verify(&args(&format!("verify {} --scheduler foo", path.display()))).is_err());
    }

    #[test]
    fn conformance_subcommand_is_clean_on_the_small_corpus() {
        conformance(&args("conformance --corpus small --fuzz 40 --seed 3")).unwrap();
    }

    #[test]
    fn conformance_rejects_unknown_corpus_names() {
        let err = conformance(&args("conformance --corpus bogus")).unwrap_err();
        assert!(err.contains("unknown corpus"), "{err}");
    }

    #[test]
    fn export_and_inspect_round_trip() {
        let path = write_temp_matrix();
        let dir = std::env::temp_dir().join("chason-cli-tests");
        let out = dir.join(format!("sched{}.chsn", std::process::id()));
        export(&args(&format!(
            "export {} {}",
            path.display(),
            out.display()
        )))
        .unwrap();
        inspect(&args(&format!("inspect {}", out.display()))).unwrap();
        assert!(inspect(&args(&format!("inspect {}", path.display()))).is_err());
    }

    #[test]
    fn solve_subcommand_runs_both_solvers() {
        // A diagonally dominant square system round-trips through the CLI.
        let dir = std::env::temp_dir().join("chason-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("solve{}.mtx", std::process::id()));
        let base = chason_sparse::generators::banded_with_nnz(96, 2, 300, 4);
        let mut t: Vec<(usize, usize, f32)> =
            base.iter().filter(|&&(r, c, _)| r != c).copied().collect();
        let mut row_sum = vec![0.0f32; 96];
        for &(r, _, v) in &t {
            row_sum[r] += v.abs();
        }
        for (i, s) in row_sum.iter().enumerate() {
            t.push((i, i, s + 1.0));
        }
        let m = CooMatrix::from_triplets(96, 96, t).unwrap();
        let file = File::create(&path).unwrap();
        write_matrix_market(BufWriter::new(file), &m).unwrap();
        solve(&args(&format!(
            "solve {} --solver jacobi --engine chason",
            path.display()
        )))
        .unwrap();
        solve(&args(&format!(
            "solve {} --solver cg --engine cpu",
            path.display()
        )))
        .unwrap();
        assert!(solve(&args(&format!("solve {} --solver qr", path.display()))).is_err());
    }
}
