//! `chason` — command-line front end for the Chasoň sparse-acceleration
//! simulator.
//!
//! ```text
//! chason schedule <matrix.mtx> [--scheduler crhcs|pe-aware|row-based]
//!                              [--channels 16] [--pes 8] [--distance 10]
//!                              [--hops 1]
//! chason run <matrix.mtx>      [--engine chason|serpens] [--iterations 1]
//! chason compare <matrix.mtx>  # both engines side by side
//! chason generate <recipe> <out.mtx> --n 4096 --nnz 60000 [--alpha 1.7]
//!                              [--bandwidth 8] [--dense-rows 4] [--seed 1]
//! chason catalog               # the Table 2 evaluation matrices
//! ```

mod args;
mod bench;
mod commands;
mod service;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
chason — Chasoň sparse-acceleration simulator

USAGE:
  chason schedule <matrix.mtx> [--scheduler crhcs|pe-aware|row-based]
                               [--channels N] [--pes N] [--distance D] [--hops H] [--insights]
  chason run <matrix.mtx>      [--engine chason|serpens]
  chason compare <matrix.mtx>
  chason profile <matrix.mtx>  [--trace FILE] [--assert-reclaim]
                               # per-unit cycle attribution, Chason vs Serpens
  chason solve <matrix.mtx>      [--solver cg|jacobi] [--engine chason|serpens|cpu]
                               [--max-iterations N] [--tolerance T]
  chason export <matrix.mtx> <out.chsn>   # offline CrHCS -> binary artifact
  chason inspect <file.chsn>
  chason verify <matrix.mtx>   [--scheduler crhcs|pe-aware|row-based]
                               [--channels N] [--pes N] [--distance D] [--hops H]
                               [--corrupt KIND]   # static rule checker (S001-S006,
                               P001, R001); exits non-zero on violations
  chason conformance           [--corpus small|extended] [--fuzz N] [--deltas N]
                               [--seed S] [--fixtures DIR] [--artifacts DIR]
                               # differential cross-engine harness, schedule
                               fuzzer, and delta-splice oracles (spliced plans
                               must equal from-scratch plans); exits non-zero
                               on violations or escapes
  chason generate <recipe> <out.mtx> --n N --nnz NNZ
                               [--alpha A] [--bandwidth W] [--dense-rows D] [--seed S]
                               (recipes: uniform, powerlaw, banded, arrow)
  chason catalog
  chason serve                 [--addr HOST:PORT] [--workers N] [--queue N]
                               [--plan-cache N] [--matrix-cache N] [--batch-max N]
                               [--retry-after-ms MS] [--channels N] [--pes N]
                               [--net async|threads]
                               # CHSP daemon; runs until a Shutdown request;
                               --net async (default) serves every connection
                               from one readiness-driven event loop
  chason route                 --shards HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
                               [--workers N] [--queue N] [--matrix-cache N]
                               [--retry-attempts N] [--health-interval-ms MS]
                               [--shutdown-shards] [--net async|threads]
                               # scatter-gather CHSP frontend over N serve shards;
                               --shutdown-shards forwards a wire Shutdown to
                               every backend before draining
  chason client <op>           stats | metrics | load <m.mtx> | spmv <m.mtx>
                               | solve <m.mtx> | plan <m.mtx> [--out FILE]
                               | update <m.mtx> [--insert \"r,c,v[;...]\"]
                                 [--revalue \"r,c,v[;...]\"] [--delete \"r,c[;...]\"]
                               | shutdown
                               [--addr HOST:PORT] [--engine E] [--solver S]
                               [--retries N]   # back off and resend on Busy
  chason loadgen               [--addr HOST:PORT] [--connections N] [--requests M]
                               [--seed S] [--format text|json] [--report FILE]
                               [--require-hits] [--churn PCT] [--router]
                               [--pipeline DEPTH] [--open-loop RPS]
                               # deterministic load generator; closed-loop by
                               default, --pipeline keeps DEPTH requests in
                               flight per connection, --open-loop sends on a
                               fixed aggregate schedule instead of waiting;
                               --churn sends that percentage as matrix deltas;
                               --router targets a chason route frontend and
                               reports per-shard balance + gather percentiles
  chason bench                 [--profile smoke|full] [--name NAME] [--out DIR]
                               [--filter SUBSTR] [--baseline FILE] [--current FILE]
                               [--threshold PCT]
                               # wall-clock benchmarks -> BENCH_<name>.json;
                               with --baseline, gates on regressions

Matrices are MatrixMarket coordinate files (real/integer/pattern,
general/symmetric).";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(_) => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "schedule" => commands::schedule(&args),
        "run" => commands::run(&args),
        "compare" => commands::compare(&args),
        "profile" => commands::profile(&args),
        "solve" => commands::solve(&args),
        "export" => commands::export(&args),
        "inspect" => commands::inspect(&args),
        "verify" => commands::verify(&args),
        "conformance" => commands::conformance(&args),
        "generate" => commands::generate(&args),
        "catalog" => commands::catalog(),
        "bench" => bench::bench(&args),
        "serve" => service::serve(&args),
        "route" => service::route(&args),
        "client" => service::client(&args),
        "loadgen" => service::run_loadgen(&args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
