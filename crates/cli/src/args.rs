//! Minimal argument parser (flag/value pairs after a subcommand).
//!
//! Kept dependency-free on purpose: the workspace's sanctioned external
//! crates do not include an option parser, and the CLI's surface is small.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--flag value` / `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (`--key` alone stores an empty string).
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when no subcommand is present.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                parsed.options.insert(key.to_string(), value);
            } else if parsed.command.is_empty() {
                parsed.command = arg;
            } else {
                parsed.positional.push(arg);
            }
        }
        if parsed.command.is_empty() {
            return Err("missing subcommand".to_string());
        }
        Ok(parsed)
    }

    /// Returns an option value, if present and non-empty.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .filter(|v| !v.is_empty())
    }

    /// Returns an option parsed to `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_positionals_and_options() {
        let a = parse("run matrix.mtx --engine chason --channels 16 --verbose");
        assert_eq!(a.command, "run");
        assert_eq!(a.positional, vec!["matrix.mtx"]);
        assert_eq!(a.get("engine"), Some("chason"));
        assert_eq!(a.get_or("channels", 0usize).unwrap(), 16);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get("verbose"), None, "bare flags have no value");
    }

    #[test]
    fn defaults_and_parse_errors() {
        let a = parse("schedule m.mtx --pes abc");
        assert_eq!(a.get_or("channels", 16usize).unwrap(), 16);
        assert!(a.get_or("pes", 8usize).is_err());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(Args::parse(vec!["--flag".to_string()]).is_err());
        assert!(Args::parse(Vec::new()).is_err());
    }

    #[test]
    fn flag_followed_by_flag_keeps_both() {
        let a = parse("gen --quiet --seed 7");
        assert!(a.has_flag("quiet"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
    }
}
