//! The readiness-driven connection front end.
//!
//! One accept thread blocks in `accept` and hands sockets to one event
//! loop thread through a mutex-protected inbox plus a coalesced poller
//! notification (the wakeup/registration handshake modeled by
//! `chason-race-models`). The loop owns every connection: nonblocking
//! socket, [`FrameAssembler`] read state, a bounded write queue, the
//! pipelining reorder buffer, and an idle deadline on the shared
//! [`TimerWheel`].
//!
//! # Pipelining and reply order
//!
//! CHSP frames carry no sequence field — a client matches replies to
//! requests by order. The loop therefore assigns each inbound frame a
//! per-connection sequence number and writes replies in exactly that
//! order, buffering out-of-order completions from the worker pool until
//! the gap closes. Inline replies (`Stats` and friends) go through the
//! same buffer: a `Stats` pipelined behind a slow `Solve` waits for the
//! solve's reply, just as it would against the thread-per-connection
//! listener.
//!
//! # Backpressure
//!
//! Two per-connection limits stop the loop reading from a connection:
//! more than [`NetConfig::max_inflight`] requests awaiting completion, or
//! more than [`NetConfig::write_buffer_limit`] unsent reply bytes (a peer
//! that stops draining its socket). Paused connections keep their
//! registration but drop read interest; completions and write progress
//! un-pause them. The worker queue's own shedding (`Busy`) is unchanged
//! and sits behind this layer.
//!
//! # Drain
//!
//! [`LoopHandle::begin_drain`] stops the accept thread, lets in-flight
//! requests complete and their replies flush, closes connections as they
//! go idle, and ends the loop when none remain — the same
//! accepted-work-is-always-answered contract as the threaded listener.

use crate::assembler::FrameAssembler;
use crate::metrics::NetMetrics;
use crate::wheel::{Expired, TimerWheel};
use chason_telemetry::metrics::Registry;
use chason_telemetry::trace::SpanEvent;
use polling::{Event, Poller};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Wheel granularity; also how often the loop re-checks drain progress.
/// Matches the threaded listener's `READ_TICK` so idle and shutdown
/// latencies are comparable across `--net` modes.
const TICK: Duration = Duration::from_millis(100);

/// Wheel size: covers deadlines up to `TICK * WHEEL_SLOTS` (51.2 s)
/// without wrap-induced spurious firings.
const WHEEL_SLOTS: usize = 512;

/// Per-`read` scratch buffer size, matching `FrameReader`'s chunking.
const READ_CHUNK: usize = 16 * 1024;

/// How the application responded to one reassembled frame.
#[derive(Debug)]
pub enum FrameOutcome {
    /// Reply immediately with this encoded payload; keep the connection.
    Reply(Vec<u8>),
    /// Reply with this payload, then close once every reply up to and
    /// including this one has flushed (fatal protocol errors, drain
    /// refusals, `Shutdown` acknowledgements).
    ReplyThenClose(Vec<u8>),
    /// The frame was accepted for asynchronous completion; the reply
    /// arrives later through [`LoopHandle::complete`] under the same
    /// `(conn, seq)`.
    Pending,
    /// Close without replying to this frame.
    Close,
}

/// The application half of the loop: decodes frames, answers inline or
/// hands work to its own pool. Invoked only on the loop thread.
pub trait Service: Send + 'static {
    /// One reassembled frame payload. `seq` is the per-connection request
    /// sequence number the reply must be completed under.
    fn on_frame(&mut self, conn: u64, seq: u64, payload: Vec<u8>) -> FrameOutcome;

    /// A frame header exceeded the configured cap — the stream cannot be
    /// resynchronized. An encoded final reply (sent before closing), or
    /// `None` to hang up silently.
    fn on_oversized(&mut self, conn: u64, len: u64, cap: u64) -> Option<Vec<u8>>;

    /// The connection is gone (any cause). In-flight completions for it
    /// are dropped silently.
    fn on_close(&mut self, conn: u64) {
        let _ = conn;
    }
}

/// Tunable knobs of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Reap a connection this long after its last completed frame
    /// (either direction) or write progress, unless requests are still
    /// in flight.
    pub idle_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Most requests one connection may have awaiting completion before
    /// the loop stops reading from it.
    pub max_inflight: usize,
    /// Most unsent reply bytes one connection may buffer before the loop
    /// stops reading from it.
    pub write_buffer_limit: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            idle_timeout: Duration::from_secs(30),
            max_frame_len: 64 * 1024 * 1024,
            max_inflight: 128,
            write_buffer_limit: 1 << 20,
        }
    }
}

/// An asynchronous reply or control message routed to the loop.
struct Completion {
    conn: u64,
    seq: u64,
    payload: Option<Vec<u8>>,
    close: bool,
}

struct HandleShared {
    poller: Arc<Poller>,
    /// Wakeup coalescing: producers notify only on the false→true edge;
    /// the loop clears the flag *before* draining the inbox and
    /// completion queue, so an enqueue that races the drain re-notifies.
    notified: AtomicBool,
    draining: AtomicBool,
    inbox: Mutex<Vec<TcpStream>>,
    local_addr: SocketAddr,
}

/// A clonable handle into the event loop: asynchronous reply completion
/// and drain control. Safe to use from any thread.
pub struct LoopHandle {
    tx: mpsc::Sender<Completion>,
    shared: Arc<HandleShared>,
}

impl Clone for LoopHandle {
    fn clone(&self) -> Self {
        LoopHandle {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle").finish_non_exhaustive()
    }
}

impl LoopHandle {
    /// Completes a [`FrameOutcome::Pending`] frame: `payload` is the
    /// encoded reply, written once every earlier reply of the connection
    /// has been. Completions for closed connections are dropped.
    pub fn complete(&self, conn: u64, seq: u64, payload: Vec<u8>) {
        self.send(Completion {
            conn,
            seq,
            payload: Some(payload),
            close: false,
        });
    }

    /// Like [`complete`](Self::complete), but closes the connection once
    /// this reply has flushed.
    pub fn complete_and_close(&self, conn: u64, seq: u64, payload: Vec<u8>) {
        self.send(Completion {
            conn,
            seq,
            payload: Some(payload),
            close: true,
        });
    }

    /// Starts a graceful drain: stop accepting, answer everything already
    /// accepted, close connections as they go idle, end the loop when
    /// none remain. Idempotent.
    pub fn begin_drain(&self) {
        if !self.shared.draining.swap(true, Ordering::SeqCst) {
            // Nudge the accept thread out of `accept` so it can observe
            // the flag and exit.
            let _ = TcpStream::connect(self.shared.local_addr);
        }
        self.wake();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    fn send(&self, completion: Completion) {
        // A send after the loop exited means the connection is long gone;
        // dropping the reply mirrors the threaded path's disconnected
        // reply channel.
        let _ = self.tx.send(completion);
        self.wake();
    }

    /// Edge-triggered wakeup: first caller since the loop last cleared
    /// the flag pays the `notify` syscall, the rest coalesce.
    pub(crate) fn wake(&self) {
        if !self.shared.notified.swap(true, Ordering::SeqCst) {
            let _ = self.shared.poller.notify();
        }
    }

    pub(crate) fn push_accepted(&self, stream: TcpStream) {
        self.shared
            .inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stream);
        self.wake();
    }
}

/// A running readiness-loop front end: one accept thread, one loop
/// thread, shared with the application through a [`Service`] and a
/// [`LoopHandle`].
pub struct NetServer {
    local_addr: SocketAddr,
    handle: LoopHandle,
    accept_thread: Option<JoinHandle<()>>,
    loop_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Takes ownership of a bound listener and starts the accept and loop
    /// threads. `make_service` receives the [`LoopHandle`] the service
    /// needs for asynchronous completions.
    ///
    /// `net_*` metrics are registered into `registry` so they surface
    /// through the embedding server's exposition endpoint.
    ///
    /// # Errors
    ///
    /// Poller or thread-spawn failures.
    pub fn start<S, F>(
        listener: TcpListener,
        config: NetConfig,
        registry: &Registry,
        make_service: F,
    ) -> io::Result<NetServer>
    where
        S: Service,
        F: FnOnce(LoopHandle) -> S,
    {
        let local_addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        let (tx, rx) = mpsc::channel::<Completion>();
        let shared = Arc::new(HandleShared {
            poller: Arc::clone(&poller),
            notified: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inbox: Mutex::new(Vec::new()),
            local_addr,
        });
        let handle = LoopHandle { tx, shared };
        let metrics = NetMetrics::register(registry);
        let service = make_service(handle.clone());

        let accept_handle = handle.clone();
        let accept_thread = thread::Builder::new()
            .name("chason-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_handle))?;

        let loop_handle = handle.clone();
        let loop_thread = thread::Builder::new()
            .name("chason-net-loop".to_string())
            .spawn(move || {
                let mut event_loop = EventLoop {
                    poller,
                    handle: loop_handle,
                    completions: rx,
                    config,
                    service,
                    metrics,
                    conns: HashMap::new(),
                    wheel: TimerWheel::new(TICK, WHEEL_SLOTS),
                    next_id: 0,
                };
                event_loop.run();
            })?;

        Ok(NetServer {
            local_addr,
            handle,
            accept_thread: Some(accept_thread),
            loop_thread: Some(loop_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for completions and drain control.
    pub fn handle(&self) -> LoopHandle {
        self.handle.clone()
    }

    /// Starts a graceful drain (see [`LoopHandle::begin_drain`]).
    pub fn shutdown(&self) {
        self.handle.begin_drain();
    }

    /// Blocks until the accept and loop threads exit. Call
    /// [`shutdown`](Self::shutdown) first (or have a wire request trigger
    /// [`LoopHandle::begin_drain`]) or this blocks forever.
    pub fn join(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        if let Some(lp) = self.loop_thread.take() {
            let _ = lp.join();
        }
    }
}

/// Blocking accept: hand every socket to the loop through the inbox, stop
/// at the drain flag (checked after each accept; `begin_drain` nudges a
/// throwaway connection to guarantee progress).
fn accept_loop(listener: &TcpListener, handle: &LoopHandle) {
    for stream in listener.incoming() {
        if handle.is_draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        handle.push_accepted(stream);
    }
}

/// A queued reply awaiting its turn in the connection's write order.
struct PendingReply {
    /// Encoded reply payload; `None` writes nothing but still advances
    /// the sequence (a `Close` outcome).
    payload: Option<Vec<u8>>,
    close: bool,
}

struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    /// Next sequence number to assign to an inbound frame.
    next_seq: u64,
    /// Next sequence number whose reply may be written to the socket.
    next_write: u64,
    /// Replies completed out of order, waiting for the gap to close.
    pending: BTreeMap<u64, PendingReply>,
    /// Frames accepted as `Pending` whose completion has not arrived.
    inflight: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    peer_eof: bool,
    /// The stream can no longer be read (oversized frame, or a
    /// close-marked reply was sequenced).
    read_closed: bool,
    /// Close once `wbuf` drains.
    close_after_flush: bool,
    idle_deadline: Instant,
    paused: bool,
    /// Interest currently armed in the poller, if any (oneshot delivery
    /// disarms).
    armed: Option<(bool, bool)>,
    opened_at: u64,
    frames_in: u64,
    frames_out: u64,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn wants_read(&self) -> bool {
        !(self.paused || self.read_closed || self.peer_eof)
    }

    fn wants_write(&self) -> bool {
        self.unsent() > 0
    }
}

struct EventLoop<S: Service> {
    poller: Arc<Poller>,
    handle: LoopHandle,
    completions: mpsc::Receiver<Completion>,
    config: NetConfig,
    service: S,
    metrics: NetMetrics,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_id: u64,
}

impl<S: Service> EventLoop<S> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut expired: Vec<Expired> = Vec::new();
        loop {
            let timeout = self.wheel.next_wakeup(Instant::now());
            events.clear();
            let delivered = match self.poller.wait(&mut events, Some(timeout)) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                // A broken poller is unrecoverable; counting the exit
                // beats spinning on the error.
                Err(_) => {
                    self.metrics.loop_errors.add(1);
                    return;
                }
            };
            self.metrics.wakeups.add(1);
            if delivered > 0 {
                self.metrics.readiness_batch.record(delivered as u64);
            }
            // Clear the wakeup flag BEFORE draining the inbox and the
            // completion queue: a producer that enqueues after this store
            // observes `false` and re-notifies, so nothing enqueued
            // during the drain below can be stranded until the next
            // timeout tick. (The drain-then-clear order is the lost-
            // wakeup mutant in chason-race-models.)
            self.handle.shared.notified.store(false, Ordering::SeqCst);

            for &event in &events {
                self.dispatch_event(event);
            }
            self.register_accepted();
            self.route_completions();

            let now = Instant::now();
            expired.clear();
            self.wheel.expire(now, &mut expired);
            for entry in &expired {
                self.check_idle(entry.id, now);
            }

            if self.handle.is_draining() {
                self.sweep_draining();
                if self.conns.is_empty() {
                    // Every accepted connection has been answered and
                    // closed, the accept thread has stopped feeding the
                    // inbox: the drain is complete.
                    return;
                }
            }
            self.rearm_all_dirty();
        }
    }

    // ------------------------------------------------------------------
    // Readiness dispatch
    // ------------------------------------------------------------------

    fn dispatch_event(&mut self, event: Event) {
        let id = event.key as u64;
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // closed earlier in this iteration
        };
        conn.armed = None; // oneshot delivery disarmed it
        if event.readable && self.pump_read(id).is_err() {
            self.close(id);
            return;
        }
        if event.writable && self.flush(id).is_err() {
            self.close(id);
            return;
        }
        self.close_if_done(id);
    }

    /// Reads until the socket would block, feeding the assembler and
    /// dispatching every completed frame. Errors mean "close now".
    fn pump_read(&mut self, id: u64) -> Result<(), ()> {
        let mut chunk = [0u8; READ_CHUNK];
        let mut frames: Vec<Vec<u8>> = Vec::new();
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return Ok(());
            };
            if !conn.wants_read() {
                return Ok(());
            }
            let n = match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    if conn.assembler.mid_frame() {
                        // Mid-frame disconnect: nothing more can be
                        // parsed, and any reply would race the reset.
                        return Err(());
                    }
                    return Ok(());
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            };
            frames.clear();
            let fed = conn.assembler.feed(&chunk[..n], &mut frames);
            for frame in frames.drain(..) {
                self.dispatch_frame(id, frame);
            }
            if let Err(over) = fed {
                self.handle_oversized(id, over.len, over.cap);
                return Ok(());
            }
            if n < chunk.len() {
                // Short read: the socket is drained. (Interest is
                // level-style on re-arm, so a race with more data is
                // only deferred, not lost.)
                return Ok(());
            }
        }
    }

    fn dispatch_frame(&mut self, id: u64, payload: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.read_closed {
            return; // a close-marked reply was already sequenced
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.frames_in += 1;
        conn.idle_deadline = Instant::now() + self.config.idle_timeout;
        self.metrics.frames_in.add(1);
        match self.service.on_frame(id, seq, payload) {
            FrameOutcome::Reply(reply) => self.sequence(id, seq, Some(reply), false),
            FrameOutcome::ReplyThenClose(reply) => self.sequence(id, seq, Some(reply), true),
            FrameOutcome::Pending => {
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.inflight += 1;
                    self.update_pause(id);
                }
            }
            FrameOutcome::Close => self.sequence(id, seq, None, true),
        }
    }

    fn handle_oversized(&mut self, id: u64, len: u64, cap: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.read_closed = true;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match self.service.on_oversized(id, len, cap) {
            Some(reply) => self.sequence(id, seq, Some(reply), true),
            None => self.sequence(id, seq, None, true),
        }
    }

    // ------------------------------------------------------------------
    // Reply sequencing and the write side
    // ------------------------------------------------------------------

    /// Buffers one reply under its sequence number, then moves every
    /// now-contiguous reply into the write buffer and flushes
    /// opportunistically.
    fn sequence(&mut self, id: u64, seq: u64, payload: Option<Vec<u8>>, close: bool) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if seq < conn.next_write {
            return; // duplicate completion; already written
        }
        conn.pending.insert(seq, PendingReply { payload, close });
        while let Some(reply) = conn.pending.remove(&conn.next_write) {
            conn.next_write += 1;
            if let Some(bytes) = reply.payload {
                conn.wbuf
                    .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                conn.wbuf.extend_from_slice(&bytes);
                conn.frames_out += 1;
                self.metrics.frames_out.add(1);
            }
            if reply.close {
                // Later pipelined frames are dropped, exactly as if the
                // peer had sent them after the threaded listener hung up.
                conn.close_after_flush = true;
                conn.read_closed = true;
                conn.pending.clear();
                break;
            }
        }
        self.metrics
            .write_queue_depth_hwm
            .observe_max(conn.unsent() as u64);
        if self.flush(id).is_err() {
            self.close(id);
            return;
        }
        self.update_pause(id);
        self.close_if_done(id);
    }

    /// Writes buffered bytes until the socket would block. Errors mean
    /// "close now".
    fn flush(&mut self, id: u64) -> Result<(), ()> {
        let Some(conn) = self.conns.get_mut(&id) else {
            return Ok(());
        };
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    conn.wpos += n;
                    // Write progress counts as activity: a peer slowly
                    // draining a large reply is alive, not idle.
                    conn.idle_deadline = Instant::now() + self.config.idle_timeout;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        } else if conn.wpos > READ_CHUNK {
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
        self.update_pause(id);
        Ok(())
    }

    fn update_pause(&mut self, id: u64) {
        let limit_inflight = self.config.max_inflight.max(1);
        let limit_bytes = self.config.write_buffer_limit.max(1);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let should_pause = conn.inflight >= limit_inflight || conn.unsent() >= limit_bytes;
        if should_pause && !conn.paused {
            self.metrics.read_pauses.add(1);
        }
        conn.paused = should_pause;
    }

    // ------------------------------------------------------------------
    // Registration, completions, timers, drain
    // ------------------------------------------------------------------

    fn register_accepted(&mut self) {
        let streams: Vec<TcpStream> = {
            let mut inbox = self
                .handle
                .shared
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *inbox)
        };
        let draining = self.handle.is_draining();
        for stream in streams {
            if draining {
                continue; // mirror the threaded listener: drop raced accepts
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            if self
                .poller
                .add(&stream, Event::readable(id as usize))
                .is_err()
            {
                continue;
            }
            let now = Instant::now();
            let deadline = now + self.config.idle_timeout;
            self.wheel.schedule(id, deadline);
            self.conns.insert(
                id,
                Conn {
                    stream,
                    assembler: FrameAssembler::new(self.config.max_frame_len),
                    next_seq: 0,
                    next_write: 0,
                    pending: BTreeMap::new(),
                    inflight: 0,
                    wbuf: Vec::new(),
                    wpos: 0,
                    peer_eof: false,
                    read_closed: false,
                    close_after_flush: false,
                    idle_deadline: deadline,
                    paused: false,
                    armed: Some((true, false)),
                    opened_at: chason_telemetry::global().clock().now(),
                    frames_in: 0,
                    frames_out: 0,
                },
            );
            self.metrics.accepted.add(1);
            self.metrics.connections_open.set(self.conns.len() as u64);
            self.metrics
                .connections_hwm
                .observe_max(self.conns.len() as u64);
        }
    }

    fn route_completions(&mut self) {
        while let Ok(completion) = self.completions.try_recv() {
            let Some(conn) = self.conns.get_mut(&completion.conn) else {
                continue; // connection died while the worker ran
            };
            if completion.seq >= conn.next_seq {
                continue; // stale id reuse guard (ids are unique, but stay safe)
            }
            conn.inflight = conn.inflight.saturating_sub(1);
            // A completed frame resets the idle clock in both
            // directions — the fix the threaded path mirrors.
            conn.idle_deadline = Instant::now() + self.config.idle_timeout;
            self.sequence(
                completion.conn,
                completion.seq,
                completion.payload,
                completion.close,
            );
            self.update_pause(completion.conn);
        }
    }

    fn check_idle(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if now >= conn.idle_deadline {
            if conn.inflight == 0 {
                self.metrics.idle_reaped.add(1);
                self.close(id);
                return;
            }
            // Requests in flight: not idle, just slow. Check again in one
            // timeout's time; the completion will reset the deadline.
            let deadline = now + self.config.idle_timeout;
            conn.idle_deadline = deadline;
            self.wheel.schedule(id, deadline);
        } else {
            let deadline = conn.idle_deadline;
            self.wheel.schedule(id, deadline);
        }
    }

    fn sweep_draining(&mut self) {
        let closable: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.inflight == 0
                    && c.unsent() == 0
                    && c.pending.is_empty()
                    && !c.assembler.mid_frame()
            })
            .map(|(&id, _)| id)
            .collect();
        for id in closable {
            self.close(id);
        }
    }

    fn close_if_done(&mut self, id: u64) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        let flushed = conn.unsent() == 0;
        let quiesced = conn.inflight == 0 && conn.pending.is_empty();
        if (conn.close_after_flush && flushed && quiesced)
            || (conn.peer_eof && flushed && quiesced && !conn.assembler.mid_frame())
        {
            self.close(id);
        }
    }

    fn close(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        let _ = self.poller.delete(&conn.stream);
        self.service.on_close(id);
        self.metrics.closed.add(1);
        self.metrics.connections_open.set(self.conns.len() as u64);
        let telemetry = chason_telemetry::global();
        telemetry.recorder().record(
            SpanEvent::new("net.connection", conn.opened_at, telemetry.clock().now())
                .attr("conn", id)
                .attr("frames_in", conn.frames_in)
                .attr("frames_out", conn.frames_out),
        );
    }

    /// Re-arms every connection whose armed interest no longer matches
    /// its desired interest (oneshot delivery, pause transitions, new
    /// write-buffer content).
    fn rearm_all_dirty(&mut self) {
        let mut broken: Vec<u64> = Vec::new();
        for (&id, conn) in &mut self.conns {
            let want = (conn.wants_read(), conn.wants_write());
            if conn.armed == Some(want) {
                continue;
            }
            let interest = Event {
                key: id as usize,
                readable: want.0,
                writable: want.1,
            };
            if self.poller.modify(&conn.stream, interest).is_err() {
                broken.push(id);
            } else {
                conn.armed = Some(want);
            }
        }
        for id in broken {
            self.close(id);
        }
    }
}
