//! chason-net: a readiness-driven connection layer for CHSP servers.
//!
//! The thread-per-connection front ends in `chason-serve` and
//! `chason-router` burn one OS thread (stack, scheduler slot, context
//! switches) per idle connection. This crate replaces that edge with two
//! threads total — one blocking accept thread and one event loop — while
//! keeping the worker pools, shedding, batching, and drain semantics of
//! the embedding server untouched and byte-identical at the wire.
//!
//! Layers, bottom up:
//!
//! - [`polling`] (vendored shim): portable oneshot readiness over
//!   epoll/kqueue/poll(2).
//! - [`assembler::FrameAssembler`]: incremental CHSP frame reassembly
//!   across arbitrary byte splits.
//! - [`wheel::TimerWheel`]: hashed idle-deadline wheel, O(1) reschedule.
//! - [`server::NetServer`]: the loop itself — registration handshake,
//!   reply sequencing for pipelined requests, write backpressure, drain.
//!
//! An embedding server implements [`server::Service`] (decode a frame,
//! answer inline or hand to a pool and [`server::LoopHandle::complete`]
//! later) and chooses the front end per [`NetMode`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod metrics;
pub mod server;
pub mod wheel;

pub use assembler::{FrameAssembler, FrameTooLarge};
pub use metrics::NetMetrics;
pub use server::{FrameOutcome, LoopHandle, NetConfig, NetServer, Service};
pub use wheel::TimerWheel;

/// Which connection front end a server runs (`--net async|threads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetMode {
    /// The readiness loop in this crate: two OS threads for any number of
    /// connections. The default.
    #[default]
    Async,
    /// The original thread-per-connection edge.
    Threads,
}

impl NetMode {
    /// Parses the `--net` flag value.
    ///
    /// # Errors
    ///
    /// Anything other than `async` or `threads`.
    pub fn parse(s: &str) -> Result<NetMode, String> {
        match s {
            "async" => Ok(NetMode::Async),
            "threads" => Ok(NetMode::Threads),
            other => Err(format!("unknown net mode `{other}` (use async|threads)")),
        }
    }
}

impl std::fmt::Display for NetMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetMode::Async => f.write_str("async"),
            NetMode::Threads => f.write_str("threads"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_mode_parses_and_defaults_to_async() {
        assert_eq!(NetMode::default(), NetMode::Async);
        assert_eq!(NetMode::parse("async").unwrap(), NetMode::Async);
        assert_eq!(NetMode::parse("threads").unwrap(), NetMode::Threads);
        assert!(NetMode::parse("epoll").is_err());
        assert_eq!(NetMode::Async.to_string(), "async");
        assert_eq!(NetMode::Threads.to_string(), "threads");
    }
}
