//! Byte-fed CHSP frame reassembly.
//!
//! The readiness loop hands a connection whatever bytes the socket had —
//! half a header, three frames and a fragment, one byte at a time — and
//! [`FrameAssembler`] turns that stream back into whole frame payloads.
//! It is the nonblocking twin of the serve crate's `FrameReader`: the same
//! little-endian `u32` length prefix, the same cap enforcement before any
//! payload allocation, the same bounded preallocation so a hostile header
//! cannot reserve gigabytes.

/// Frame payloads never preallocate more than this many bytes up front,
/// however large the (validated) declared length is; the buffer grows as
/// real bytes arrive.
const PREALLOC_LIMIT: usize = 1 << 20;

/// Why reassembly stopped: the one unrecoverable stream state.
///
/// Past an over-cap length header the stream cannot be resynchronized
/// (the next frame boundary is unknowable), so the connection must be
/// closed after an optional final reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// Declared payload length.
    pub len: u64,
    /// The configured cap it exceeded.
    pub cap: u64,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame of {} bytes exceeds the {}-byte cap",
            self.len, self.cap
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Incremental frame state machine over caller-supplied bytes.
///
/// Feed it byte chunks as they arrive; complete payloads come out in
/// order. Partial progress (a half-read header or payload) is retained
/// between calls, so any split of the byte stream — including one byte at
/// a time — assembles the same frames as a one-shot read.
#[derive(Debug)]
pub struct FrameAssembler {
    max_len: usize,
    header: [u8; 4],
    filled: usize,
    payload: Vec<u8>,
    payload_len: Option<usize>,
    poisoned: bool,
}

impl FrameAssembler {
    /// Creates an assembler enforcing `max_len` on every frame.
    pub fn new(max_len: usize) -> Self {
        FrameAssembler {
            max_len,
            header: [0; 4],
            filled: 0,
            payload: Vec::new(),
            payload_len: None,
            poisoned: false,
        }
    }

    /// Whether a frame is partially assembled (EOF now would be a
    /// mid-frame disconnect, not a clean close).
    pub fn mid_frame(&self) -> bool {
        self.filled > 0 || self.payload_len.is_some()
    }

    /// Consumes `bytes`, appending every completed frame payload to
    /// `out`.
    ///
    /// # Errors
    ///
    /// [`FrameTooLarge`] when a header declares an over-cap length.
    /// Frames completed earlier in the same call are already in `out` and
    /// remain valid; the assembler itself is poisoned — further `feed`
    /// calls keep returning the error.
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), FrameTooLarge> {
        if self.poisoned {
            return Err(FrameTooLarge {
                len: u32::from_le_bytes(self.header) as u64,
                cap: self.max_len as u64,
            });
        }
        while !bytes.is_empty() {
            if let Some(len) = self.payload_len {
                let want = len - self.payload.len();
                let take = want.min(bytes.len());
                self.payload.extend_from_slice(&bytes[..take]);
                bytes = &bytes[take..];
                if self.payload.len() == len {
                    out.push(std::mem::take(&mut self.payload));
                    self.payload_len = None;
                    self.filled = 0;
                }
            } else {
                let want = 4 - self.filled;
                let take = want.min(bytes.len());
                self.header[self.filled..self.filled + take].copy_from_slice(&bytes[..take]);
                self.filled += take;
                bytes = &bytes[take..];
                if self.filled == 4 {
                    let len = u32::from_le_bytes(self.header) as usize;
                    if len > self.max_len {
                        self.poisoned = true;
                        return Err(FrameTooLarge {
                            len: len as u64,
                            cap: self.max_len as u64,
                        });
                    }
                    self.payload = Vec::with_capacity(len.min(PREALLOC_LIMIT));
                    self.payload_len = Some(len);
                    // A zero-length frame completes without more bytes.
                    if len == 0 {
                        out.push(Vec::new());
                        self.payload_len = None;
                        self.filled = 0;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn one_shot_equals_byte_at_a_time() {
        let mut wire = frame(b"alpha");
        wire.extend(frame(b""));
        wire.extend(frame(&[0xAA; 300]));

        let mut oneshot = Vec::new();
        FrameAssembler::new(1024).feed(&wire, &mut oneshot).unwrap();

        let mut trickled = Vec::new();
        let mut asm = FrameAssembler::new(1024);
        for byte in &wire {
            asm.feed(std::slice::from_ref(byte), &mut trickled).unwrap();
        }
        assert_eq!(oneshot, trickled);
        assert_eq!(oneshot.len(), 3);
        assert_eq!(oneshot[0], b"alpha");
        assert!(oneshot[1].is_empty());
    }

    #[test]
    fn oversized_header_poisons() {
        let mut asm = FrameAssembler::new(8);
        let mut out = Vec::new();
        let err = asm.feed(&frame(&[0u8; 9]), &mut out).unwrap_err();
        assert_eq!(err, FrameTooLarge { len: 9, cap: 8 });
        assert!(out.is_empty());
        // Poisoned: even innocuous bytes keep failing.
        assert!(asm.feed(&[0, 0, 0, 0], &mut out).is_err());
    }

    #[test]
    fn frames_before_the_oversized_one_survive() {
        let mut wire = frame(b"ok");
        wire.extend(frame(&[0u8; 100])); // over an 8-byte cap
        let mut asm = FrameAssembler::new(8);
        let mut out = Vec::new();
        assert!(asm.feed(&wire, &mut out).is_err());
        assert_eq!(out, vec![b"ok".to_vec()]);
    }

    #[test]
    fn mid_frame_reports_partial_progress() {
        let mut asm = FrameAssembler::new(64);
        let mut out = Vec::new();
        assert!(!asm.mid_frame());
        asm.feed(&[5, 0], &mut out).unwrap();
        assert!(asm.mid_frame());
        asm.feed(&[0, 0, b'h', b'e', b'l'], &mut out).unwrap();
        assert!(asm.mid_frame());
        asm.feed(b"lo", &mut out).unwrap();
        assert!(!asm.mid_frame());
        assert_eq!(out, vec![b"hello".to_vec()]);
    }
}
