//! `net_*` metric handles, registered into the embedding server's
//! [`Registry`] so one exposition endpoint covers both the worker pool
//! and the connection layer.

use chason_telemetry::metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Pre-resolved handles for every connection-layer metric (DESIGN.md §15
/// names them all). Cloning is cheap — handles are `Arc`s.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// `net_connections_open`: connections currently registered.
    pub connections_open: Arc<Gauge>,
    /// `net_connections_hwm`: most connections ever open at once.
    pub connections_hwm: Arc<Gauge>,
    /// `net_accepted_total`: connections handed to the loop.
    pub accepted: Arc<Counter>,
    /// `net_closed_total`: connections closed (any cause).
    pub closed: Arc<Counter>,
    /// `net_loop_wakeups_total`: poller wait returns.
    pub wakeups: Arc<Counter>,
    /// `net_readiness_batch`: events delivered per non-empty wakeup.
    pub readiness_batch: Arc<Histogram>,
    /// `net_frames_in_total`: request frames reassembled.
    pub frames_in: Arc<Counter>,
    /// `net_frames_out_total`: reply frames queued for write.
    pub frames_out: Arc<Counter>,
    /// `net_write_queue_depth_hwm`: most unsent reply bytes buffered on
    /// one connection.
    pub write_queue_depth_hwm: Arc<Gauge>,
    /// `net_read_pauses_total`: backpressure pause transitions.
    pub read_pauses: Arc<Counter>,
    /// `net_idle_reaped_total`: connections closed by the idle wheel.
    pub idle_reaped: Arc<Counter>,
    /// `net_loop_errors_total`: unrecoverable poller failures.
    pub loop_errors: Arc<Counter>,
}

impl NetMetrics {
    /// Registers (or re-resolves) every `net_*` metric in `registry`.
    pub fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            connections_open: registry.gauge("net_connections_open"),
            connections_hwm: registry.gauge("net_connections_hwm"),
            accepted: registry.counter("net_accepted_total"),
            closed: registry.counter("net_closed_total"),
            wakeups: registry.counter("net_loop_wakeups_total"),
            readiness_batch: registry.histogram("net_readiness_batch"),
            frames_in: registry.counter("net_frames_in_total"),
            frames_out: registry.counter("net_frames_out_total"),
            write_queue_depth_hwm: registry.gauge("net_write_queue_depth_hwm"),
            read_pauses: registry.counter("net_read_pauses_total"),
            idle_reaped: registry.counter("net_idle_reaped_total"),
            loop_errors: registry.counter("net_loop_errors_total"),
        }
    }
}
