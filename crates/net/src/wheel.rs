//! Hashed timing wheel for per-connection idle deadlines.
//!
//! One wheel serves every connection of an event loop: scheduling and
//! cancellation are O(1), and each loop wakeup drains only the slots
//! whose tick boundary has passed. Entries are lazy — a connection whose
//! deadline moved (activity arrived) is *not* removed; the stale entry
//! fires, the caller compares it against the connection's current
//! deadline, and reschedules. That trades a bounded number of spurious
//! wakeups for never touching the wheel on the hot receive path more than
//! once per deadline reset.

use std::time::{Duration, Instant};

/// A fired wheel entry: the id and the deadline it was scheduled under
/// (possibly stale by the time it fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// Caller-chosen identifier (the connection id).
    pub id: u64,
    /// The deadline this entry carried when scheduled.
    pub deadline: Instant,
}

/// A fixed-slot hashed timing wheel.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<(u64, Instant)>>,
    epoch: Instant,
    /// Index of the next tick to drain.
    cursor: u64,
}

impl TimerWheel {
    /// Creates a wheel with `slots` buckets of `tick` granularity.
    /// Deadlines further out than `slots * tick` wrap and fire early as
    /// spurious entries (the caller reschedules them), so size the wheel
    /// to cover the common deadline horizon.
    pub fn new(tick: Duration, slots: usize) -> Self {
        TimerWheel {
            tick: tick.max(Duration::from_millis(1)),
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            epoch: Instant::now(),
            cursor: 0,
        }
    }

    fn ticks_from_epoch(&self, t: Instant) -> u64 {
        let nanos = t.saturating_duration_since(self.epoch).as_nanos();
        let tick = self.tick.as_nanos();
        nanos.div_ceil(tick).min(u64::MAX as u128) as u64
    }

    /// Schedules (or re-schedules) `id` to fire at `deadline`. Any older
    /// entry for the same id is left in place and fires as a stale entry.
    pub fn schedule(&mut self, id: u64, deadline: Instant) {
        let ticks = self.ticks_from_epoch(deadline).max(self.cursor);
        let slot = (ticks % self.slots.len() as u64) as usize;
        self.slots[slot].push((id, deadline));
    }

    /// How long until the next tick boundary — the poll timeout that makes
    /// the loop wake exactly when the wheel next has work.
    pub fn next_wakeup(&self, now: Instant) -> Duration {
        let nanos = self.tick.as_nanos().saturating_mul(u128::from(self.cursor));
        let next = self.epoch + Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64);
        next.saturating_duration_since(now)
            .max(Duration::from_millis(1))
    }

    /// Drains every slot whose tick boundary is at or before `now`,
    /// appending entries whose recorded deadline has passed to `due`.
    /// Entries scheduled for a later wrap of the wheel are re-inserted,
    /// not fired.
    pub fn expire(&mut self, now: Instant, due: &mut Vec<Expired>) {
        let now_ticks = self.ticks_from_epoch(now);
        let mut reinsert: Vec<(u64, Instant)> = Vec::new();
        while self.cursor <= now_ticks {
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            for (id, deadline) in self.slots[slot].drain(..) {
                if deadline <= now {
                    due.push(Expired { id, deadline });
                } else {
                    reinsert.push((id, deadline));
                }
            }
            self.cursor += 1;
        }
        for (id, deadline) in reinsert {
            self.schedule(id, deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_entries_fire_and_future_ones_wait() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let now = Instant::now();
        wheel.schedule(1, now + Duration::from_millis(5));
        wheel.schedule(2, now + Duration::from_millis(500));
        let mut due = Vec::new();
        wheel.expire(now + Duration::from_millis(20), &mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, 1);
        // The far deadline fires once its time actually comes, despite
        // wrapping the 8-slot wheel several times.
        due.clear();
        wheel.expire(now + Duration::from_millis(600), &mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, 2);
    }

    #[test]
    fn stale_reschedules_coexist() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let now = Instant::now();
        // The same id scheduled twice: both entries fire; the caller is
        // expected to compare against the live deadline.
        wheel.schedule(7, now + Duration::from_millis(10));
        wheel.schedule(7, now + Duration::from_millis(30));
        let mut due = Vec::new();
        wheel.expire(now + Duration::from_millis(50), &mut due);
        assert_eq!(due.iter().filter(|e| e.id == 7).count(), 2);
    }

    #[test]
    fn next_wakeup_is_bounded_by_the_tick() {
        let wheel = TimerWheel::new(Duration::from_millis(100), 8);
        let wake = wheel.next_wakeup(Instant::now());
        assert!(wake <= Duration::from_millis(101));
        assert!(wake >= Duration::from_millis(1));
    }
}
