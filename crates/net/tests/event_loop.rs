//! End-to-end tests of the readiness loop against real sockets: echo
//! service, pipelining with out-of-order completions, write
//! backpressure, idle reaping, oversized-frame handling, and drain.

use chason_net::server::{FrameOutcome, NetConfig, NetServer, Service};
use chason_net::LoopHandle;
use chason_telemetry::metrics::Registry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn write_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("write header");
    stream.write_all(payload).expect("write payload");
}

fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut header[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(_) => return None,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

/// Replies inline, echoing the payload. `close` payloads ask for
/// ReplyThenClose.
struct Echo;

impl Service for Echo {
    fn on_frame(&mut self, _conn: u64, _seq: u64, payload: Vec<u8>) -> FrameOutcome {
        if payload == b"close" {
            FrameOutcome::ReplyThenClose(b"bye".to_vec())
        } else {
            FrameOutcome::Reply(payload)
        }
    }

    fn on_oversized(&mut self, _conn: u64, len: u64, cap: u64) -> Option<Vec<u8>> {
        Some(format!("too-large {len}>{cap}").into_bytes())
    }
}

fn start(config: NetConfig) -> (NetServer, Registry) {
    let registry = Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = NetServer::start(listener, config, &registry, |_| Echo).expect("start");
    (server, registry)
}

#[test]
fn echo_roundtrip_and_clean_drain() {
    let (server, registry) = start(NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"hello");
    assert_eq!(read_frame(&mut stream).expect("reply"), b"hello");
    write_frame(&mut stream, b"");
    assert_eq!(read_frame(&mut stream).expect("empty reply"), b"");
    drop(stream);
    server.shutdown();
    server.join();
    assert_eq!(registry.counter("net_accepted_total").get(), 1);
    assert!(registry.counter("net_loop_wakeups_total").get() > 0);
}

#[test]
fn pipelined_requests_reply_in_order() {
    let (server, _registry) = start(NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Burst 64 frames without reading a single reply, then expect all 64
    // echoes in request order.
    for i in 0..64u32 {
        write_frame(&mut stream, &i.to_le_bytes());
    }
    for i in 0..64u32 {
        assert_eq!(read_frame(&mut stream).expect("reply"), i.to_le_bytes());
    }
    drop(stream);
    server.shutdown();
    server.join();
}

/// Completes every even sequence immediately and holds odd ones back,
/// releasing each held reply only after the NEXT frame arrives — forcing
/// genuinely out-of-order completions that the loop must re-order.
struct OutOfOrder {
    handle: LoopHandle,
    held: Option<(u64, u64, Vec<u8>)>,
}

impl Service for OutOfOrder {
    fn on_frame(&mut self, conn: u64, seq: u64, payload: Vec<u8>) -> FrameOutcome {
        if let Some((c, s, p)) = self.held.take() {
            self.handle.complete(c, s, p);
        }
        if seq % 2 == 1 {
            self.held = Some((conn, seq, payload));
            FrameOutcome::Pending
        } else {
            FrameOutcome::Reply(payload)
        }
    }

    fn on_oversized(&mut self, _conn: u64, _len: u64, _cap: u64) -> Option<Vec<u8>> {
        None
    }

    fn on_close(&mut self, conn: u64) {
        if self.held.as_ref().is_some_and(|(c, _, _)| *c == conn) {
            self.held = None;
        }
    }
}

#[test]
fn out_of_order_completions_are_resequenced() {
    let registry = Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = NetServer::start(listener, NetConfig::default(), &registry, |handle| {
        OutOfOrder { handle, held: None }
    })
    .expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    for i in 0..20u32 {
        write_frame(&mut stream, &i.to_le_bytes());
    }
    // Seq 19 is held until EOF/drain; send one nudge frame to flush it.
    write_frame(&mut stream, &99u32.to_le_bytes());
    for i in 0..20u32 {
        assert_eq!(
            read_frame(&mut stream).expect("ordered reply"),
            i.to_le_bytes(),
            "reply {i} out of order"
        );
    }
    drop(stream);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_frame_gets_final_reply_then_close() {
    let (server, _registry) = start(NetConfig {
        max_frame_len: 1024,
        ..NetConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"fine");
    assert_eq!(read_frame(&mut stream).expect("echo"), b"fine");
    // Header declaring 1 MiB against the 1 KiB cap.
    stream
        .write_all(&(1u32 << 20).to_le_bytes())
        .expect("hostile header");
    let reply = read_frame(&mut stream).expect("final reply");
    assert_eq!(reply, format!("too-large {}>1024", 1u32 << 20).as_bytes());
    // Then EOF.
    assert!(read_frame(&mut stream).is_none());
    server.shutdown();
    server.join();
}

#[test]
fn reply_then_close_flushes_before_eof() {
    let (server, _registry) = start(NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"close");
    assert_eq!(read_frame(&mut stream).expect("bye"), b"bye");
    assert!(read_frame(&mut stream).is_none());
    server.shutdown();
    server.join();
}

#[test]
fn idle_connections_are_reaped() {
    let (server, registry) = start(NetConfig {
        idle_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"ping");
    assert_eq!(read_frame(&mut stream).expect("pong"), b"ping");
    // Stay silent past the timeout: the server must hang up on us.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let start = Instant::now();
    assert!(read_frame(&mut stream).is_none(), "expected idle reap EOF");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "reap, not timeout"
    );
    assert_eq!(registry.counter("net_idle_reaped_total").get(), 1);
    server.shutdown();
    server.join();
}

/// A service that never completes its first request until told, so the
/// connection is mid-request while the idle wheel fires.
struct Stall {
    handle: LoopHandle,
    release: mpsc::Receiver<()>,
}

impl Service for Stall {
    fn on_frame(&mut self, conn: u64, seq: u64, payload: Vec<u8>) -> FrameOutcome {
        let handle = self.handle.clone();
        let release = std::mem::replace(&mut self.release, mpsc::channel().1);
        thread::spawn(move || {
            let _ = release.recv_timeout(Duration::from_secs(10));
            handle.complete(conn, seq, payload);
        });
        FrameOutcome::Pending
    }

    fn on_oversized(&mut self, _conn: u64, _len: u64, _cap: u64) -> Option<Vec<u8>> {
        None
    }
}

#[test]
fn in_flight_requests_defer_the_idle_reap() {
    let registry = Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let (release_tx, release_rx) = mpsc::channel();
    let server = NetServer::start(
        listener,
        NetConfig {
            idle_timeout: Duration::from_millis(250),
            ..NetConfig::default()
        },
        &registry,
        move |handle| Stall {
            handle,
            release: release_rx,
        },
    )
    .expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"slow");
    // Hold the request well past the idle timeout, then release it: the
    // reply must still arrive (the reap defers while inflight > 0).
    thread::sleep(Duration::from_millis(600));
    release_tx.send(()).expect("release");
    assert_eq!(read_frame(&mut stream).expect("late reply"), b"slow");
    assert_eq!(registry.counter("net_idle_reaped_total").get(), 0);
    server.shutdown();
    server.join();
}

#[test]
fn write_backpressure_pauses_reads_without_losing_replies() {
    // Tiny write budget: echoing 64 KiB frames to a client that is not
    // reading must trip the pause path, then finish once the client
    // drains.
    let (server, registry) = start(NetConfig {
        write_buffer_limit: 32 * 1024,
        ..NetConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Enough volume to overflow kernel socket buffering on loopback, so
    // the server's own write queue must absorb (and then bound) the rest.
    let big = vec![0x5Au8; 64 * 1024];
    let frames = 256;
    let mut writer = stream.try_clone().expect("clone");
    let payload = big.clone();
    let sender = thread::spawn(move || {
        for _ in 0..frames {
            write_frame(&mut writer, &payload);
        }
    });
    // Delay reading so the server's write buffer fills and pauses reads.
    thread::sleep(Duration::from_millis(200));
    for _ in 0..frames {
        assert_eq!(read_frame(&mut stream).expect("big echo"), big);
    }
    sender.join().expect("sender");
    assert!(
        registry.counter("net_read_pauses_total").get() > 0,
        "expected at least one backpressure pause"
    );
    assert!(registry.gauge("net_write_queue_depth_hwm").get() > 0);
    server.shutdown();
    server.join();
}

#[test]
fn drain_answers_in_flight_work_then_exits() {
    let registry = Registry::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let (release_tx, release_rx) = mpsc::channel();
    let server = NetServer::start(listener, NetConfig::default(), &registry, move |handle| {
        Stall {
            handle,
            release: release_rx,
        }
    })
    .expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, b"work");
    thread::sleep(Duration::from_millis(100));
    // Drain with the request still in flight: the loop must wait for the
    // completion, flush the reply, then exit.
    server.shutdown();
    release_tx.send(()).expect("release");
    assert_eq!(read_frame(&mut stream).expect("drained reply"), b"work");
    assert!(read_frame(&mut stream).is_none());
    server.join();
    assert_eq!(registry.gauge("net_connections_open").get(), 0);
}

#[test]
fn many_connections_share_two_threads() {
    let (server, registry) = start(NetConfig::default());
    let addr = server.local_addr();
    let conns = 100;
    let workers: Vec<_> = (0..conns)
        .map(|i| {
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let msg = format!("conn-{i}");
                for _ in 0..10 {
                    write_frame(&mut stream, msg.as_bytes());
                    assert_eq!(read_frame(&mut stream).expect("echo"), msg.as_bytes());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client");
    }
    assert_eq!(registry.counter("net_accepted_total").get(), conns);
    assert!(registry.gauge("net_connections_hwm").get() >= 2);
    server.shutdown();
    server.join();
}

#[test]
fn handle_is_shareable_across_threads() {
    // LoopHandle must be Clone + Send + Sync for worker pools.
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<LoopHandle>();
    let _ = Arc::new(());
}
