//! Byte-granularity frame reassembly properties (ISSUE satellite 3):
//! any split of a CHSP byte stream — every byte boundary, random
//! partitions, frames coalesced with their successors — must decode
//! identically to a one-shot feed, and hostile partial/oversized frames
//! must fail without corrupting earlier frames.

use chason_net::FrameAssembler;
use proptest::prelude::*;

fn encode(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for f in frames {
        wire.extend_from_slice(&(f.len() as u32).to_le_bytes());
        wire.extend_from_slice(f);
    }
    wire
}

fn one_shot(wire: &[u8], cap: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    FrameAssembler::new(cap)
        .feed(wire, &mut out)
        .expect("one-shot decode of valid frames");
    out
}

/// Decodes `wire` in chunks cut at the given boundaries.
fn chunked(wire: &[u8], cuts: &[usize], cap: usize) -> Vec<Vec<u8>> {
    let mut asm = FrameAssembler::new(cap);
    let mut out = Vec::new();
    let mut start = 0;
    for &cut in cuts {
        let cut = cut.min(wire.len());
        if cut > start {
            asm.feed(&wire[start..cut], &mut out).expect("chunk decode");
            start = cut;
        }
    }
    if start < wire.len() {
        asm.feed(&wire[start..], &mut out).expect("tail decode");
    }
    assert!(!asm.mid_frame(), "stream ended mid-frame");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Splitting the stream at EVERY byte boundary (one byte per feed)
    /// decodes identically to the one-shot feed.
    #[test]
    fn every_byte_boundary_split_is_identical(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8)
    ) {
        let wire = encode(&frames);
        let reference = one_shot(&wire, 1 << 16);
        let cuts: Vec<usize> = (1..wire.len()).collect();
        let trickled = chunked(&wire, &cuts, 1 << 16);
        prop_assert_eq!(&reference, &trickled);
        prop_assert_eq!(&reference, &frames);
    }

    /// Any random partition — including chunks that coalesce a frame's
    /// tail with its successor's header — decodes identically.
    #[test]
    fn random_partitions_are_identical(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..10),
        mut cuts in proptest::collection::vec(any::<usize>(), 0..20)
    ) {
        let wire = encode(&frames);
        let reference = one_shot(&wire, 1 << 16);
        for c in &mut cuts {
            *c = if wire.is_empty() { 0 } else { *c % wire.len() };
        }
        cuts.sort_unstable();
        let split = chunked(&wire, &cuts, 1 << 16);
        prop_assert_eq!(&reference, &split);
    }

    /// A truncated final frame leaves the assembler mid-frame with every
    /// complete predecessor already delivered, no matter where the
    /// truncation lands.
    #[test]
    fn truncation_preserves_complete_prefixes(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..100), 1..6),
        cut_back in 1usize..50
    ) {
        let wire = encode(&frames);
        let cut = wire.len() - cut_back.min(wire.len() - 1);
        let mut asm = FrameAssembler::new(1 << 16);
        let mut out = Vec::new();
        asm.feed(&wire[..cut], &mut out).expect("prefix decode");
        // Either the cut landed mid-frame, or it fell exactly on a frame
        // boundary and every frame before it was delivered whole.
        prop_assert!(out.len() <= frames.len());
        prop_assert!(asm.mid_frame() || cut == encode(&frames[..out.len()]).len());
        // Every delivered frame matches its original exactly.
        for (got, want) in out.iter().zip(frames.iter()) {
            prop_assert_eq!(got, want);
        }
        // Feeding the rest completes the stream identically.
        asm.feed(&wire[cut..], &mut out).expect("suffix decode");
        prop_assert_eq!(&out, &frames);
        prop_assert!(!asm.mid_frame());
    }

    /// An over-cap header fails at the same point regardless of how the
    /// bytes were split, and frames before it survive. The assembler
    /// stays poisoned afterwards.
    #[test]
    fn hostile_oversized_header_fails_identically(
        good in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..50), 0..4),
        oversize in 1025u32..u32::MAX,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        one_byte_at_a_time in any::<bool>()
    ) {
        let mut wire = encode(&good);
        wire.extend_from_slice(&oversize.to_le_bytes());
        wire.extend_from_slice(&garbage);

        let mut asm = FrameAssembler::new(1024);
        let mut out = Vec::new();
        let result = if one_byte_at_a_time {
            let mut last = Ok(());
            for b in &wire {
                last = asm.feed(std::slice::from_ref(b), &mut out);
                if last.is_err() {
                    break;
                }
            }
            last
        } else {
            asm.feed(&wire, &mut out)
        };
        let err = result.expect_err("over-cap header must fail");
        prop_assert_eq!(err.len, u64::from(oversize));
        prop_assert_eq!(err.cap, 1024);
        prop_assert_eq!(&out, &good);
        // Poisoned: innocuous bytes keep failing.
        prop_assert!(asm.feed(&[0, 0, 0, 0], &mut out).is_err());
        prop_assert_eq!(&out, &good);
    }
}
