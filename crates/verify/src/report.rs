//! Diagnostic collection and `rustc`-style rendering.
//!
//! Unlike [`chason_core::schedule::ScheduledMatrix::validate`], which stops
//! at the first violation, the verifier accumulates every finding into a
//! [`Report`] so one run paints the complete picture of what is wrong with
//! an artifact.

use chason_core::diag::{Location, RuleId, Severity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One finding of the static checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The violated (or suspicious) rule.
    pub rule: RuleId,
    /// Whether the artifact is illegal or merely wasteful.
    pub severity: Severity,
    /// Where in the artifact the finding sits.
    pub location: Location,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(rule: RuleId, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location,
            message: message.into(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(rule: RuleId, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            location,
            message: message.into(),
        }
    }

    /// Renders the finding in `rustc` style:
    ///
    /// ```text
    /// error[S003]: RAW violation: row 7 re-enters its PE after 1 cycle
    ///   --> channel 0, cycle 4, lane 1
    ///   = note: §3.3 — RAW dependency distance within every destination PE
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.rule, self.message);
        if !self.location.is_empty() {
            out.push_str(&format!("\n  --> {}", self.location));
        }
        out.push_str(&format!(
            "\n  = note: {} — {}",
            self.rule.paper_section(),
            self.rule.title()
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Every finding of one verification run, ready to render or query.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs another report's findings unchanged.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Absorbs another report's findings, tagging every location with the
    /// plan-window index it came from.
    pub fn merge_window(&mut self, other: Report, window: usize) {
        for mut d in other.diagnostics {
            d.location = d.location.in_window(window);
            self.diagnostics.push(d);
        }
    }

    /// The findings, in location order (errors and warnings interleaved by
    /// where they point, so neighbouring problems read together).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Sorts findings by location, then rule. The verifier entry points
    /// call this before returning; only hand-assembled reports need it.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.location, a.rule, a.severity).cmp(&(b.location, b.rule, b.severity))
        });
    }

    /// Whether the run found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error (the artifact is illegal).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// The distinct rules that fired, in ID order.
    pub fn rules_fired(&self) -> BTreeSet<RuleId> {
        self.diagnostics.iter().map(|d| d.rule).collect()
    }

    /// Whether a specific rule fired at least once.
    pub fn has_rule(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// The one-line verdict closing a rendered report.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "verification passed: no diagnostics".to_string();
        }
        let errors = self.error_count();
        let warnings = self.warning_count();
        let mut parts = Vec::with_capacity(2);
        if errors > 0 {
            parts.push(format!(
                "{errors} error{}",
                if errors == 1 { "" } else { "s" }
            ));
        }
        if warnings > 0 {
            parts.push(format!(
                "{warnings} warning{}",
                if warnings == 1 { "" } else { "s" }
            ));
        }
        let rules: Vec<&str> = self.rules_fired().into_iter().map(RuleId::code).collect();
        format!(
            "verification {}: {} ({})",
            if errors > 0 { "failed" } else { "passed" },
            parts.join(", "),
            rules.join(", ")
        )
    }

    /// Renders every finding followed by the summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push_str("\n\n");
        }
        out.push_str(&self.summary());
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_passes() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(r.summary(), "verification passed: no diagnostics");
        assert_eq!(r.render(), r.summary());
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic::error(RuleId::S003, Location::slot(0, 4, 1), "row 7 re-entered");
        let text = d.render();
        assert!(text.starts_with("error[S003]: row 7 re-entered"), "{text}");
        assert!(text.contains("--> channel 0, cycle 4, lane 1"), "{text}");
        assert!(text.contains("= note: §3.3"), "{text}");
    }

    #[test]
    fn artifact_level_diagnostic_has_no_arrow_line() {
        let d = Diagnostic::warning(RuleId::P001, Location::whole_artifact(), "stale stats");
        assert!(!d.render().contains("-->"));
        assert!(d.render().starts_with("warning[P001]"));
    }

    #[test]
    fn report_counts_and_rules() {
        let mut r = Report::new();
        r.push(Diagnostic::error(RuleId::S002, Location::channel(1), "dup"));
        r.push(Diagnostic::error(RuleId::S002, Location::channel(0), "dup"));
        r.push(Diagnostic::warning(
            RuleId::R001,
            Location::whole_artifact(),
            "hops",
        ));
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(r.has_rule(RuleId::S002));
        assert!(!r.has_rule(RuleId::S001));
        assert_eq!(
            r.rules_fired().into_iter().collect::<Vec<_>>(),
            vec![RuleId::S002, RuleId::R001]
        );
        let summary = r.summary();
        assert!(summary.contains("failed"), "{summary}");
        assert!(summary.contains("2 errors, 1 warning"), "{summary}");
        assert!(summary.contains("S002, R001"), "{summary}");
    }

    #[test]
    fn sort_orders_by_location_then_rule() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            RuleId::S003,
            Location::slot(1, 0, 0),
            "b",
        ));
        r.push(Diagnostic::error(
            RuleId::S001,
            Location::slot(0, 2, 0),
            "a",
        ));
        r.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            "c",
        ));
        r.sort();
        // The artifact-level finding (all-None location) sorts first.
        assert_eq!(r.diagnostics()[0].rule, RuleId::P001);
        assert_eq!(r.diagnostics()[1].location.channel, Some(0));
        assert_eq!(r.diagnostics()[2].location.channel, Some(1));
    }

    #[test]
    fn merge_window_tags_locations() {
        let mut inner = Report::new();
        inner.push(Diagnostic::error(
            RuleId::S001,
            Location::slot(0, 1, 2),
            "x",
        ));
        let mut outer = Report::new();
        outer.merge_window(inner, 3);
        assert_eq!(outer.diagnostics()[0].location.window, Some(3));
    }
}
