//! A library of targeted schedule corruptions.
//!
//! Each [`Corruption`] breaks exactly one invariant of an otherwise-clean
//! [`ScheduledMatrix`], chosen so the checker's corresponding rule — and
//! ideally only it — fires. The mutation test suite applies every
//! corruption to every schedule in its generator corpus and asserts the
//! [`expected rule`](Corruption::expected_rule) is reported; the
//! `chason verify --corrupt` CLI flag uses the same library to produce
//! demonstration fixtures.

use chason_core::diag::RuleId;
use chason_core::element::WINDOW;
use chason_core::schedule::{NzSlot, ScheduledMatrix};

/// One targeted corruption of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Set a scheduled value to `+0.0`, colliding with the stall word.
    ZeroValue,
    /// Push a column index past the 13-bit window budget.
    ColOverflow,
    /// Stream a second, bit-identical copy of an entry from another channel.
    DuplicateAcrossChannels,
    /// Silently drop one scheduled non-zero.
    DropElement,
    /// Reorder a lane so a row re-enters its PE within the RAW distance.
    RawSqueeze,
    /// Re-home a private element two ring hops away (hop budget is 1).
    TwoHopMigration,
    /// Flip a slot's `pvt` tag without moving it.
    TagFlip,
    /// Point a slot's `PE_src` tag at the wrong source lane.
    PeSrcSwap,
    /// Give one cycle more lanes than the PEG has PEs.
    RaggedLanes,
    /// Append a physical all-stall cycle to the longest channel.
    PhantomPadding,
}

impl Corruption {
    /// Every corruption, in declaration order.
    pub const ALL: [Corruption; 10] = [
        Corruption::ZeroValue,
        Corruption::ColOverflow,
        Corruption::DuplicateAcrossChannels,
        Corruption::DropElement,
        Corruption::RawSqueeze,
        Corruption::TwoHopMigration,
        Corruption::TagFlip,
        Corruption::PeSrcSwap,
        Corruption::RaggedLanes,
        Corruption::PhantomPadding,
    ];

    /// Stable kebab-case name (the `chason verify --corrupt` argument).
    pub fn name(self) -> &'static str {
        match self {
            Corruption::ZeroValue => "zero-value",
            Corruption::ColOverflow => "col-overflow",
            Corruption::DuplicateAcrossChannels => "duplicate",
            Corruption::DropElement => "drop",
            Corruption::RawSqueeze => "raw-squeeze",
            Corruption::TwoHopMigration => "two-hop",
            Corruption::TagFlip => "tag-flip",
            Corruption::PeSrcSwap => "pe-src-swap",
            Corruption::RaggedLanes => "ragged",
            Corruption::PhantomPadding => "padding",
        }
    }

    /// Parses a [`name`](Corruption::name) back into a corruption.
    pub fn from_name(name: &str) -> Option<Self> {
        Corruption::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The rule the corruption is designed to trip. (Collateral findings —
    /// e.g. a dropped element also leaving a trailing stall cycle — may fire
    /// additional rules; this one is guaranteed.)
    pub fn expected_rule(self) -> RuleId {
        match self {
            Corruption::ZeroValue | Corruption::ColOverflow => RuleId::S001,
            Corruption::DuplicateAcrossChannels | Corruption::DropElement => RuleId::S002,
            Corruption::RawSqueeze => RuleId::S003,
            Corruption::TwoHopMigration => RuleId::S004,
            Corruption::TagFlip | Corruption::PeSrcSwap => RuleId::S005,
            Corruption::RaggedLanes | Corruption::PhantomPadding => RuleId::S006,
        }
    }

    /// Applies the corruption in place. Returns `false` when the schedule
    /// offers no site for it (e.g. no migrated slot to tag-flip, or too few
    /// channels for a two-hop move); the schedule is unchanged in that case.
    pub fn apply(self, s: &mut ScheduledMatrix) -> bool {
        match self {
            Corruption::ZeroValue => with_first_nz(s, |nz| nz.value = 0.0),
            Corruption::ColOverflow => with_first_nz(s, |nz| nz.col += WINDOW),
            Corruption::DuplicateAcrossChannels => duplicate_across_channels(s),
            Corruption::DropElement => {
                let Some((c, cycle, lane)) = first_nz(s) else {
                    return false;
                };
                s.channels[c].grid[cycle][lane] = None;
                true
            }
            Corruption::RawSqueeze => raw_squeeze(s),
            Corruption::TwoHopMigration => two_hop_migration(s),
            Corruption::TagFlip => tag_flip(s),
            Corruption::PeSrcSwap => pe_src_swap(s),
            Corruption::RaggedLanes => {
                let Some(ch) = s.channels.iter_mut().find(|ch| !ch.grid.is_empty()) else {
                    return false;
                };
                ch.grid[0].push(None);
                true
            }
            Corruption::PhantomPadding => {
                let pes = s.config.pes_per_channel;
                let Some(ch) = s.channels.iter_mut().max_by_key(|ch| ch.grid.len()) else {
                    return false;
                };
                if ch.grid.is_empty() {
                    return false;
                }
                ch.grid.push(vec![None; pes]);
                true
            }
        }
    }
}

impl Corruption {
    /// Applies the corruption to the first corruptible window of a plan.
    ///
    /// Plans embed full [`ScheduledMatrix`] grids per window, so every
    /// schedule-level corruption applies unchanged; `verify_plan` must then
    /// report the same [`expected rule`](Corruption::expected_rule) the
    /// schedule-level checker would. Returns `false` when no window offers
    /// a site.
    pub fn apply_to_plan(self, plan: &mut chason_core::plan::SpmvPlan) -> bool {
        plan.passes
            .iter_mut()
            .flat_map(|p| &mut p.windows)
            .any(|w| self.apply(&mut w.schedule))
    }
}

/// Position of the first scheduled non-zero, as (channel, cycle, lane).
fn first_nz(s: &ScheduledMatrix) -> Option<(usize, usize, usize)> {
    s.channels.iter().enumerate().find_map(|(c, ch)| {
        ch.grid.iter().enumerate().find_map(|(cycle, slots)| {
            slots
                .iter()
                .position(Option::is_some)
                .map(|lane| (c, cycle, lane))
        })
    })
}

fn with_first_nz(s: &mut ScheduledMatrix, f: impl FnOnce(&mut NzSlot)) -> bool {
    let Some((c, cycle, lane)) = first_nz(s) else {
        return false;
    };
    if let Some(nz) = s.channels[c].grid[cycle][lane].as_mut() {
        f(nz);
        true
    } else {
        false
    }
}

/// Finds the first slot matching `pred`, as (channel, cycle, lane).
fn find_nz(
    s: &ScheduledMatrix,
    mut pred: impl FnMut(usize, &NzSlot) -> bool,
) -> Option<(usize, usize, usize)> {
    for (c, ch) in s.channels.iter().enumerate() {
        for (cycle, slots) in ch.grid.iter().enumerate() {
            for (lane, slot) in slots.iter().enumerate() {
                if let Some(nz) = slot {
                    if pred(c, nz) {
                        return Some((c, cycle, lane));
                    }
                }
            }
        }
    }
    None
}

/// Streams a bit-identical second copy of a private element from the
/// channel that could legally have received it as a 1-hop migration, with
/// tags a migrated element would carry — only conservation (S002) breaks.
fn duplicate_across_channels(s: &mut ScheduledMatrix) -> bool {
    let cfg = s.config;
    if cfg.channels < 2 {
        return false;
    }
    let Some((c, cycle, lane)) = find_nz(s, |_, nz| nz.pvt) else {
        return false;
    };
    let Some(original) = s.channels[c].grid[cycle][lane] else {
        return false;
    };
    // hop_for(dest, home) == 1  ⇔  dest == home - 1 (mod channels).
    let dest = (c + cfg.channels - 1) % cfg.channels;
    let mut copy = original;
    copy.pvt = false;
    copy.pe_src = cfg.lane_for_row(copy.row) as u8;
    let mut row = vec![None; cfg.pes_per_channel];
    row[0] = Some(copy);
    s.channels[dest].grid.push(row);
    true
}

/// Swaps a lane's slots so two occurrences of one row land one cycle apart.
fn raw_squeeze(s: &mut ScheduledMatrix) -> bool {
    for ch in &mut s.channels {
        let width = ch.grid.iter().map(Vec::len).max().unwrap_or(0);
        for lane in 0..width {
            let mut prev: Option<(usize, usize)> = None; // (cycle, row)
            for cycle in 0..ch.grid.len() {
                let Some(nz) = ch.grid[cycle].get(lane).copied().flatten() else {
                    continue;
                };
                if let Some((a, row)) = prev {
                    if row == nz.row && cycle > a + 1 {
                        // Pull the later occurrence right behind the earlier
                        // one; the displaced slot moves to the later cycle,
                        // so nothing is lost or duplicated.
                        let moved = ch.grid[cycle][lane].take();
                        let displaced = ch.grid[a + 1][lane];
                        ch.grid[a + 1][lane] = moved;
                        ch.grid[cycle][lane] = displaced;
                        return true;
                    }
                }
                prev = Some((cycle, nz.row));
            }
        }
    }
    false
}

/// Moves a private element to a channel two ring hops from its home; the
/// copy carries otherwise-correct migration tags, so only the hop budget
/// (S004) breaks.
fn two_hop_migration(s: &mut ScheduledMatrix) -> bool {
    let cfg = s.config;
    if cfg.channels < 3 || cfg.migration_hops >= 2 {
        return false;
    }
    let Some((c, cycle, lane)) = find_nz(s, |_, nz| nz.pvt) else {
        return false;
    };
    let Some(original) = s.channels[c].grid[cycle][lane].take() else {
        return false;
    };
    // hop_for(dest, home) == 2  ⇔  dest == home - 2 (mod channels).
    let dest = (c + cfg.channels - 2) % cfg.channels;
    let mut moved = original;
    moved.pvt = false;
    moved.pe_src = cfg.lane_for_row(moved.row) as u8;
    let mut row = vec![None; cfg.pes_per_channel];
    row[0] = Some(moved);
    s.channels[dest].grid.push(row);
    true
}

/// Flips `pvt` on a migrated slot (preferred — the lie is "this is mine"),
/// falling back to un-flagging a private slot.
fn tag_flip(s: &mut ScheduledMatrix) -> bool {
    if let Some((c, cycle, lane)) = find_nz(s, |_, nz| !nz.pvt) {
        if let Some(nz) = s.channels[c].grid[cycle][lane].as_mut() {
            nz.pvt = true;
            return true;
        }
    }
    if let Some((c, cycle, lane)) = find_nz(s, |_, nz| nz.pvt) {
        if let Some(nz) = s.channels[c].grid[cycle][lane].as_mut() {
            nz.pvt = false;
            return true;
        }
    }
    false
}

/// Points a slot's `PE_src` at a lane that is not the element's home lane
/// (for migrated slots), or sets a non-zero tag on a private slot.
fn pe_src_swap(s: &mut ScheduledMatrix) -> bool {
    let pes = s.config.pes_per_channel;
    if let Some((c, cycle, lane)) = find_nz(s, |_, nz| !nz.pvt) {
        if let Some(nz) = s.channels[c].grid[cycle][lane].as_mut() {
            nz.pe_src = if pes >= 2 {
                ((nz.pe_src as usize + 1) % pes) as u8
            } else {
                7
            };
            return true;
        }
    }
    if let Some((c, cycle, lane)) = find_nz(s, |_, nz| nz.pvt) {
        if let Some(nz) = s.channels[c].grid[cycle][lane].as_mut() {
            nz.pe_src = 1;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Corruption::ALL {
            assert_eq!(Corruption::from_name(c.name()), Some(c));
        }
        assert_eq!(Corruption::from_name("nope"), None);
    }

    #[test]
    fn every_corruption_targets_a_schedule_rule() {
        for c in Corruption::ALL {
            let code = c.expected_rule().code();
            assert!(code.starts_with('S'), "{code} is not a schedule rule");
        }
    }

    #[test]
    fn plan_level_corruption_is_caught_by_verify_plan() {
        use chason_core::plan::{PassPlan, PlanKey, PlanWindow, SpmvPlan};
        use chason_core::schedule::{Crhcs, Scheduler, SchedulerConfig};
        use chason_sparse::generators::uniform_random;

        let m = uniform_random(48, 48, 260, 21);
        let config = SchedulerConfig::toy(3, 3, 4);
        let schedule = Crhcs::new().schedule(&m, &config);
        let clean = SpmvPlan {
            key: PlanKey::new(&m, config),
            engine: "chason".to_string(),
            window: 8192,
            rows: 48,
            cols: 48,
            nnz: m.nnz(),
            passes: vec![PassPlan {
                row_start: 0,
                row_end: 48,
                nnz: m.nnz(),
                windows: vec![PlanWindow {
                    col_start: 0,
                    col_end: 48,
                    nnz: m.nnz(),
                    stalls: schedule.stalls(),
                    stream_cycles: schedule.stream_cycles(),
                    schedule,
                }],
            }],
        };
        assert!(crate::verify_plan(&clean, Some(&m)).is_clean());
        for c in Corruption::ALL {
            let mut plan = clean.clone();
            if !c.apply_to_plan(&mut plan) {
                continue;
            }
            let report = crate::verify_plan(&plan, Some(&m));
            assert!(
                report.rules_fired().contains(&c.expected_rule()),
                "{} did not fire {:?} at plan level",
                c.name(),
                c.expected_rule()
            );
        }
    }
}
