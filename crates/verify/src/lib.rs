//! `chason-verify`: a rule-based static checker for schedules, plans, and
//! configurations.
//!
//! Schedulers assert their own invariants with the fast, first-error
//! [`chason_core::schedule::ScheduledMatrix::validate`]. This crate is the
//! other half of the story: a *collect-everything* analyzer that runs the
//! full rule set over an artifact and reports **all** violations as typed
//! [`Diagnostic`]s with stable [`RuleId`]s, severities, and source
//! locations, rendered `rustc`-style. It backs the `chason verify` CLI
//! subcommand, the engines' debug-mode pre-execution check, and the
//! mutation test suite.
//!
//! | Entry point | Artifact | Rules |
//! |-------------|----------|-------|
//! | [`verify_config`] | [`SchedulerConfig`] | R001 (+ P001 on an invalid config) |
//! | [`verify_schedule`] | [`ScheduledMatrix`] | S001–S006, R001 (S002 needs the source matrix) |
//! | [`verify_pass`] | [`PassPlan`] | P001 + the schedule rules per window |
//! | [`verify_plan`] | [`SpmvPlan`] | P001 + everything above (+ global conservation with the source) |
//!
//! See [`chason_core::diag`] for what each rule enforces and the paper
//! section it models.
//!
//! # Example
//!
//! ```
//! use chason_core::schedule::{PeAware, Scheduler, SchedulerConfig};
//! use chason_sparse::generators::uniform_random;
//! use chason_verify::{verify_schedule, RuleId};
//!
//! let m = uniform_random(32, 32, 120, 7);
//! let cfg = SchedulerConfig::toy(2, 4, 6);
//! let mut s = PeAware::new().schedule(&m, &cfg);
//! assert!(verify_schedule(&s, Some(&m)).is_clean());
//!
//! // Corrupt it: drop one scheduled non-zero.
//! chason_verify::mutate::Corruption::DropElement.apply(&mut s);
//! let report = verify_schedule(&s, Some(&m));
//! assert!(report.has_errors());
//! assert!(report.has_rule(RuleId::S002));
//! println!("{report}");
//! ```

pub mod mutate;
mod report;
mod rules;

pub use chason_core::diag::{Location, RuleId, ScheduleError, Severity};
pub use report::{Diagnostic, Report};

use chason_core::plan::{PassPlan, SpmvPlan};
use chason_core::schedule::{ScheduledMatrix, SchedulerConfig};
use chason_sparse::CooMatrix;

/// Checks a configuration against the device resource model (R001); an
/// outright invalid configuration is a single P001 error.
pub fn verify_config(config: &SchedulerConfig) -> Report {
    let mut report = Report::new();
    rules::check_config(config, &mut report);
    report.sort();
    report
}

/// Runs the full schedule rule set (S001–S006, R001) over one schedule.
///
/// Conservation (S002) needs the source matrix; pass `None` to verify an
/// artifact whose source is unavailable — every structural rule still runs.
pub fn verify_schedule(schedule: &ScheduledMatrix, source: Option<&CooMatrix>) -> Report {
    let mut report = Report::new();
    rules::check_config(&schedule.config, &mut report);
    rules::check_schedule(schedule, source, &mut report);
    report.sort();
    report
}

/// Verifies one row-partition pass of a plan: P001 coherence of the stored
/// stats and window bounds, plus the structural schedule rules per window.
///
/// `max_width` is the column-window width the plan was partitioned with.
pub fn verify_pass(pass: &PassPlan, config: &SchedulerConfig, max_width: usize) -> Report {
    let mut report = Report::new();
    rules::check_pass(pass, config, max_width, 0, &mut report);
    report.sort();
    report
}

/// Verifies a complete plan artifact: configuration, pass/window coverage,
/// stored stats, every window's schedule, and — with the source matrix —
/// the fingerprint and global conservation across all passes and windows.
pub fn verify_plan(plan: &SpmvPlan, source: Option<&CooMatrix>) -> Report {
    let mut report = Report::new();
    rules::check_plan(plan, source, &mut report);
    report.sort();
    report
}
