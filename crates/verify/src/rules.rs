//! The rule implementations behind the public `verify_*` entry points.
//!
//! Each checker appends to a shared [`Report`] and never bails early: the
//! point of the static analyzer is to paint the complete picture of an
//! artifact's problems in one run. See [`chason_core::diag`] for the rule
//! vocabulary and the paper sections each rule models.

use crate::report::{Diagnostic, Report};
use chason_core::diag::{Location, RuleId};
use chason_core::element::{MAX_LOCAL_ROWS, PE_SRC_BITS, WINDOW};
use chason_core::plan::{matrix_fingerprint, PassPlan, SpmvPlan};
use chason_core::schedule::{ScheduledMatrix, SchedulerConfig};
use chason_sparse::CooMatrix;
use std::collections::HashMap;

/// URAM blocks on the Alveo U55c, the paper's deployment device (§5.1).
///
/// Mirrored from `chason-sim`'s resource model (which sits *above* this
/// crate in the dependency graph and cannot be imported here).
const ALVEO_U55C_URAMS: usize = 960;

/// URAM banks one PE needs for `hops` migration hops: 3 `URAM_sh` banks per
/// hop (§4.5's consolidated-buffer triplication) plus its partial-sum URAM.
fn urams_per_pe(hops: usize) -> usize {
    3 * hops + 1
}

/// A channel+cycle location (a whole beat, no specific lane).
fn cycle_loc(channel: usize, cycle: usize) -> Location {
    Location {
        window: None,
        channel: Some(channel),
        cycle: Some(cycle),
        lane: None,
    }
}

/// R001 (and structural sanity) over a configuration alone.
pub(crate) fn check_config(config: &SchedulerConfig, report: &mut Report) {
    if !config.is_valid() {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "scheduler configuration is invalid: {} channels × {} PEs, \
                 dependency distance {}, {} migration hops",
                config.channels,
                config.pes_per_channel,
                config.dependency_distance,
                config.migration_hops
            ),
        ));
        return;
    }
    let urams = config.total_pes() * urams_per_pe(config.migration_hops);
    if urams > ALVEO_U55C_URAMS {
        report.push(Diagnostic::error(
            RuleId::R001,
            Location::whole_artifact(),
            format!(
                "{} channels × {} PEs at {} migration hop(s) need {} URAM banks \
                 (3 per hop + 1 partial-sum per PE); the Alveo U55c has {}",
                config.channels,
                config.pes_per_channel,
                config.migration_hops,
                urams,
                ALVEO_U55C_URAMS
            ),
        ));
    }
    if config.migration_hops > 1 {
        report.push(Diagnostic::warning(
            RuleId::R001,
            Location::whole_artifact(),
            format!(
                "{} migration hops exceed what the 3-bit PE_src tag can attribute; \
                 the wire format needs an explicit hop field (§6.1 projection)",
                config.migration_hops
            ),
        ));
    }
}

/// S001/S003/S004/S005/S006 and the slot-level half of R001 over one
/// schedule; S002 when the source matrix is supplied.
pub(crate) fn check_schedule(
    schedule: &ScheduledMatrix,
    source: Option<&CooMatrix>,
    report: &mut Report,
) {
    let cfg = &schedule.config;
    let pes = cfg.pes_per_channel;

    // S006: channel-list shape.
    if schedule.channels.len() != cfg.channels {
        report.push(Diagnostic::error(
            RuleId::S006,
            Location::whole_artifact(),
            format!(
                "schedule carries {} channel lists for a {}-channel configuration",
                schedule.channels.len(),
                cfg.channels
            ),
        ));
    }
    for (c, ch) in schedule.channels.iter().enumerate() {
        if ch.channel != c {
            report.push(Diagnostic::error(
                RuleId::S006,
                Location::channel(c),
                format!(
                    "channel list at position {c} is labelled channel {}",
                    ch.channel
                ),
            ));
        }
        for (cycle, slots) in ch.grid.iter().enumerate() {
            if slots.len() != pes {
                report.push(Diagnostic::error(
                    RuleId::S006,
                    cycle_loc(c, cycle),
                    format!("cycle carries {} lanes; the PEG has {pes} PEs", slots.len()),
                ));
            }
        }
    }
    // S006: trimmed-or-equalized channel lengths. The equalized stream is as
    // long as the longest channel, so a trailing all-stall cycle on every
    // longest channel inflates the whole stream for nothing (Error); a
    // shorter channel carrying physical trailing stalls is wasteful but does
    // not lengthen the stream (Warn) — schedulers keep that padding virtual.
    let stream = schedule.stream_cycles();
    if stream > 0 {
        let longest_all_end_stalled = schedule
            .channels
            .iter()
            .filter(|ch| ch.cycles() == stream)
            .all(|ch| {
                ch.grid
                    .last()
                    .is_some_and(|s| s.iter().all(Option::is_none))
            });
        for (c, ch) in schedule.channels.iter().enumerate() {
            let ends_stalled = ch
                .grid
                .last()
                .is_some_and(|s| s.iter().all(Option::is_none));
            if !ends_stalled {
                continue;
            }
            if ch.cycles() == stream && longest_all_end_stalled {
                report.push(Diagnostic::error(
                    RuleId::S006,
                    cycle_loc(c, ch.cycles() - 1),
                    "trailing all-stall cycle inflates the equalized stream length; \
                     trim it before packing"
                        .to_string(),
                ));
            } else if ch.cycles() < stream {
                report.push(Diagnostic::warning(
                    RuleId::S006,
                    cycle_loc(c, ch.cycles() - 1),
                    "channel carries physical trailing stall padding; the equalized \
                     length is implied, keep the padding virtual"
                        .to_string(),
                ));
            }
        }
    }

    // Per-slot rules: S001 packability, S004 hop budget, S005 tag
    // consistency, R001 ScUG bank addressing.
    for (c, ch) in schedule.channels.iter().enumerate() {
        for (cycle, slots) in ch.grid.iter().enumerate() {
            for (lane, slot) in slots.iter().enumerate() {
                let Some(nz) = slot else { continue };
                let here = Location::slot(c, cycle, lane);
                if nz.value.to_bits() == 0 {
                    report.push(Diagnostic::error(
                        RuleId::S001,
                        here,
                        format!(
                            "entry ({}, {}) has value +0.0, whose packed word collides \
                             with the reserved stall word",
                            nz.row, nz.col
                        ),
                    ));
                }
                let local = cfg.local_row(nz.row);
                if local >= MAX_LOCAL_ROWS {
                    report.push(Diagnostic::error(
                        RuleId::S001,
                        here,
                        format!(
                            "row {} has per-PE address {local}, beyond the 15-bit row \
                             field ({MAX_LOCAL_ROWS} rows per PE); row-partition the matrix",
                            nz.row
                        ),
                    ));
                }
                if nz.col >= WINDOW {
                    report.push(Diagnostic::error(
                        RuleId::S001,
                        here,
                        format!(
                            "column {} exceeds the 13-bit in-window budget (W = {WINDOW}); \
                             schedule one column window at a time",
                            nz.col
                        ),
                    ));
                }
                if (nz.pe_src as u32) >= (1 << PE_SRC_BITS) {
                    report.push(Diagnostic::error(
                        RuleId::S001,
                        here,
                        format!("PE_src {} exceeds the 3-bit source-PE tag", nz.pe_src),
                    ));
                }

                let home = cfg.channel_for_row(nz.row);
                if nz.pvt {
                    if home != c {
                        report.push(Diagnostic::error(
                            RuleId::S005,
                            here,
                            format!(
                                "slot tagged private, but row {} belongs to channel {home}, \
                                 not the streaming channel {c}",
                                nz.row
                            ),
                        ));
                    }
                    if nz.pe_src != 0 {
                        report.push(Diagnostic::error(
                            RuleId::S005,
                            here,
                            format!(
                                "private slot carries PE_src {} (private elements set 0)",
                                nz.pe_src
                            ),
                        ));
                    }
                } else if home == c {
                    report.push(Diagnostic::error(
                        RuleId::S005,
                        here,
                        format!(
                            "slot tagged migrated, but row {}'s home is the streaming \
                             channel {c} itself",
                            nz.row
                        ),
                    ));
                } else {
                    let hop = cfg.hop_for(c, home);
                    if hop > cfg.migration_hops {
                        report.push(Diagnostic::error(
                            RuleId::S004,
                            here,
                            format!(
                                "row {} migrated {hop} hop(s) from home channel {home} to \
                                 channel {c}; the budget is {} neighbour hop(s), and lists \
                                 never wrap past the last channel (§3.4)",
                                nz.row, cfg.migration_hops
                            ),
                        ));
                    }
                    let expected_lane = cfg.lane_for_row(nz.row);
                    if (nz.pe_src as usize) != expected_lane {
                        report.push(Diagnostic::error(
                            RuleId::S005,
                            here,
                            format!(
                                "migrated slot carries PE_src {}, but row {}'s home lane \
                                 is {expected_lane}",
                                nz.pe_src, nz.row
                            ),
                        ));
                    }
                    // R001: the Reduction Unit resolves a migrated element to
                    // ScUG bank (hop-1)·PEs + PE_src; a tag outside the lane
                    // range addresses a bank the hardware does not have.
                    if hop >= 1 && hop <= cfg.migration_hops && (nz.pe_src as usize) >= pes {
                        report.push(Diagnostic::error(
                            RuleId::R001,
                            here,
                            format!(
                                "PE_src {} addresses ScUG bank {}, but the channel's ScUG \
                                 has {} banks ({pes} lanes × {} hop(s))",
                                nz.pe_src,
                                (hop - 1) * pes + nz.pe_src as usize,
                                pes * cfg.migration_hops,
                                cfg.migration_hops
                            ),
                        ));
                    }
                }
            }
        }
    }

    // S003: RAW distance within every destination PE, all violations.
    let d = cfg.dependency_distance;
    for (c, ch) in schedule.channels.iter().enumerate() {
        let width = ch.grid.iter().map(Vec::len).max().unwrap_or(0);
        for lane in 0..width {
            let mut last: HashMap<usize, usize> = HashMap::new();
            for (cycle, slots) in ch.grid.iter().enumerate() {
                let Some(nz) = slots.get(lane).copied().flatten() else {
                    continue;
                };
                if let Some(&prev) = last.get(&nz.row) {
                    if cycle - prev < d {
                        report.push(Diagnostic::error(
                            RuleId::S003,
                            Location::slot(c, cycle, lane),
                            format!(
                                "RAW violation: row {} re-enters its PE at cycle {cycle}, \
                                 only {} cycle(s) after cycle {prev} (accumulator depth {d})",
                                nz.row,
                                cycle - prev
                            ),
                        ));
                    }
                }
                last.insert(nz.row, cycle);
            }
        }
    }

    // S002: conservation against the source matrix.
    if let Some(source) = source {
        let slots = schedule.channels.iter().enumerate().flat_map(|(c, ch)| {
            ch.grid.iter().enumerate().flat_map(move |(cycle, row)| {
                row.iter().enumerate().filter_map(move |(lane, slot)| {
                    slot.as_ref()
                        .map(|nz| (nz.row, nz.col, nz.value, Location::slot(c, cycle, lane)))
                })
            })
        });
        check_conservation(slots, source, report);
    }
}

/// S002 over an arbitrary slot stream in *source* coordinates (shared by the
/// schedule-level check and the plan-level global check, which offsets rows
/// and columns by the pass/window origin first).
pub(crate) fn check_conservation(
    slots: impl Iterator<Item = (usize, usize, f32, Location)>,
    source: &CooMatrix,
    report: &mut Report,
) {
    let mut seen: HashMap<(usize, usize), Vec<(f32, Location)>> = HashMap::new();
    for (row, col, value, loc) in slots {
        seen.entry((row, col)).or_default().push((value, loc));
    }
    let mut source_at: HashMap<(usize, usize), f32> = HashMap::with_capacity(source.nnz());
    for &(r, c, v) in source.iter() {
        source_at.insert((r, c), v);
    }
    // Duplicates and foreign entries, in deterministic location order.
    let mut keys: Vec<&(usize, usize)> = seen.keys().collect();
    keys.sort();
    for &&(r, c) in &keys {
        let copies = &seen[&(r, c)];
        if copies.len() > 1 {
            let identical = copies.windows(2).all(|w| w[0].0 == w[1].0);
            let first = copies[0].1;
            for &(_, loc) in &copies[1..] {
                report.push(Diagnostic::error(
                    RuleId::S002,
                    loc,
                    format!(
                        "entry ({r}, {c}) scheduled more than once{}: first at {first}",
                        if identical {
                            " with an identical value"
                        } else {
                            ""
                        }
                    ),
                ));
            }
        }
        match source_at.get(&(r, c)) {
            None => {
                report.push(Diagnostic::error(
                    RuleId::S002,
                    copies[0].1,
                    format!("entry ({r}, {c}) does not exist in the source matrix"),
                ));
            }
            Some(&sv) if copies[0].0 != sv => {
                report.push(Diagnostic::error(
                    RuleId::S002,
                    copies[0].1,
                    format!(
                        "entry ({r}, {c}) scheduled with value {}, but the source holds {sv}",
                        copies[0].0
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for &(r, c, v) in source.iter() {
        if !seen.contains_key(&(r, c)) {
            report.push(Diagnostic::error(
                RuleId::S002,
                Location::whole_artifact(),
                format!("source entry ({r}, {c}) = {v} is missing from the schedule"),
            ));
        }
    }
}

/// P001 over one pass (window bounds, stored stats, config coherence) plus
/// the full structural rule set over each window's schedule. `window_base`
/// is the global index of the pass's first window within its plan;
/// `max_width` is the plan's column-window width.
pub(crate) fn check_pass(
    pass: &PassPlan,
    config: &SchedulerConfig,
    max_width: usize,
    window_base: usize,
    report: &mut Report,
) {
    if pass.row_end < pass.row_start || (pass.row_end == pass.row_start && pass.nnz > 0) {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "pass covers rows {}..{} yet records {} non-zeros",
                pass.row_start, pass.row_end, pass.nnz
            ),
        ));
    }
    let window_nnz: usize = pass.windows.iter().map(|w| w.nnz).sum();
    if window_nnz != pass.nnz {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "pass records {} non-zeros but its windows sum to {window_nnz}",
                pass.nnz
            ),
        ));
    }
    for (j, pair) in pass.windows.windows(2).enumerate() {
        if pair[0].col_end != pair[1].col_start {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact().in_window(window_base + j + 1),
                format!(
                    "windows are not contiguous: previous ends at column {}, next \
                     starts at {}",
                    pair[0].col_end, pair[1].col_start
                ),
            ));
        }
    }
    for (j, w) in pass.windows.iter().enumerate() {
        let widx = window_base + j;
        let wloc = Location::whole_artifact().in_window(widx);
        if w.col_end <= w.col_start {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                format!(
                    "window covers the empty column range {}..{}",
                    w.col_start, w.col_end
                ),
            ));
        } else if w.col_end - w.col_start > max_width {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                format!(
                    "window spans {} columns; the plan was partitioned at width {max_width}",
                    w.col_end - w.col_start
                ),
            ));
        }
        if w.schedule.config != *config {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                "window was scheduled under a different configuration than the plan key"
                    .to_string(),
            ));
        }
        if w.nnz != w.schedule.scheduled_nonzeros() {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                format!(
                    "window records {} non-zeros but its schedule holds {}",
                    w.nnz,
                    w.schedule.scheduled_nonzeros()
                ),
            ));
        }
        if w.stalls != w.schedule.stalls() {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                format!(
                    "window records {} stalls but its schedule implies {}",
                    w.stalls,
                    w.schedule.stalls()
                ),
            ));
        }
        if w.stream_cycles != w.schedule.stream_cycles() {
            report.push(Diagnostic::error(
                RuleId::P001,
                wloc,
                format!(
                    "window records {} stream cycles but its schedule implies {}",
                    w.stream_cycles,
                    w.schedule.stream_cycles()
                ),
            ));
        }
        let mut inner = Report::new();
        check_schedule(&w.schedule, None, &mut inner);
        report.merge_window(inner, widx);
    }
}

/// P001 over a whole plan: key/fingerprint coherence, pass/window coverage,
/// stored stats, and (with the source matrix) global conservation.
pub(crate) fn check_plan(plan: &SpmvPlan, source: Option<&CooMatrix>, report: &mut Report) {
    check_config(&plan.key.config, report);
    if plan.window == 0 || plan.window > WINDOW {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "plan window width {} is outside the 13-bit budget (1..={WINDOW})",
                plan.window
            ),
        ));
    }
    if plan.engine != "chason" && plan.engine != "serpens" {
        report.push(Diagnostic::warning(
            RuleId::P001,
            Location::whole_artifact(),
            format!("plan names unknown engine family {:?}", plan.engine),
        ));
    }
    if plan.passes.is_empty() {
        if plan.rows > 0 {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact(),
                format!("plan covers {} rows but contains no passes", plan.rows),
            ));
        }
        return;
    }
    // Row-partition coverage: contiguous, ascending, spanning 0..rows.
    if plan.passes[0].row_start != 0 {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "first pass starts at row {}, not 0",
                plan.passes[0].row_start
            ),
        ));
    }
    for pair in plan.passes.windows(2) {
        if pair[0].row_end != pair[1].row_start {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact(),
                format!(
                    "passes are not contiguous: previous ends at row {}, next starts at {}",
                    pair[0].row_end, pair[1].row_start
                ),
            ));
        }
    }
    // `row_end` is rounded up to the partition span for every pass but the
    // last, which must land exactly on the matrix height.
    if let Some(last) = plan.passes.last() {
        if last.row_end != plan.rows {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact(),
                format!(
                    "last pass ends at row {}, but the plan covers {} rows",
                    last.row_end, plan.rows
                ),
            ));
        }
    }
    let pass_nnz: usize = plan.passes.iter().map(|p| p.nnz).sum();
    if pass_nnz != plan.nnz {
        report.push(Diagnostic::error(
            RuleId::P001,
            Location::whole_artifact(),
            format!(
                "plan records {} non-zeros but its passes sum to {pass_nnz}",
                plan.nnz
            ),
        ));
    }
    let mut window_base = 0usize;
    for pass in &plan.passes {
        if let (Some(first), Some(last)) = (pass.windows.first(), pass.windows.last()) {
            if first.col_start != 0 || last.col_end != plan.cols {
                report.push(Diagnostic::error(
                    RuleId::P001,
                    Location::whole_artifact().in_window(window_base),
                    format!(
                        "pass windows cover columns {}..{}, but the plan spans 0..{}",
                        first.col_start, last.col_end, plan.cols
                    ),
                ));
            }
        } else if pass.nnz > 0 {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact(),
                format!("pass records {} non-zeros but has no windows", pass.nnz),
            ));
        }
        check_pass(pass, &plan.key.config, plan.window, window_base, report);
        window_base += pass.windows.len();
    }

    if let Some(source) = source {
        if plan.key.fingerprint != matrix_fingerprint(source) {
            report.push(Diagnostic::error(
                RuleId::P001,
                Location::whole_artifact(),
                "plan fingerprint does not match the supplied source matrix".to_string(),
            ));
        }
        for (got, want, what) in [
            (plan.rows, source.rows(), "rows"),
            (plan.cols, source.cols(), "columns"),
            (plan.nnz, source.nnz(), "non-zeros"),
        ] {
            if got != want {
                report.push(Diagnostic::error(
                    RuleId::P001,
                    Location::whole_artifact(),
                    format!("plan records {got} {what}, the source matrix has {want}"),
                ));
            }
        }
        // Global conservation: map every slot back to source coordinates
        // through its pass's row origin and window's column origin.
        let mut window_base = 0usize;
        let mut slots: Vec<(usize, usize, f32, Location)> = Vec::with_capacity(plan.nnz);
        for pass in &plan.passes {
            for (j, w) in pass.windows.iter().enumerate() {
                for (c, ch) in w.schedule.channels.iter().enumerate() {
                    for (cycle, row) in ch.grid.iter().enumerate() {
                        for (lane, slot) in row.iter().enumerate() {
                            if let Some(nz) = slot {
                                slots.push((
                                    pass.row_start + nz.row,
                                    w.col_start + nz.col,
                                    nz.value,
                                    Location::slot(c, cycle, lane).in_window(window_base + j),
                                ));
                            }
                        }
                    }
                }
            }
            window_base += pass.windows.len();
        }
        check_conservation(slots.into_iter(), source, report);
    }
}
