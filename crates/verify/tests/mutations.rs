//! The schedule fuzzer: clean schedules across the generator corpus must
//! verify silently; targeted corruptions must each trip their rule.

use chason_core::plan::{PassPlan, PlanKey, PlanWindow, SpmvPlan};
use chason_core::schedule::{Crhcs, Scheduler, SchedulerConfig};
use chason_core::window::partition_columns;
use chason_sparse::generators::{power_law, uniform_random};
use chason_sparse::CooMatrix;
use chason_testutil::{archetype_corpus as corpus, config_grid as configs, schedulers};
use chason_verify::mutate::Corruption;
use chason_verify::{verify_config, verify_pass, verify_plan, verify_schedule, RuleId};
use proptest::prelude::*;

/// Every clean schedule across the corpus verifies with zero diagnostics —
/// the analyzer does not cry wolf on either the Serpens baseline or CrHCS.
#[test]
fn clean_schedules_verify_silently() {
    for (name, m) in corpus() {
        for cfg in configs() {
            for sched in schedulers() {
                let s = sched.schedule(&m, &cfg);
                let report = verify_schedule(&s, Some(&m));
                assert!(
                    report.is_clean(),
                    "{} on {name} under {cfg:?} is not clean:\n{report}",
                    sched.name()
                );
            }
        }
    }
}

/// Every corruption fires its targeted rule on every schedule that offers a
/// site for it, across the whole corpus; at least six distinct rules fire.
#[test]
fn targeted_corruptions_fire_their_rules() {
    let mut fired = std::collections::BTreeSet::new();
    let mut applications = 0usize;
    for (name, m) in corpus() {
        for cfg in configs() {
            for sched in schedulers() {
                for corruption in Corruption::ALL {
                    let mut s = sched.schedule(&m, &cfg);
                    if !corruption.apply(&mut s) {
                        continue;
                    }
                    applications += 1;
                    let report = verify_schedule(&s, Some(&m));
                    let rule = corruption.expected_rule();
                    assert!(
                        report.has_rule(rule),
                        "{corruption:?} on {} × {name} under {cfg:?} should fire {rule}; \
                         got:\n{report}",
                        sched.name()
                    );
                    assert!(report.has_errors());
                    fired.insert(rule);
                }
            }
        }
    }
    assert!(
        applications > 50,
        "corpus too thin: {applications} applications"
    );
    assert!(
        fired.len() >= 6,
        "only {} distinct rules fired: {fired:?}",
        fired.len()
    );
}

/// A fixture carrying several independent corruptions reports *all* of them
/// in one run — the analyzer never bails at the first finding.
#[test]
fn multiply_corrupted_fixture_reports_every_violation() {
    let m = power_law(120, 120, 900, 1.8, 11);
    let cfg = SchedulerConfig::toy(4, 4, 6);
    let mut s = Crhcs::new().schedule(&m, &cfg);
    // Drop first: both it and ZeroValue target the first non-zero, and
    // dropping second would delete the zeroed slot again.
    let stack = [
        Corruption::DropElement,
        Corruption::ZeroValue,
        Corruption::TagFlip,
        Corruption::PhantomPadding,
    ];
    for c in stack {
        assert!(c.apply(&mut s), "{c:?} found no site");
    }
    let report = verify_schedule(&s, Some(&m));
    for c in stack {
        assert!(
            report.has_rule(c.expected_rule()),
            "missing {} after {c:?}:\n{report}",
            c.expected_rule()
        );
    }
    assert!(report.error_count() >= stack.len());
    let rendered = report.render();
    for code in ["S001", "S002", "S005", "S006"] {
        assert!(rendered.contains(&format!("[{code}]")), "{rendered}");
    }
    assert!(rendered.contains("-->"), "{rendered}");
    assert!(rendered.contains("verification failed"), "{rendered}");
}

/// R001 at the configuration level: hop counts whose ScUG banks exceed the
/// Alveo U55c's URAM budget are errors; affordable multi-hop configs warn
/// about the missing wire-format hop field.
#[test]
fn config_uram_budget_is_enforced() {
    let ok = verify_config(&SchedulerConfig::paper());
    assert!(ok.is_clean(), "{ok}");

    let mut two_hops = SchedulerConfig::paper();
    two_hops.migration_hops = 2; // 16 × 8 × (3·2 + 1) = 896 ≤ 960
    let r = verify_config(&two_hops);
    assert!(!r.has_errors(), "{r}");
    assert!(r.has_rule(RuleId::R001), "{r}");

    let mut three_hops = SchedulerConfig::paper();
    three_hops.migration_hops = 3; // 16 × 8 × 10 = 1280 > 960
    let r = verify_config(&three_hops);
    assert!(r.has_errors(), "{r}");
    assert!(r.has_rule(RuleId::R001), "{r}");
}

/// R001 at the slot level: a migrated element whose `PE_src` tag addresses
/// a ScUG bank the channel does not have.
#[test]
fn scug_bank_overflow_is_flagged() {
    let m = power_law(120, 120, 900, 1.8, 11);
    let cfg = SchedulerConfig::toy(4, 4, 6); // 4 lanes -> banks 0..4
    let mut s = Crhcs::new().schedule(&m, &cfg);
    let site = s
        .channels
        .iter_mut()
        .flat_map(|ch| ch.grid.iter_mut().flatten())
        .filter_map(Option::as_mut)
        .find(|nz| !nz.pvt)
        .expect("CrHCS migrates on a skewed matrix");
    site.pe_src = 7; // valid for the 3-bit tag, beyond the 4-lane ScUG
    let report = verify_schedule(&s, Some(&m));
    assert!(report.has_rule(RuleId::R001), "{report}");
    assert!(
        report.has_rule(RuleId::S005),
        "wrong-lane tag too: {report}"
    );
}

/// Builds a coherent single-pass plan by hand (windowed CrHCS schedules with
/// accurate stored stats), the baseline for the P001 corruption tests.
fn hand_plan(m: &CooMatrix, cfg: SchedulerConfig, width: usize) -> SpmvPlan {
    let windows = partition_columns(m, width)
        .into_iter()
        .map(|w| {
            let schedule = Crhcs::new().schedule(&w.matrix, &cfg);
            PlanWindow {
                col_start: w.col_start,
                col_end: w.col_end,
                nnz: w.matrix.nnz(),
                stalls: schedule.stalls(),
                stream_cycles: schedule.stream_cycles(),
                schedule,
            }
        })
        .collect::<Vec<_>>();
    SpmvPlan {
        key: PlanKey::new(m, cfg),
        engine: "chason".to_string(),
        window: width,
        rows: m.rows(),
        cols: m.cols(),
        nnz: m.nnz(),
        passes: vec![PassPlan {
            row_start: 0,
            row_end: m.rows(),
            nnz: m.nnz(),
            windows,
        }],
    }
}

#[test]
fn coherent_plan_verifies_silently() {
    let m = uniform_random(80, 300, 1200, 21);
    let plan = hand_plan(&m, SchedulerConfig::toy(4, 4, 6), 100);
    let report = verify_plan(&plan, Some(&m));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn plan_incoherences_all_fire_p001() {
    let m = uniform_random(80, 300, 1200, 21);
    let cfg = SchedulerConfig::toy(4, 4, 6);
    let base = hand_plan(&m, cfg, 100);

    // Stale window stats, located at the offending window.
    let mut stale = base.clone();
    stale.passes[0].windows[1].nnz += 1;
    let r = verify_plan(&stale, Some(&m));
    assert!(r.has_rule(RuleId::P001), "{r}");
    assert!(
        r.diagnostics()
            .iter()
            .any(|d| d.rule == RuleId::P001 && d.location.window == Some(1)),
        "{r}"
    );

    // Fingerprint drift: the plan no longer matches the supplied matrix.
    let mut drifted = base.clone();
    drifted.key.fingerprint ^= 1;
    assert!(verify_plan(&drifted, Some(&m)).has_rule(RuleId::P001));
    // Without the source the fingerprint cannot be checked; still coherent.
    assert!(verify_plan(&drifted, None).is_clean());

    // A hole in the window coverage.
    let mut gappy = base.clone();
    gappy.passes[0].windows.remove(1);
    gappy.passes[0].nnz = gappy.passes[0].windows.iter().map(|w| w.nnz).sum();
    gappy.nnz = gappy.passes[0].nnz;
    let r = verify_plan(&gappy, None);
    assert!(r.has_rule(RuleId::P001), "{r}");

    // Window wider than the declared partition width.
    let mut wide = base.clone();
    wide.window = 50;
    assert!(verify_plan(&wide, None).has_rule(RuleId::P001));

    // Unknown engine family is a warning, not an error.
    let mut odd = base;
    odd.engine = "abacus".to_string();
    let r = verify_plan(&odd, Some(&m));
    assert!(!r.has_errors(), "{r}");
    assert!(r.has_rule(RuleId::P001), "{r}");
}

#[test]
fn pass_verifier_checks_window_stats() {
    let m = uniform_random(80, 300, 1200, 21);
    let cfg = SchedulerConfig::toy(4, 4, 6);
    let plan = hand_plan(&m, cfg, 100);
    let clean = verify_pass(&plan.passes[0], &cfg, 100);
    assert!(clean.is_clean(), "{clean}");

    let mut pass = plan.passes[0].clone();
    pass.windows[2].stream_cycles += 5;
    pass.windows[0].stalls += 3;
    let r = verify_pass(&pass, &cfg, 100);
    assert_eq!(r.error_count(), 2, "{r}");
    assert!(r.has_rule(RuleId::P001));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary clean schedules stay silent under the full rule set.
    #[test]
    fn random_clean_schedules_verify_silently(
        m in chason_testutil::sparse_matrix_nonempty(40, 120),
        channels in 1usize..=4,
        pes in 1usize..=8,
        d in 2usize..=10,
    ) {
        let cfg = SchedulerConfig::toy(channels, pes, d);
        for sched in schedulers() {
            let s = sched.schedule(&m, &cfg);
            let report = verify_schedule(&s, Some(&m));
            prop_assert!(report.is_clean(), "{}:\n{report}", sched.name());
        }
    }

    /// Random corruption draws always trip their targeted rule.
    #[test]
    fn random_corruptions_are_caught(
        m in chason_testutil::sparse_matrix_nonempty(40, 120),
        which in 0usize..10,
        channels in 2usize..=4,
        pes in 2usize..=4,
    ) {
        let cfg = SchedulerConfig::toy(channels, pes, 4);
        let corruption = Corruption::ALL[which];
        let mut s = Crhcs::new().schedule(&m, &cfg);
        prop_assume!(corruption.apply(&mut s));
        let report = verify_schedule(&s, Some(&m));
        prop_assert!(
            report.has_rule(corruption.expected_rule()),
            "{corruption:?} missed:\n{report}"
        );
    }
}
