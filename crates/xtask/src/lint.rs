//! The `cargo xtask lint` source-hygiene pass.
//!
//! Five rules, pure `std`, no parsing beyond line heuristics — cheap
//! enough to run on every CI job and every local commit:
//!
//! * **L001** — no un-annotated `.unwrap()` / `.expect(` in *non-test*
//!   workspace code (every `crates/*/src` plus the root crate). The
//!   stack's contract is typed errors (`SimError`, `ScheduleError`, ...);
//!   a panic site must carry an `#[allow(clippy::unwrap_used)]` /
//!   `#[allow(clippy::expect_used)]` annotation (same line or up to three
//!   lines above) stating why it cannot fire.
//! * **L002** — no `todo!(` / `unimplemented!(` anywhere in workspace
//!   sources: the repo reproduces a paper, and a stub that type-checks but
//!   aborts at runtime silently poisons benchmark sweeps.
//! * **L003** — every `pub` item in `chason-core` carries a doc comment.
//!   `chason-core` is the contribution layer (§3 of the paper); its API
//!   docs are how schedule semantics are specified.
//! * **L004** — no `println!` / `eprintln!` in library crates
//!   (`chason-core`, `chason-sim`, `chason-serve`, `chason-telemetry`,
//!   and the root crate's solvers). Libraries report through telemetry
//!   (metrics, spans) or typed return values; stdout/stderr belong to the
//!   CLI and xtask binaries.
//! * **L005** — no `Ordering::Relaxed` outside the telemetry counter
//!   modules unless the site carries a `// relaxed:` justification (same
//!   line or up to three lines above). Relaxed atomics are invisible to
//!   happens-before reasoning — `chason-race` models them as carrying *no*
//!   ordering edge — so every site must say why that is sufficient
//!   (typically: a monotonic counter whose value is only read after a
//!   join or another acquire edge).
//!
//! Violations render in `rustc` style and the binary exits non-zero, so
//! the pass composes with CI exactly like `cargo clippy -- -D warnings`.

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (`L001`..`L004`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
    /// How to fix it.
    pub note: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}", self.path, self.line)?;
        write!(f, "  = note: {}", self.note)
    }
}

/// Returns the lines of `source` that are **outside** `#[cfg(test)]`
/// regions, paired with their 1-based line numbers.
///
/// A `#[cfg(test)]` attribute hides the item it gates: either the next
/// brace-matched block (a `mod tests { .. }`, a gated `impl`/`fn`) or, for
/// braceless items (`#[cfg(test)] use ..;`), the next statement line.
/// Brace counting ignores `//` comment tails; string literals containing
/// braces inside test code are rare enough not to matter for a lint.
fn non_test_lines(source: &str) -> Vec<(usize, &str)> {
    let mut kept = Vec::new();
    let mut depth = 0usize; // brace depth inside a test region
    let mut entered = false; // saw the region's opening brace
    let mut pending = false; // saw #[cfg(test)], waiting for the item
    for (idx, line) in source.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        if !pending && depth == 0 && !entered {
            if line.contains("#[cfg(test)]") {
                pending = true;
                continue;
            }
            kept.push((idx + 1, line));
            continue;
        }
        // Inside (or entering) a test region: count braces to find its end.
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if pending && !entered {
            if opens > 0 {
                entered = true;
                pending = false;
            } else if code.contains(';') {
                pending = false; // braceless gated item: skip this line only
                continue;
            } else {
                continue; // further attributes / signature lines
            }
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if depth == 0 {
            entered = false;
        }
    }
    kept
}

fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether `lines[idx]` (or up to `back` raw lines above it) carries an
/// `allow(clippy::unwrap_used)` / `allow(clippy::expect_used)` annotation.
fn is_annotated(raw_lines: &[&str], idx: usize, back: usize) -> bool {
    let lo = idx.saturating_sub(back);
    raw_lines[lo..=idx]
        .iter()
        .any(|l| l.contains("allow(clippy::unwrap_used") || l.contains("allow(clippy::expect_used"))
}

/// **L001**: un-annotated `.unwrap()` / `.expect("..")` in non-test code.
///
/// `expect` is only matched with a literal message (`.expect("`): several
/// workspace types (the serve client, the trace JSON parser) define their
/// own `expect` methods whose operands are requests or bytes, and those are
/// typed-error APIs, not panic sites. Needles are assembled at runtime so
/// this file does not flag itself.
pub fn check_unwraps(path: &str, source: &str) -> Vec<Violation> {
    let unwrap_needle = [".unw", "rap()"].concat();
    let expect_needle = [".exp", "ect(\""].concat();
    let raw: Vec<&str> = source.lines().collect();
    non_test_lines(source)
        .into_iter()
        .filter(|(_, line)| !is_comment(line))
        .filter_map(|(n, line)| {
            let call = if line.contains(&unwrap_needle) {
                unwrap_needle.as_str()
            } else if line.contains(&expect_needle) {
                ".expect(..)"
            } else {
                return None;
            };
            if is_annotated(&raw, n - 1, 3) {
                return None;
            }
            Some(Violation {
                rule: "L001",
                path: path.to_string(),
                line: n,
                message: format!("un-annotated `{call}` in non-test code"),
                note: "return a typed error, or justify the panic with \
                       `#[allow(clippy::unwrap_used)] // reason` on or above this line",
            })
        })
        .collect()
}

/// **L002**: `todo!(` / `unimplemented!(` anywhere (tests included).
pub fn check_stubs(path: &str, source: &str) -> Vec<Violation> {
    // Needles are assembled at runtime so this file does not flag itself.
    let needles = [["to", "do!("].concat(), ["unimplemen", "ted!("].concat()];
    source
        .lines()
        .enumerate()
        .filter(|(_, line)| !is_comment(line))
        .filter_map(|(idx, line)| {
            let hit = needles.iter().find(|n| line.contains(n.as_str()))?;
            Some(Violation {
                rule: "L002",
                path: path.to_string(),
                line: idx + 1,
                message: format!("`{}..)` stub in workspace source", &hit[..hit.len() - 1]),
                note: "implement the body or remove the item; stubs that compile \
                       but abort poison benchmark sweeps",
            })
        })
        .collect()
}

/// **L004**: `println!` / `eprintln!` in library-crate sources (tests
/// excluded — asserting on rendered output there is fine).
pub fn check_prints(path: &str, source: &str) -> Vec<Violation> {
    // Needles are assembled at runtime so this file does not flag itself;
    // `eprintln!` is checked first because it contains `println!` as a
    // suffix.
    let needles = [["eprint", "ln!("].concat(), ["print", "ln!("].concat()];
    non_test_lines(source)
        .into_iter()
        .filter(|(_, line)| !is_comment(line))
        .filter_map(|(n, line)| {
            let hit = needles
                .iter()
                .find(|needle| line.contains(needle.as_str()))?;
            Some(Violation {
                rule: "L004",
                path: path.to_string(),
                line: n,
                message: format!("`{}..)` in library code", &hit[..hit.len() - 1]),
                note: "libraries must not write to stdout/stderr; record a \
                       telemetry metric or span, or return the text to the caller",
            })
        })
        .collect()
}

/// Whether `lines[idx]` (or up to three raw lines above it) carries a
/// `// relaxed:` justification comment.
fn is_relaxed_justified(raw_lines: &[&str], idx: usize) -> bool {
    let lo = idx.saturating_sub(3);
    raw_lines[lo..=idx]
        .iter()
        .any(|l| l.contains("// relaxed:"))
}

/// **L005**: unjustified `Ordering::Relaxed` in non-test code (telemetry's
/// counter modules are exempt — relaxed counters are their whole design,
/// documented once at module level).
pub fn check_relaxed(path: &str, source: &str) -> Vec<Violation> {
    // Assembled at runtime so this file (and the xtask USAGE text) does not
    // flag itself.
    let needle = ["Ordering::Rel", "axed"].concat();
    let raw: Vec<&str> = source.lines().collect();
    non_test_lines(source)
        .into_iter()
        .filter_map(|(n, line)| {
            // Only flag code, not a mention in a comment tail.
            let code = line.split("//").next().unwrap_or("");
            if !code.contains(&needle) {
                return None;
            }
            if is_relaxed_justified(&raw, n - 1) {
                return None;
            }
            Some(Violation {
                rule: "L005",
                path: path.to_string(),
                line: n,
                message: format!("`{needle}` without a `// relaxed:` justification"),
                note: "relaxed atomics carry no happens-before edge (chason-race \
                       flags reads through them as races); justify with \
                       `// relaxed: <why no ordering is needed>` on or above this \
                       line, or upgrade to Acquire/Release",
            })
        })
        .collect()
}

const PUB_ITEM_PREFIXES: [&str; 11] = [
    "pub fn ",
    "pub async fn ",
    "pub unsafe fn ",
    "pub const fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub mod ",
];

/// Walks upward from the line above a `pub` item, skipping attributes, and
/// reports whether a doc comment is found.
fn has_doc_above(raw_lines: &[&str], item_idx: usize) -> bool {
    let mut idx = item_idx;
    let mut in_attr = false; // between a multi-line attribute's `)]` and `#[`
    while idx > 0 {
        idx -= 1;
        let t = raw_lines[idx].trim();
        if in_attr {
            if t.starts_with("#[") || t.starts_with("#!") {
                in_attr = false;
            }
            continue;
        }
        if t.starts_with("///") || t.starts_with("/**") || t.starts_with("#[doc") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#!") {
            continue; // single-line attribute between doc and item
        }
        if t.ends_with(")]") || t.ends_with("]") {
            in_attr = true; // closing line of a multi-line attribute
            continue;
        }
        return false;
    }
    false
}

/// **L003**: `pub` items without a doc comment (chason-core only).
pub fn check_docs(path: &str, source: &str) -> Vec<Violation> {
    let raw: Vec<&str> = source.lines().collect();
    non_test_lines(source)
        .into_iter()
        .filter_map(|(n, line)| {
            let t = line.trim_start();
            let prefix = PUB_ITEM_PREFIXES.iter().find(|p| t.starts_with(**p))?;
            // `pub mod x;` is documented by the `//!` header inside `x.rs`
            // (exactly how rustc's `missing_docs` treats it); only inline
            // `pub mod x { .. }` needs a comment here.
            if t.starts_with("pub mod ") && t.ends_with(';') {
                return None;
            }
            if has_doc_above(&raw, n - 1) {
                return None;
            }
            Some(Violation {
                rule: "L003",
                path: path.to_string(),
                line: n,
                message: format!(
                    "public item `{}..` has no doc comment",
                    &t[..prefix.len().min(t.len())]
                ),
                note: "chason-core is the paper's contribution layer; document \
                       what the item computes and which paper section it models",
            })
        })
        .collect()
}

/// Recursively collects the `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return files;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            files.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    files
}

/// Runs every lint over the workspace rooted at `root`; returns all
/// violations (the pass never bails on the first finding).
pub fn run(root: &Path) -> Vec<Violation> {
    let rel = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .into_owned()
    };
    let read = |p: &Path| std::fs::read_to_string(p).unwrap_or_default();
    let mut violations = Vec::new();

    // Workspace source dirs: the root crate plus every crates/*/src
    // (vendor shims excluded — they mirror external crates' APIs and are
    // not product code).
    let mut source_dirs: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<_> = entries.flatten().map(|e| e.path().join("src")).collect();
        crates.sort();
        source_dirs.extend(crates);
    }
    // L001: non-test code anywhere in the workspace must not panic silently.
    // L002: no stubs anywhere in workspace sources.
    // L005: relaxed atomics must be justified (telemetry counters exempt).
    let telemetry_src = root.join("crates/telemetry/src");
    for dir in &source_dirs {
        for file in rust_files(dir) {
            violations.extend(check_unwraps(&rel(&file), &read(&file)));
            violations.extend(check_stubs(&rel(&file), &read(&file)));
            if !file.starts_with(&telemetry_src) {
                violations.extend(check_relaxed(&rel(&file), &read(&file)));
            }
        }
    }
    // L003: the contribution layer is fully documented.
    for file in rust_files(&root.join("crates/core/src")) {
        violations.extend(check_docs(&rel(&file), &read(&file)));
    }
    // L004: library crates stay silent on stdout/stderr.
    for dir in [
        "src",
        "crates/core/src",
        "crates/sim/src",
        "crates/serve/src",
        "crates/telemetry/src",
    ] {
        for file in rust_files(&root.join(dir)) {
            violations.extend(check_prints(&rel(&file), &read(&file)));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_plain_code_is_flagged_and_annotation_silences() {
        let bad = "fn f() {\n    let x = g().unwrap();\n}\n";
        let v = check_unwraps("a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("L001", 2));
        let ok = "fn f() {\n    #[allow(clippy::unwrap_used)] // proven non-empty\n    \
                  let x = g().unwrap();\n}\n";
        assert!(check_unwraps("a.rs", ok).is_empty());
        let far = "fn f() {\n    #[allow(clippy::unwrap_used)]\n    a();\n    b();\n    c();\n    \
                   let x = g().unwrap();\n}\n";
        assert_eq!(check_unwraps("a.rs", far).len(), 1); // annotation > 3 lines away
    }

    #[test]
    fn test_modules_and_comments_are_exempt() {
        let src = "fn f() {}\n\
                   // g().unwrap() in a comment\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { g().unwrap(); }\n}\n";
        assert!(check_unwraps("a.rs", src).is_empty());
        // Braceless gated item, then real code after the region resumes.
        let src = "#[cfg(test)]\nuse helpers::x;\nfn f() { g().unwrap(); }\n";
        assert_eq!(check_unwraps("a.rs", src).len(), 1);
    }

    #[test]
    fn expect_variants_do_not_false_positive() {
        let src = "fn f() {\n    let a = r.unwrap_or(0);\n    let b = r.unwrap_or_else(h);\n    \
                   let c = r.expect_err(\"msg\");\n}\n";
        assert!(check_unwraps("a.rs", src).is_empty());
        // User-defined `expect` methods take non-string operands (the serve
        // client's request matcher, the trace parser's byte matcher).
        let methods = "fn f() {\n    let r = self.expect(&request)?;\n    \
                       p.expect(b':')?;\n}\n";
        assert!(check_unwraps("a.rs", methods).is_empty());
        let literal = "fn f() { r.expect(\"boom\"); }\n";
        assert_eq!(check_unwraps("a.rs", literal).len(), 1);
    }

    #[test]
    fn stub_macros_are_flagged_even_in_tests() {
        let stub = ["fn f() { to", "do!(\"later\") }\n"].concat();
        let v = check_stubs("a.rs", &stub);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L002");
        let gated = ["#[cfg(test)]\nmod t { fn g() { unimplemen", "ted!() } }\n"].concat();
        assert_eq!(check_stubs("a.rs", &gated).len(), 1);
    }

    #[test]
    fn library_prints_are_flagged_outside_tests() {
        let bad = ["fn f() { print", "ln!(\"x\"); }\n"].concat();
        let v = check_prints("a.rs", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("L004", 1));
        let err = ["fn f() { eprint", "ln!(\"x\"); }\n"].concat();
        let v = check_prints("a.rs", &err);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("eprint"), "{}", v[0].message);
        let gated = [
            "fn f() {}\n#[cfg(test)]\nmod t { fn g() { print",
            "ln!(\"ok\"); } }\n",
        ]
        .concat();
        assert!(check_prints("a.rs", &gated).is_empty());
        let comment = ["// print", "ln!(\"doc\")\nfn f() {}\n"].concat();
        assert!(check_prints("a.rs", &comment).is_empty());
    }

    #[test]
    fn pub_items_need_docs_attributes_notwithstanding() {
        let undocumented = "pub fn f() {}\n";
        assert_eq!(check_docs("a.rs", undocumented).len(), 1);
        let documented = "/// Does the thing.\npub fn f() {}\n";
        assert!(check_docs("a.rs", documented).is_empty());
        let derived = "/// A record.\n#[derive(\n    Debug,\n    Clone,\n)]\npub struct S;\n";
        assert!(check_docs("a.rs", derived).is_empty());
        let attr_only = "#[derive(Debug)]\npub struct S;\n";
        assert_eq!(check_docs("a.rs", attr_only).len(), 1);
        let private = "fn f() {}\npub(crate) fn g() {}\n";
        assert!(check_docs("a.rs", private).is_empty());
    }

    #[test]
    fn relaxed_needs_justification() {
        let bad = "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = check_relaxed("a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("L005", 1));
        let inline = "fn f() { c.fetch_add(1, Ordering::Relaxed); // relaxed: counter\n}\n";
        assert!(check_relaxed("a.rs", inline).is_empty());
        let above = "fn f() {\n    // relaxed: read only after join\n    \
                     c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(check_relaxed("a.rs", above).is_empty());
        let far = "fn f() {\n    // relaxed: too far away\n    a();\n    b();\n    c();\n    \
                   c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(check_relaxed("a.rs", far).len(), 1);
        // Mentions inside comments (doc or tail) are not flagged.
        let comment = "// Ordering::Relaxed is discussed here\nfn f() {}\n";
        assert!(check_relaxed("a.rs", comment).is_empty());
        let gated = "#[cfg(test)]\nmod t {\n    fn g() { c.load(Ordering::Relaxed); }\n}\n";
        assert!(check_relaxed("a.rs", gated).is_empty());
    }

    #[test]
    fn violations_render_rustc_style() {
        let v = check_unwraps("crates/sim/src/x.rs", "fn f() { g().unwrap(); }\n");
        let text = v[0].to_string();
        assert!(text.starts_with("error[L001]:"), "{text}");
        assert!(text.contains("--> crates/sim/src/x.rs:1"), "{text}");
        assert!(text.contains("= note:"), "{text}");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("xtask sits two levels under the workspace root");
        let violations = run(root);
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
