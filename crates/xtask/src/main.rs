//! `cargo xtask` — workspace automation, pure `std`.
//!
//! ```text
//! cargo xtask lint   # source-hygiene rules L001-L005; exits 1 on findings
//! cargo xtask bench  # release-build the CLI, run `chason bench <args...>`
//! cargo xtask race   # release-build chason-race, explore the model suites
//! ```

mod lint;

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
cargo xtask — workspace automation

USAGE:
  cargo xtask lint   # L001 un-annotated unwrap/expect (workspace-wide)
                     # L002 todo!/unimplemented! stubs (workspace-wide)
                     # L003 undocumented pub items (chason-core)
                     # L004 println!/eprintln! in library crates
                     # L005 unjustified relaxed atomic ordering outside telemetry
  cargo xtask bench [bench args...]
                     # wall-clock benchmarks via a release build of the CLI;
                     # args are forwarded to `chason bench` (see its --help)
  cargo xtask race [race args...]
                     # deterministic interleaving exploration of the model
                     # suites via a release build of `chason-race`
                     # (see `cargo xtask race --help`)";

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "lint" => {
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(Path::parent)
                .unwrap_or_else(|| Path::new("."));
            let violations = lint::run(root);
            for v in &violations {
                println!("{v}\n");
            }
            if violations.is_empty() {
                println!("xtask lint: workspace clean (L001, L002, L003, L004, L005)");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        "bench" => {
            // Benchmarks are meaningless unoptimized, so always go through
            // a release build of the CLI and forward the remaining args.
            let status = std::process::Command::new(env!("CARGO"))
                .args([
                    "run",
                    "--release",
                    "-p",
                    "chason-cli",
                    "--bin",
                    "chason",
                    "--",
                    "bench",
                ])
                .args(std::env::args().skip(2))
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("cannot launch cargo: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "race" => {
            // Exploration is schedule-bounded but thread-spawn-heavy, so a
            // release build of the runner keeps the suite under CI budgets.
            let status = std::process::Command::new(env!("CARGO"))
                .args([
                    "run",
                    "--release",
                    "-p",
                    "chason-race-models",
                    "--bin",
                    "chason-race",
                    "--",
                ])
                .args(std::env::args().skip(2))
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("cannot launch cargo: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "help" | "--help" | "" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown task '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
