use crate::{SparseError, Triplet};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A sparse matrix in coordinate (triplet) form.
///
/// `CooMatrix` is the construction-friendly format: entries can be supplied
/// in any order and the container validates bounds and duplicates. It is the
/// canonical input to both the schedulers and the format conversions.
///
/// Entries are stored sorted by `(row, col)` so that iteration order is
/// deterministic regardless of insertion order.
///
/// # Example
///
/// ```
/// use chason_sparse::CooMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(2, 2, vec![(1, 1, 4.0), (0, 0, 1.0)])?;
/// assert_eq!(m.nnz(), 2);
/// // Entries come back sorted by (row, col):
/// assert_eq!(m.triplets()[0], (0, 0, 1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Triplet>,
}

impl CooMatrix {
    /// Creates an empty matrix of the given shape with no explicit entries.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Builds a matrix from a list of `(row, col, value)` triplets.
    ///
    /// Entries may be given in any order; they are sorted internally.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::RowOutOfBounds`] / [`SparseError::ColOutOfBounds`]
    /// for out-of-range coordinates and [`SparseError::DuplicateEntry`] when
    /// two triplets share a coordinate.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<Triplet>,
    ) -> Result<Self, SparseError> {
        let mut seen = HashSet::with_capacity(triplets.len());
        for &(r, c, _) in &triplets {
            if r >= rows {
                return Err(SparseError::RowOutOfBounds { row: r, rows });
            }
            if c >= cols {
                return Err(SparseError::ColOutOfBounds { col: c, cols });
            }
            if !seen.insert((r, c)) {
                return Err(SparseError::DuplicateEntry { row: r, col: c });
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        Ok(CooMatrix {
            rows,
            cols,
            entries: triplets,
        })
    }

    /// Builds a matrix from triplets, summing values of duplicate coordinates
    /// instead of rejecting them (the MatrixMarket "general" convention).
    ///
    /// # Errors
    ///
    /// Returns an error only for out-of-bounds coordinates.
    pub fn from_triplets_summing(
        rows: usize,
        cols: usize,
        mut triplets: Vec<Triplet>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &triplets {
            if r >= rows {
                return Err(SparseError::RowOutOfBounds { row: r, rows });
            }
            if c >= cols {
                return Err(SparseError::ColOutOfBounds { col: c, cols });
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<Triplet> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            entries: merged,
        })
    }

    /// Inserts a single entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CooMatrix::from_triplets`].
    pub fn insert(&mut self, row: usize, col: usize, value: f32) -> Result<(), SparseError> {
        if row >= self.rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseError::ColOutOfBounds {
                col,
                cols: self.cols,
            });
        }
        match self
            .entries
            .binary_search_by_key(&(row, col), |&(r, c, _)| (r, c))
        {
            Ok(_) => Err(SparseError::DuplicateEntry { row, col }),
            Err(pos) => {
                self.entries.insert(pos, (row, col, value));
                Ok(())
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicit entries (non-zeros).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of cells that hold an explicit entry, in `[0, 1]`.
    ///
    /// Returns `0.0` for degenerate (zero-dimension) shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.entries.len() as f64 / cells
        }
    }

    /// The explicit entries, sorted by `(row, col)`.
    pub fn triplets(&self) -> &[Triplet] {
        &self.entries
    }

    /// Iterates over the explicit entries in `(row, col)` order.
    pub fn iter(&self) -> std::slice::Iter<'_, Triplet> {
        self.entries.iter()
    }

    /// Consumes the matrix and returns its entries, sorted by `(row, col)`.
    pub fn into_triplets(self) -> Vec<Triplet> {
        self.entries
    }

    /// Returns the transpose (entries mirrored across the diagonal).
    pub fn transpose(&self) -> CooMatrix {
        let mut t: Vec<Triplet> = self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect();
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: t,
        }
    }

    /// Computes `y = A·x` directly on the triplet representation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "dense vector length must equal matrix columns"
        );
        let mut y = vec![0.0f32; self.rows];
        for &(r, c, v) in &self.entries {
            y[r] += v * x[c];
        }
        y
    }
}

impl Default for CooMatrix {
    fn default() -> Self {
        CooMatrix::new(0, 0)
    }
}

impl<'a> IntoIterator for &'a CooMatrix {
    type Item = &'a Triplet;
    type IntoIter = std::slice::Iter<'a, Triplet>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_zero_nnz_and_density() {
        let m = CooMatrix::new(10, 10);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn degenerate_shape_density_is_zero() {
        let m = CooMatrix::new(0, 5);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn from_triplets_sorts_entries() {
        let m =
            CooMatrix::from_triplets(3, 3, vec![(2, 0, 1.0), (0, 1, 2.0), (0, 0, 3.0)]).unwrap();
        let coords: Vec<_> = m.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_row() {
        let err = CooMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert_eq!(err, SparseError::RowOutOfBounds { row: 2, rows: 2 });
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_col() {
        let err = CooMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]).unwrap_err();
        assert_eq!(err, SparseError::ColOutOfBounds { col: 5, cols: 2 });
    }

    #[test]
    fn from_triplets_rejects_duplicates() {
        let err = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap_err();
        assert_eq!(err, SparseError::DuplicateEntry { row: 0, col: 0 });
    }

    #[test]
    fn from_triplets_summing_merges_duplicates() {
        let m = CooMatrix::from_triplets_summing(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)])
            .unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.triplets()[0], (0, 0, 3.0));
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut m = CooMatrix::new(3, 3);
        m.insert(2, 2, 1.0).unwrap();
        m.insert(0, 0, 2.0).unwrap();
        m.insert(1, 1, 3.0).unwrap();
        let coords: Vec<_> = m.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn insert_rejects_duplicate() {
        let mut m = CooMatrix::new(2, 2);
        m.insert(0, 1, 1.0).unwrap();
        assert!(m.insert(0, 1, 9.0).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let m = CooMatrix::from_triplets(2, 3, vec![(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmv_matches_dense_computation() {
        // [1 0 2]   [1]   [7]
        // [0 3 0] * [2] = [6]
        let m =
            CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.spmv(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dense vector length")]
    fn spmv_panics_on_wrong_vector_length() {
        let m = CooMatrix::new(2, 3);
        let _ = m.spmv(&[1.0, 2.0]);
    }

    #[test]
    fn density_of_full_matrix_is_one() {
        let mut t = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                t.push((r, c, 1.0));
            }
        }
        let m = CooMatrix::from_triplets(4, 4, t).unwrap();
        assert!((m.density() - 1.0).abs() < 1e-12);
    }
}
