//! Row-block sharding of sparse matrices across backend instances.
//!
//! A [`ShardSpec`] partitions the row space `0..rows` of a matrix into
//! contiguous half-open ranges, one per shard. This is the software
//! analogue of the paper's cross-channel data placement: each shard owns a
//! row block (like an HBM channel group owns a row stripe in
//! Serpens/Sextans), computes the partial product for its rows, and a
//! reduction step reassembles the full output vector from the partials.
//!
//! The partitioner of record is [`ShardSpec::nnz_balanced`], which places
//! the cut points so every shard carries a near-equal share of the
//! non-zeros — row counts may be wildly uneven, but work (nnz) is what the
//! backends actually stream.

use crate::coo::CooMatrix;
use crate::error::SparseError;

/// A contiguous row-block partition of a matrix's row space.
///
/// Invariants (enforced by every constructor):
/// * at least one shard,
/// * ranges are non-empty, contiguous and in ascending order,
/// * the ranges exactly tile `0..rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    rows: usize,
    /// Half-open `[start, end)` row ranges, ascending and contiguous.
    ranges: Vec<(usize, usize)>,
}

impl ShardSpec {
    /// Builds a spec from explicit `[start, end)` ranges.
    ///
    /// The ranges must be non-empty, contiguous (each range starts where
    /// the previous one ended), start at row 0 and end at `rows`.
    pub fn from_ranges(rows: usize, ranges: Vec<(usize, usize)>) -> Result<Self, SparseError> {
        if ranges.is_empty() {
            return Err(SparseError::InvalidShardSpec(
                "at least one shard range is required".to_string(),
            ));
        }
        let mut expected_start = 0usize;
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start != expected_start {
                return Err(SparseError::InvalidShardSpec(format!(
                    "shard {i} starts at row {start}, expected {expected_start}"
                )));
            }
            if end <= start {
                return Err(SparseError::InvalidShardSpec(format!(
                    "shard {i} range [{start}, {end}) is empty"
                )));
            }
            expected_start = end;
        }
        if expected_start != rows {
            return Err(SparseError::InvalidShardSpec(format!(
                "ranges cover rows 0..{expected_start} but the matrix has {rows} rows"
            )));
        }
        Ok(ShardSpec { rows, ranges })
    }

    /// Splits `0..rows` into `shards` blocks of near-equal row counts.
    pub fn uniform(rows: usize, shards: usize) -> Result<Self, SparseError> {
        if shards == 0 {
            return Err(SparseError::InvalidShardSpec(
                "shard count must be at least 1".to_string(),
            ));
        }
        if shards > rows {
            return Err(SparseError::InvalidShardSpec(format!(
                "cannot split {rows} rows into {shards} non-empty shards"
            )));
        }
        let base = rows / shards;
        let extra = rows % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for k in 0..shards {
            let len = base + usize::from(k < extra);
            ranges.push((start, start + len));
            start += len;
        }
        ShardSpec::from_ranges(rows, ranges)
    }

    /// Partitions the matrix's rows so each shard carries a near-equal
    /// share of the non-zeros.
    ///
    /// Greedy prefix walk: shard `k` absorbs rows until it holds at least
    /// `ceil(remaining_nnz / remaining_shards)` non-zeros, while always
    /// leaving at least one row for each of the remaining shards. With
    /// pathological distributions (for example all non-zeros in one row)
    /// trailing shards can end up empty of non-zeros; they still own their
    /// row range and contribute zero partials.
    pub fn nnz_balanced(matrix: &CooMatrix, shards: usize) -> Result<Self, SparseError> {
        let rows = matrix.rows();
        if shards == 0 {
            return Err(SparseError::InvalidShardSpec(
                "shard count must be at least 1".to_string(),
            ));
        }
        if shards > rows {
            return Err(SparseError::InvalidShardSpec(format!(
                "cannot split {rows} rows into {shards} non-empty shards"
            )));
        }
        let mut row_nnz = vec![0usize; rows];
        for &(r, _, _) in matrix.iter() {
            row_nnz[r] += 1;
        }
        let mut remaining: usize = matrix.nnz();
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for k in 0..shards {
            let shards_left = shards - k;
            if shards_left == 1 {
                ranges.push((start, rows));
                break;
            }
            let target = remaining.div_ceil(shards_left);
            // Never eat into the rows the remaining shards need.
            let hard_end = rows - (shards_left - 1);
            let mut end = start + 1; // every shard owns at least one row
            let mut acc = row_nnz[start];
            while end < hard_end && acc < target {
                acc += row_nnz[end];
                end += 1;
            }
            ranges.push((start, end));
            start = end;
            remaining -= acc;
        }
        ShardSpec::from_ranges(rows, ranges)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total rows covered by the spec.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The `[start, end)` row range owned by shard `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }

    /// All ranges in shard order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// The shard owning global row `row`, or `None` if out of bounds.
    pub fn shard_of_row(&self, row: usize) -> Option<usize> {
        if row >= self.rows {
            return None;
        }
        // Ranges are sorted and contiguous: binary search on start.
        let idx = self.ranges.partition_point(|&(start, _)| start <= row);
        Some(idx - 1)
    }

    /// Extracts shard `k`'s row block as a standalone matrix.
    ///
    /// Rows are remapped to the local space `0..(end - start)`; the column
    /// space is kept at full width so the slice consumes the same dense
    /// input vector as the original matrix.
    pub fn slice(&self, matrix: &CooMatrix, k: usize) -> Result<CooMatrix, SparseError> {
        if matrix.rows() != self.rows {
            return Err(SparseError::InvalidShardSpec(format!(
                "spec covers {} rows but the matrix has {}",
                self.rows,
                matrix.rows()
            )));
        }
        let (start, end) = self.range(k);
        let triplets: Vec<_> = matrix
            .iter()
            .filter(|&&(r, _, _)| r >= start && r < end)
            .map(|&(r, c, v)| (r - start, c, v))
            .collect();
        CooMatrix::from_triplets(end - start, matrix.cols(), triplets)
    }

    /// Non-zero count owned by each shard.
    pub fn nnz_per_shard(&self, matrix: &CooMatrix) -> Result<Vec<usize>, SparseError> {
        if matrix.rows() != self.rows {
            return Err(SparseError::InvalidShardSpec(format!(
                "spec covers {} rows but the matrix has {}",
                self.rows,
                matrix.rows()
            )));
        }
        let mut counts = vec![0usize; self.ranges.len()];
        for &(r, _, _) in matrix.iter() {
            // Every row is owned: the spec tiles 0..rows and r < rows.
            if let Some(k) = self.shard_of_row(r) {
                counts[k] += 1;
            }
        }
        Ok(counts)
    }

    /// `max / mean` non-zero load across shards (1.0 = perfectly
    /// balanced). Returns 1.0 for an empty matrix.
    pub fn nnz_imbalance(&self, matrix: &CooMatrix) -> Result<f64, SparseError> {
        let counts = self.nnz_per_shard(matrix)?;
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Ok(1.0);
        }
        let mean = total as f64 / counts.len() as f64;
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        Ok(max / mean)
    }

    /// Reassembles a full output vector from per-shard partial products.
    ///
    /// This is the software Reduction Unit: shard `k`'s partial must have
    /// exactly `end - start` entries, and the partials are placed into the
    /// output at their owning row ranges. Row-block partitioning makes the
    /// reduction a pure gather — each output row is produced by exactly one
    /// shard, so no floating-point additions happen here and the result is
    /// bit-identical to computing each row in isolation.
    pub fn gather(&self, partials: &[Vec<f32>]) -> Result<Vec<f32>, SparseError> {
        if partials.len() != self.ranges.len() {
            return Err(SparseError::InvalidShardSpec(format!(
                "expected {} partials, got {}",
                self.ranges.len(),
                partials.len()
            )));
        }
        let mut out = vec![0.0f32; self.rows];
        for (k, partial) in partials.iter().enumerate() {
            let (start, end) = self.ranges[k];
            if partial.len() != end - start {
                return Err(SparseError::InvalidShardSpec(format!(
                    "shard {k} partial has {} entries, expected {}",
                    partial.len(),
                    end - start
                )));
            }
            out[start..end].copy_from_slice(partial);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_random;

    #[test]
    fn uniform_tiles_exactly() {
        let spec = ShardSpec::uniform(10, 3).unwrap();
        assert_eq!(spec.ranges(), &[(0, 4), (4, 7), (7, 10)]);
        assert_eq!(spec.shards(), 3);
        assert_eq!(spec.rows(), 10);
    }

    #[test]
    fn from_ranges_rejects_gaps_overlaps_and_short_covers() {
        assert!(ShardSpec::from_ranges(10, vec![(0, 4), (5, 10)]).is_err());
        assert!(ShardSpec::from_ranges(10, vec![(0, 6), (5, 10)]).is_err());
        assert!(ShardSpec::from_ranges(10, vec![(0, 4), (4, 9)]).is_err());
        assert!(ShardSpec::from_ranges(10, vec![(0, 4), (4, 4), (4, 10)]).is_err());
        assert!(ShardSpec::from_ranges(10, vec![]).is_err());
    }

    #[test]
    fn shard_of_row_matches_ranges() {
        let spec = ShardSpec::uniform(10, 3).unwrap();
        for row in 0..10 {
            let k = spec.shard_of_row(row).unwrap();
            let (start, end) = spec.range(k);
            assert!(row >= start && row < end, "row {row} -> shard {k}");
        }
        assert_eq!(spec.shard_of_row(10), None);
    }

    #[test]
    fn nnz_balanced_beats_uniform_on_skew() {
        // Heavy head: rows 0..4 carry 40 nnz, rows 4..64 carry ~1 each.
        let mut m = CooMatrix::new(64, 64);
        for r in 0..4 {
            for c in 0..10 {
                m.insert(r, c, 1.0).unwrap();
            }
        }
        for r in 4..64 {
            m.insert(r, r, 1.0).unwrap();
        }
        let balanced = ShardSpec::nnz_balanced(&m, 4).unwrap();
        let uniform = ShardSpec::uniform(64, 4).unwrap();
        assert!(
            balanced.nnz_imbalance(&m).unwrap() < uniform.nnz_imbalance(&m).unwrap(),
            "balanced {} should beat uniform {}",
            balanced.nnz_imbalance(&m).unwrap(),
            uniform.nnz_imbalance(&m).unwrap()
        );
    }

    #[test]
    fn nnz_balanced_handles_pathological_head() {
        // All non-zeros in row 0; trailing shards own rows but no nnz.
        let mut m = CooMatrix::new(8, 8);
        for c in 0..8 {
            m.insert(0, c, 1.0).unwrap();
        }
        let spec = ShardSpec::nnz_balanced(&m, 3).unwrap();
        assert_eq!(spec.shards(), 3);
        let counts = spec.nnz_per_shard(&m).unwrap();
        assert_eq!(counts, vec![8, 0, 0]);
    }

    #[test]
    fn nnz_balanced_rejects_more_shards_than_rows() {
        let m = CooMatrix::new(2, 2);
        assert!(ShardSpec::nnz_balanced(&m, 3).is_err());
        assert!(ShardSpec::nnz_balanced(&m, 0).is_err());
    }

    #[test]
    fn slices_partition_the_nnz_and_keep_full_width() {
        let m = uniform_random(40, 24, 200, 11);
        let spec = ShardSpec::nnz_balanced(&m, 4).unwrap();
        let mut total = 0usize;
        for k in 0..spec.shards() {
            let slice = spec.slice(&m, k).unwrap();
            let (start, end) = spec.range(k);
            assert_eq!(slice.rows(), end - start);
            assert_eq!(slice.cols(), m.cols());
            total += slice.nnz();
        }
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn sharded_spmv_equals_full_spmv() {
        let m = uniform_random(48, 48, 300, 5);
        let x: Vec<f32> = (0..48).map(|i| 0.25 + i as f32 * 0.125).collect();
        let want = m.spmv(&x);
        for shards in [1, 2, 3, 5] {
            let spec = ShardSpec::nnz_balanced(&m, shards).unwrap();
            let partials: Vec<Vec<f32>> = (0..shards)
                .map(|k| spec.slice(&m, k).unwrap().spmv(&x))
                .collect();
            let got = spec.gather(&partials).unwrap();
            // Row-block slicing preserves per-row accumulation order, so
            // the gather is bit-identical, not merely close.
            assert_eq!(want, got, "shards={shards}");
        }
    }

    #[test]
    fn gather_validates_partial_lengths() {
        let spec = ShardSpec::uniform(6, 2).unwrap();
        assert!(spec.gather(&[vec![0.0; 3], vec![0.0; 2]]).is_err());
        assert!(spec.gather(&[vec![0.0; 3]]).is_err());
        let ok = spec.gather(&[vec![1.0; 3], vec![2.0; 3]]).unwrap();
        assert_eq!(ok, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn slice_rejects_row_count_mismatch() {
        let spec = ShardSpec::uniform(6, 2).unwrap();
        let m = CooMatrix::new(5, 5);
        assert!(spec.slice(&m, 0).is_err());
        assert!(spec.nnz_per_shard(&m).is_err());
    }
}
