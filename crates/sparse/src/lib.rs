//! Sparse-matrix substrate for the Chasoň accelerator simulation.
//!
//! This crate provides everything the scheduler and architecture models need
//! from the "data" side of the paper:
//!
//! * validated sparse-matrix containers ([`CooMatrix`], [`CsrMatrix`],
//!   [`CscMatrix`]) with conversions between them,
//! * a MatrixMarket reader/writer ([`market`]) so real SuiteSparse / SNAP
//!   files can be used when they are available on disk,
//! * deterministic synthetic generators ([`generators`]) standing in for the
//!   SuiteSparse and SNAP collections (see `DESIGN.md` §2 for the
//!   substitution rationale),
//! * the evaluation catalogs ([`datasets`]) mirroring Table 2 of the paper
//!   and the 800-matrix corpus used by Figures 3, 11 and 14,
//! * row/column population statistics ([`stats`]) used to characterise
//!   workload imbalance,
//! * row-block sharding ([`shard`]) splitting a matrix into contiguous,
//!   nnz-balanced row ranges for multi-instance serving.
//!
//! # Example
//!
//! ```
//! use chason_sparse::{CooMatrix, CsrMatrix};
//!
//! # fn main() -> Result<(), chason_sparse::SparseError> {
//! let coo = CooMatrix::from_triplets(3, 3, vec![(0, 0, 2.0), (1, 2, -1.0), (2, 1, 0.5)])?;
//! let csr = CsrMatrix::from(&coo);
//! let y = csr.spmv(&[1.0, 2.0, 3.0]);
//! assert_eq!(y, vec![2.0, -3.0, 1.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
pub mod datasets;
mod delta;
mod dense;
mod error;
pub mod generators;
pub mod market;
pub mod permute;
pub mod shard;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use delta::{CowCsr, MatrixDelta, VersionedMatrix};
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use shard::ShardSpec;

/// A single explicit entry of a sparse matrix: `(row, column, value)`.
///
/// Triplets are the interchange currency between the container types and the
/// scheduler: the scheduler consumes matrices entry-by-entry in row order.
pub type Triplet = (usize, usize, f32);
