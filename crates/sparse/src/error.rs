use std::error::Error;
use std::fmt;

/// Error type returned by fallible operations in this crate.
///
/// All variants carry enough context to point at the offending entry, so a
/// failed construction from a malformed MatrixMarket file or a bad triplet
/// list can be reported precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An entry's row index is outside `0..rows`.
    RowOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Number of rows in the matrix.
        rows: usize,
    },
    /// An entry's column index is outside `0..cols`.
    ColOutOfBounds {
        /// Offending column index.
        col: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Two explicit entries share the same `(row, col)` coordinate.
    DuplicateEntry {
        /// Row of the duplicated coordinate.
        row: usize,
        /// Column of the duplicated coordinate.
        col: usize,
    },
    /// A delta operation targeted a coordinate holding no explicit entry.
    AbsentEntry {
        /// Row of the missing coordinate.
        row: usize,
        /// Column of the missing coordinate.
        col: usize,
    },
    /// A structural array (e.g. a CSR row-pointer array) is inconsistent.
    MalformedStructure(String),
    /// A MatrixMarket stream could not be parsed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
    /// A shard specification does not tile the matrix it claims to cover.
    InvalidShardSpec(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowOutOfBounds { row, rows } => {
                write!(
                    f,
                    "row index {row} out of bounds for matrix with {rows} rows"
                )
            }
            SparseError::ColOutOfBounds { col, cols } => {
                write!(
                    f,
                    "column index {col} out of bounds for matrix with {cols} columns"
                )
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate explicit entry at ({row}, {col})")
            }
            SparseError::AbsentEntry { row, col } => {
                write!(f, "no explicit entry at ({row}, {col}) to update")
            }
            SparseError::MalformedStructure(msg) => {
                write!(f, "malformed sparse structure: {msg}")
            }
            SparseError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::InvalidShardSpec(msg) => {
                write!(f, "invalid shard spec: {msg}")
            }
        }
    }
}

impl Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = SparseError::RowOutOfBounds { row: 7, rows: 4 };
        let msg = err.to_string();
        assert!(msg.contains("7"));
        assert!(msg.contains("4"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = SparseError::from(io);
        assert!(matches!(err, SparseError::Io(_)));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
