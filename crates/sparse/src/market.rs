//! MatrixMarket coordinate-format reader and writer.
//!
//! The paper evaluates on SuiteSparse and SNAP matrices, which are
//! distributed as MatrixMarket (`.mtx`) files. This module lets the
//! experiment harness consume real files when they exist on disk; the
//! synthetic [`crate::datasets`] catalog is used otherwise.
//!
//! Supported header: `%%MatrixMarket matrix coordinate <real|integer|pattern>
//! <general|symmetric>`. Pattern entries get value `1.0`; symmetric files are
//! expanded to general form (off-diagonal entries mirrored). Duplicate
//! coordinates are summed, following the usual MatrixMarket convention.

use crate::{CooMatrix, SparseError, Triplet};
use std::io::{BufRead, BufReader, Read, Write};

/// Value field declared by a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry declared by a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a MatrixMarket coordinate stream into a [`CooMatrix`].
///
/// A `&mut` reference may be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed content (with 1-based line
/// numbers), [`SparseError::Io`] for read failures, and the usual bound
/// errors for indices outside the declared shape.
///
/// # Example
///
/// ```
/// use chason_sparse::market::read_matrix_market;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 -1\n";
/// let m = read_matrix_market(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.triplets()[0], (0, 0, 3.5));
/// # Ok(())
/// # }
/// ```
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    let (field, symmetry) = loop {
        let (idx, line) = lines.next().ok_or_else(|| SparseError::Parse {
            line: 1,
            message: "empty stream".into(),
        })?;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("%%MatrixMarket") {
            break parse_header(header, idx + 1)?;
        }
        return Err(SparseError::Parse {
            line: idx + 1,
            message: "expected %%MatrixMarket header".into(),
        });
    };

    // Size line: first non-comment, non-empty line after the header.
    let (size_line_no, size_line) = loop {
        let (idx, line) = lines.next().ok_or_else(|| SparseError::Parse {
            line: 0,
            message: "missing size line".into(),
        })?;
        let line = line?;
        let trimmed = line.trim().to_string();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break (idx + 1, trimmed);
    };

    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("size line must have 3 fields, got {}", dims.len()),
        });
    }
    let rows: usize = parse_num(dims[0], size_line_no)?;
    let cols: usize = parse_num(dims[1], size_line_no)?;
    let declared_nnz: usize = parse_num(dims[2], size_line_no)?;

    let mut triplets: Vec<Triplet> = Vec::with_capacity(declared_nnz);
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let expected = match field {
            Field::Pattern => 2,
            _ => 3,
        };
        if parts.len() < expected {
            return Err(SparseError::Parse {
                line: idx + 1,
                message: format!("entry line must have {expected} fields"),
            });
        }
        let r: usize = parse_num(parts[0], idx + 1)?;
        let c: usize = parse_num(parts[1], idx + 1)?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: idx + 1,
                message: "MatrixMarket indices are 1-based".into(),
            });
        }
        let v: f32 = match field {
            Field::Pattern => 1.0,
            _ => parts[2].parse().map_err(|_| SparseError::Parse {
                line: idx + 1,
                message: format!("invalid value '{}'", parts[2]),
            })?,
        };
        let (r0, c0) = (r - 1, c - 1);
        triplets.push((r0, c0, v));
        if symmetry == Symmetry::Symmetric && r0 != c0 {
            triplets.push((c0, r0, v));
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("declared {declared_nnz} entries but found {seen}"),
        });
    }
    CooMatrix::from_triplets_summing(rows, cols, triplets)
}

/// Writes a matrix as MatrixMarket `coordinate real general`.
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O failures as [`SparseError::Io`].
pub fn write_matrix_market<W: Write>(mut writer: W, matrix: &CooMatrix) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for &(r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

fn parse_header(rest: &str, line: usize) -> Result<(Field, Symmetry), SparseError> {
    let tokens: Vec<String> = rest
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 4 || tokens[0] != "matrix" || tokens[1] != "coordinate" {
        return Err(SparseError::Parse {
            line,
            message: "only 'matrix coordinate' MatrixMarket files are supported".into(),
        });
    }
    let field = match tokens[2].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line,
                message: format!("unsupported value field '{other}'"),
            })
        }
    };
    let symmetry = match tokens[3].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line,
                message: format!("unsupported symmetry '{other}'"),
            })
        }
    };
    Ok((field, symmetry))
}

fn parse_num(token: &str, line: usize) -> Result<usize, SparseError> {
    token.parse().map_err(|_| SparseError::Parse {
        line,
        message: format!("invalid integer '{token}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real_file() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment line\n\
                    3 3 3\n\
                    1 1 1.5\n\
                    2 3 -2\n\
                    3 2 4e-1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.triplets()[1], (1, 2, -2.0));
        assert!((m.triplets()[2].2 - 0.4).abs() < 1e-6);
    }

    #[test]
    fn reads_pattern_file_with_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.triplets(), &[(0, 1, 1.0), (1, 0, 1.0)]);
    }

    #[test]
    fn expands_symmetric_files() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        // (1,0) mirrored to (0,1); diagonal not duplicated.
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.triplets(), &[(0, 1, 5.0), (1, 0, 5.0), (2, 2, 7.0)]);
    }

    #[test]
    fn sums_duplicate_coordinates() {
        let text = "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 2\n1 1 3\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.triplets(), &[(0, 0, 5.0)]);
    }

    #[test]
    fn rejects_missing_header() {
        let text = "3 3 0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn write_then_read_round_trips() {
        let m =
            CooMatrix::from_triplets(4, 3, vec![(0, 0, 1.25), (1, 2, -3.0), (3, 1, 0.5)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }
}
