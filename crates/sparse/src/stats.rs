//! Row/column population statistics used to characterise workload imbalance.
//!
//! The paper's central claim is that PE underutilization is driven by the
//! *distribution* of non-zeros across rows (empty rows and skewed rows starve
//! the PEs they map to). These helpers quantify that distribution so the
//! dataset generators can be checked against the regimes the paper evaluates.

use crate::CooMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of a matrix's row-degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of explicit entries.
    pub nnz: usize,
    /// Rows with no explicit entries.
    pub empty_rows: usize,
    /// Smallest row population.
    pub min_row_nnz: usize,
    /// Largest row population.
    pub max_row_nnz: usize,
    /// Mean entries per row.
    pub mean_row_nnz: f64,
    /// Population standard deviation of entries per row.
    pub stddev_row_nnz: f64,
    /// Gini coefficient of the row populations in `[0, 1]`
    /// (0 = perfectly balanced, →1 = all entries in one row).
    pub gini: f64,
}

/// Computes the number of explicit entries in each row.
pub fn row_degrees(matrix: &CooMatrix) -> Vec<usize> {
    let mut deg = vec![0usize; matrix.rows()];
    for &(r, _, _) in matrix.iter() {
        deg[r] += 1;
    }
    deg
}

/// Computes the number of explicit entries in each column.
pub fn col_degrees(matrix: &CooMatrix) -> Vec<usize> {
    let mut deg = vec![0usize; matrix.cols()];
    for &(_, c, _) in matrix.iter() {
        deg[c] += 1;
    }
    deg
}

/// Computes [`RowStats`] for a matrix.
///
/// # Example
///
/// ```
/// use chason_sparse::{CooMatrix, stats::row_stats};
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)])?;
/// let s = row_stats(&m);
/// assert_eq!(s.empty_rows, 1);
/// assert_eq!(s.max_row_nnz, 2);
/// # Ok(())
/// # }
/// ```
pub fn row_stats(matrix: &CooMatrix) -> RowStats {
    let degrees = row_degrees(matrix);
    let rows = degrees.len();
    let nnz = matrix.nnz();
    if rows == 0 {
        return RowStats {
            rows: 0,
            nnz,
            empty_rows: 0,
            min_row_nnz: 0,
            max_row_nnz: 0,
            mean_row_nnz: 0.0,
            stddev_row_nnz: 0.0,
            gini: 0.0,
        };
    }
    let empty_rows = degrees.iter().filter(|&&d| d == 0).count();
    #[allow(clippy::expect_used)] // the rows == 0 case returned above
    let min = *degrees.iter().min().expect("rows > 0");
    #[allow(clippy::expect_used)] // the rows == 0 case returned above
    let max = *degrees.iter().max().expect("rows > 0");
    let mean = nnz as f64 / rows as f64;
    let variance = degrees
        .iter()
        .map(|&d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / rows as f64;
    RowStats {
        rows,
        nnz,
        empty_rows,
        min_row_nnz: min,
        max_row_nnz: max,
        mean_row_nnz: mean,
        stddev_row_nnz: variance.sqrt(),
        gini: gini_coefficient(&degrees),
    }
}

/// Computes the Gini coefficient of a set of non-negative counts.
///
/// Returns `0.0` when the input is empty or sums to zero.
pub fn gini_coefficient(counts: &[usize]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    #[allow(clippy::expect_used)] // counts are integers cast to f64, always comparable
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    // G = (2 * sum_i i*x_i) / (n * sum_i x_i) - (n + 1) / n, with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Histogram of values into `bins` equal-width buckets over `[lo, hi)`.
///
/// Values outside the range are clamped into the terminal buckets, so the
/// returned counts always sum to `values.len()`. Used by the figure binaries
/// that print probability-density curves.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(lo < hi, "histogram range must be non-empty");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = ((v - lo) / width).floor();
        let idx = idx.clamp(0.0, bins as f64 - 1.0) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Converts a histogram into a probability-density estimate (area sums to 1).
pub fn histogram_to_pdf(counts: &[usize], lo: f64, hi: f64) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return vec![0.0; counts.len()];
    }
    let width = (hi - lo) / counts.len() as f64;
    counts
        .iter()
        .map(|&c| c as f64 / (total as f64 * width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> CooMatrix {
        // Row 0 holds 4 entries, rows 1..4 are empty except row 3 (1 entry).
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (3, 0, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_degrees_counts_correctly() {
        assert_eq!(row_degrees(&skewed()), vec![4, 0, 0, 1]);
    }

    #[test]
    fn col_degrees_counts_correctly() {
        assert_eq!(col_degrees(&skewed()), vec![2, 1, 1, 1]);
    }

    #[test]
    fn row_stats_of_skewed_matrix() {
        let s = row_stats(&skewed());
        assert_eq!(s.empty_rows, 2);
        assert_eq!(s.min_row_nnz, 0);
        assert_eq!(s.max_row_nnz, 4);
        assert!((s.mean_row_nnz - 1.25).abs() < 1e-12);
        assert!(
            s.gini > 0.4,
            "skewed matrix should have high gini, got {}",
            s.gini
        );
    }

    #[test]
    fn row_stats_of_empty_matrix() {
        let s = row_stats(&CooMatrix::new(0, 0));
        assert_eq!(s.rows, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn gini_of_uniform_counts_is_zero() {
        assert!(gini_coefficient(&[3, 3, 3, 3]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_counts_approaches_one() {
        let mut counts = vec![0usize; 100];
        counts[0] = 1000;
        assert!(gini_coefficient(&counts) > 0.98);
    }

    #[test]
    fn gini_of_empty_or_zero_is_zero() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let counts = histogram(&[-5.0, 0.5, 1.5, 99.0], 0.0, 2.0, 2);
        assert_eq!(counts, vec![2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let counts = histogram(&[0.1, 0.2, 0.6, 0.9], 0.0, 1.0, 4);
        let pdf = histogram_to_pdf(&counts, 0.0, 1.0);
        let width = 0.25;
        let area: f64 = pdf.iter().map(|p| p * width).sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
