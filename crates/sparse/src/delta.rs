//! Sparse-matrix deltas: batched structural updates for dynamic matrices.
//!
//! Streaming graph analytics, time-evolving meshes and online solver
//! restarts all mutate their matrices between SpMV invocations. This module
//! provides the update currency for that scenario family:
//!
//! * [`MatrixDelta`] — a validated batch of entry insertions, deletions and
//!   revaluations against a fixed matrix shape,
//! * [`VersionedMatrix`] — a copy-on-write snapshot chain: applying a delta
//!   produces a new version while outstanding snapshots of older versions
//!   stay valid and unchanged,
//! * [`CowCsr`] — a CSR-shaped container with per-row structural sharing,
//!   so applying a delta touching `k` rows clones only those `k` rows and
//!   shares every other row's storage with the predecessor version.
//!
//! Deltas never change the matrix shape: the accelerator's plans partition
//! rows and columns purely from the dimensions, which is what makes
//! incremental re-planning (splicing only dirty windows) sound.
//!
//! # Example
//!
//! ```
//! use chason_sparse::{CooMatrix, MatrixDelta};
//!
//! # fn main() -> Result<(), chason_sparse::SparseError> {
//! let base = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)])?;
//! let mut delta = MatrixDelta::new(2, 2);
//! delta.push_insert(0, 1, 3.0)?;
//! delta.push_revalue(1, 1, -2.0)?;
//! let updated = delta.apply(&base)?;
//! assert_eq!(
//!     updated.triplets(),
//!     &[(0, 0, 1.0), (0, 1, 3.0), (1, 1, -2.0)]
//! );
//! # Ok(())
//! # }
//! ```

use crate::{CooMatrix, SparseError, Triplet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One update operation of a [`MatrixDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum DeltaOp {
    /// Add a new explicit entry (the coordinate must be absent).
    Insert(f32),
    /// Replace the value of an existing explicit entry.
    Revalue(f32),
    /// Remove an existing explicit entry.
    Delete,
}

/// A validated batch of entry updates against a fixed matrix shape.
///
/// A delta holds at most one operation per coordinate; pushing a second
/// operation for a coordinate already in the batch is rejected. Bounds are
/// checked at push time, existence/absence of the targeted entries is
/// checked against the base matrix when the delta is [applied](Self::apply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixDelta {
    rows: usize,
    cols: usize,
    ops: BTreeMap<(usize, usize), DeltaOp>,
}

impl MatrixDelta {
    /// Creates an empty delta for matrices of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        MatrixDelta {
            rows,
            cols,
            ops: BTreeMap::new(),
        }
    }

    /// Creates an empty delta shaped like `matrix`.
    pub fn for_matrix(matrix: &CooMatrix) -> Self {
        MatrixDelta::new(matrix.rows(), matrix.cols())
    }

    fn check_coord(&self, row: usize, col: usize) -> Result<(), SparseError> {
        if row >= self.rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseError::ColOutOfBounds {
                col,
                cols: self.cols,
            });
        }
        Ok(())
    }

    fn push(&mut self, row: usize, col: usize, op: DeltaOp) -> Result<(), SparseError> {
        self.check_coord(row, col)?;
        if self.ops.contains_key(&(row, col)) {
            return Err(SparseError::DuplicateEntry { row, col });
        }
        self.ops.insert((row, col), op);
        Ok(())
    }

    /// Queues the insertion of a new explicit entry.
    ///
    /// # Errors
    ///
    /// Out-of-range coordinates and coordinates already targeted by this
    /// delta are rejected (the entry's absence in the base matrix is checked
    /// at [`apply`](Self::apply) time).
    pub fn push_insert(&mut self, row: usize, col: usize, value: f32) -> Result<(), SparseError> {
        self.push(row, col, DeltaOp::Insert(value))
    }

    /// Queues the revaluation of an existing explicit entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_insert`](Self::push_insert).
    pub fn push_revalue(&mut self, row: usize, col: usize, value: f32) -> Result<(), SparseError> {
        self.push(row, col, DeltaOp::Revalue(value))
    }

    /// Queues the deletion of an existing explicit entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_insert`](Self::push_insert).
    pub fn push_delete(&mut self, row: usize, col: usize) -> Result<(), SparseError> {
        self.push(row, col, DeltaOp::Delete)
    }

    /// Row count of the shape this delta targets.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the shape this delta targets.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued insertions as `(row, col, value)` triplets, coordinate
    /// order.
    pub fn inserts(&self) -> Vec<Triplet> {
        self.ops
            .iter()
            .filter_map(|(&(r, c), op)| match op {
                DeltaOp::Insert(v) => Some((r, c, *v)),
                _ => None,
            })
            .collect()
    }

    /// The queued revaluations as `(row, col, value)` triplets, coordinate
    /// order.
    pub fn revalues(&self) -> Vec<Triplet> {
        self.ops
            .iter()
            .filter_map(|(&(r, c), op)| match op {
                DeltaOp::Revalue(v) => Some((r, c, *v)),
                _ => None,
            })
            .collect()
    }

    /// The queued deletions as `(row, col)` coordinates, coordinate order.
    pub fn deletes(&self) -> Vec<(usize, usize)> {
        self.ops
            .iter()
            .filter_map(|(&(r, c), op)| match op {
                DeltaOp::Delete => Some((r, c)),
                _ => None,
            })
            .collect()
    }

    /// Iterates over every coordinate the delta touches, in `(row, col)`
    /// order. This is the footprint incremental re-planning derives its
    /// dirty-window set from.
    pub fn coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ops.keys().copied()
    }

    /// Net change in explicit-entry count once applied: insertions minus
    /// deletions.
    pub fn nnz_change(&self) -> isize {
        self.ops
            .values()
            .map(|op| match op {
                DeltaOp::Insert(_) => 1isize,
                DeltaOp::Revalue(_) => 0,
                DeltaOp::Delete => -1,
            })
            .sum()
    }

    /// All values the delta would write (insertions and revaluations).
    ///
    /// Useful for schedulability screening: the accelerator's wire format
    /// reserves the all-zero word for stalls, so serving layers reject
    /// non-finite and zero values before applying a delta.
    pub fn written_values(&self) -> impl Iterator<Item = f32> + '_ {
        self.ops.values().filter_map(|op| match op {
            DeltaOp::Insert(v) | DeltaOp::Revalue(v) => Some(*v),
            DeltaOp::Delete => None,
        })
    }

    /// Applies the delta to `base`, producing the updated matrix.
    ///
    /// `base` is untouched; the result is a fresh matrix sharing no storage
    /// (see [`VersionedMatrix`] / [`CowCsr`] for the sharing layers built on
    /// top). Entries stay sorted by `(row, col)`.
    ///
    /// # Errors
    ///
    /// * [`SparseError::MalformedStructure`] when `base`'s shape differs
    ///   from the delta's;
    /// * [`SparseError::DuplicateEntry`] when an insertion targets a
    ///   coordinate that already holds an entry;
    /// * [`SparseError::AbsentEntry`] when a revaluation or deletion targets
    ///   a coordinate with no entry.
    pub fn apply(&self, base: &CooMatrix) -> Result<CooMatrix, SparseError> {
        if base.rows() != self.rows || base.cols() != self.cols {
            return Err(SparseError::MalformedStructure(format!(
                "delta targets a {}x{} matrix but was applied to {}x{}",
                self.rows,
                self.cols,
                base.rows(),
                base.cols()
            )));
        }
        let mut merged: Vec<Triplet> =
            Vec::with_capacity((base.nnz() as isize + self.nnz_change()).max(0) as usize);
        let mut ops = self.ops.iter().peekable();
        for &(r, c, v) in base.iter() {
            // Emit queued insertions at coordinates strictly before (r, c).
            while let Some((&(or, oc), op)) = ops.peek() {
                if (or, oc) >= (r, c) {
                    break;
                }
                match op {
                    DeltaOp::Insert(nv) => merged.push((or, oc, *nv)),
                    DeltaOp::Revalue(_) | DeltaOp::Delete => {
                        return Err(SparseError::AbsentEntry { row: or, col: oc })
                    }
                }
                ops.next();
            }
            match ops.peek() {
                Some((&(or, oc), op)) if (or, oc) == (r, c) => {
                    match op {
                        DeltaOp::Insert(_) => {
                            return Err(SparseError::DuplicateEntry { row: r, col: c })
                        }
                        DeltaOp::Revalue(nv) => merged.push((r, c, *nv)),
                        DeltaOp::Delete => {}
                    }
                    ops.next();
                }
                _ => merged.push((r, c, v)),
            }
        }
        for (&(or, oc), op) in ops {
            match op {
                DeltaOp::Insert(nv) => merged.push((or, oc, *nv)),
                DeltaOp::Revalue(_) | DeltaOp::Delete => {
                    return Err(SparseError::AbsentEntry { row: or, col: oc })
                }
            }
        }
        // The merge walk keeps (row, col) order and rejects duplicates, so
        // the triplets satisfy every `from_triplets` invariant already.
        #[allow(clippy::expect_used)] // xtask: invariant documented above
        Ok(CooMatrix::from_triplets(self.rows, self.cols, merged)
            .expect("merged triplets are sorted, unique and in range by construction"))
    }
}

/// A copy-on-write version chain over a [`CooMatrix`].
///
/// Applying a delta replaces the snapshot and bumps the version counter;
/// clones handed out earlier (the `Arc` returned by
/// [`matrix`](Self::matrix)) keep observing the version they were taken
/// from. Serving layers use the version to key plan caches so a request
/// planned against version `n` can never read a schedule spliced for
/// version `n + 1`.
#[derive(Debug, Clone)]
pub struct VersionedMatrix {
    matrix: Arc<CooMatrix>,
    version: u64,
}

impl VersionedMatrix {
    /// Wraps `matrix` as version 0.
    pub fn new(matrix: CooMatrix) -> Self {
        VersionedMatrix {
            matrix: Arc::new(matrix),
            version: 0,
        }
    }

    /// The current snapshot. Cloning the `Arc` is the cheap way to hold the
    /// snapshot across a later [`apply`](Self::apply).
    pub fn matrix(&self) -> &Arc<CooMatrix> {
        &self.matrix
    }

    /// The current version (0 for a freshly wrapped matrix, +1 per applied
    /// delta).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Applies `delta`, replacing the snapshot and bumping the version.
    /// Returns the new version number.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MatrixDelta::apply`]; on error the snapshot and
    /// version are unchanged.
    pub fn apply(&mut self, delta: &MatrixDelta) -> Result<u64, SparseError> {
        let updated = delta.apply(&self.matrix)?;
        self.matrix = Arc::new(updated);
        self.version += 1;
        Ok(self.version)
    }
}

/// CSR-shaped storage with per-row structural sharing.
///
/// Each row's `(column, value)` pairs live behind their own [`Arc`];
/// [`apply_delta`](Self::apply_delta) rebuilds only the rows a delta
/// touches and shares every other row's allocation with the source, so a
/// `k`-row delta against an `n`-row matrix costs `O(k · row_nnz + n)`
/// pointer copies instead of an `O(nnz)` rebuild.
#[derive(Debug, Clone)]
pub struct CowCsr {
    rows: usize,
    cols: usize,
    nnz: usize,
    row_data: Vec<Arc<Vec<(usize, f32)>>>,
}

impl CowCsr {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicit entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The `(column, value)` pairs of row `r`, column-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[(usize, f32)] {
        &self.row_data[r]
    }

    /// Whether row `r` shares its storage with the same row of `other`
    /// (i.e. neither version rebuilt it since they diverged).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range for either matrix.
    pub fn shares_row(&self, other: &CowCsr, r: usize) -> bool {
        Arc::ptr_eq(&self.row_data[r], &other.row_data[r])
    }

    /// Applies `delta`, rebuilding only the touched rows; every other row's
    /// storage is shared with `self`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MatrixDelta::apply`].
    pub fn apply_delta(&self, delta: &MatrixDelta) -> Result<CowCsr, SparseError> {
        if self.rows != delta.rows() || self.cols != delta.cols() {
            return Err(SparseError::MalformedStructure(format!(
                "delta targets a {}x{} matrix but was applied to {}x{}",
                delta.rows(),
                delta.cols(),
                self.rows,
                self.cols
            )));
        }
        let mut out = self.clone();
        let mut coords = delta.coords().peekable();
        while let Some(&(row, _)) = coords.peek() {
            // Collect this row's ops and rebuild the row once.
            let mut rebuilt: Vec<(usize, f32)> = self.row_data[row].as_ref().clone();
            while let Some(&(r, col)) = coords.peek() {
                if r != row {
                    break;
                }
                coords.next();
                let pos = rebuilt.binary_search_by_key(&col, |&(c, _)| c);
                let entry = delta.ops.get(&(row, col));
                #[allow(clippy::expect_used)] // coords() only yields delta-held coordinates
                let op = *entry.expect("coords() yields only coordinates present in the delta");
                match (op, pos) {
                    (DeltaOp::Insert(v), Err(i)) => {
                        rebuilt.insert(i, (col, v));
                        out.nnz += 1;
                    }
                    (DeltaOp::Insert(_), Ok(_)) => {
                        return Err(SparseError::DuplicateEntry { row, col })
                    }
                    (DeltaOp::Revalue(v), Ok(i)) => rebuilt[i] = (col, v),
                    (DeltaOp::Delete, Ok(i)) => {
                        rebuilt.remove(i);
                        out.nnz -= 1;
                    }
                    (DeltaOp::Revalue(_) | DeltaOp::Delete, Err(_)) => {
                        return Err(SparseError::AbsentEntry { row, col })
                    }
                }
            }
            out.row_data[row] = Arc::new(rebuilt);
        }
        Ok(out)
    }

    /// Computes `y = A·x` with the same per-row accumulation order as
    /// [`CsrMatrix::spmv`](crate::CsrMatrix::spmv), so results are
    /// bit-identical across the two containers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "dense vector length must equal matrix columns"
        );
        self.row_data
            .iter()
            .map(|row| {
                let mut acc = 0.0f32;
                for &(c, v) in row.iter() {
                    acc += v * x[c];
                }
                acc
            })
            .collect()
    }

    /// Iterates over all entries as `(row, col, value)` triplets in
    /// row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        self.row_data
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&(c, v)| (r, c, v)))
    }
}

impl From<&CooMatrix> for CowCsr {
    fn from(coo: &CooMatrix) -> Self {
        let mut row_data: Vec<Vec<(usize, f32)>> = vec![Vec::new(); coo.rows()];
        // COO entries are already sorted by (row, col).
        for &(r, c, v) in coo.iter() {
            row_data[r].push((c, v));
        }
        CowCsr {
            rows: coo.rows(),
            cols: coo.cols(),
            nnz: coo.nnz(),
            row_data: row_data.into_iter().map(Arc::new).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn base() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn apply_merges_all_three_op_kinds() {
        let mut d = MatrixDelta::new(3, 4);
        d.push_insert(1, 3, 7.0).unwrap();
        d.push_revalue(0, 0, -1.0).unwrap();
        d.push_delete(2, 2).unwrap();
        let updated = d.apply(&base()).unwrap();
        assert_eq!(
            updated.triplets(),
            &[
                (0, 0, -1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (1, 3, 7.0),
                (2, 0, 4.0)
            ]
        );
        assert_eq!(d.nnz_change(), 0);
        assert_eq!(updated.nnz(), base().nnz());
    }

    #[test]
    fn insert_before_first_and_after_last_entry() {
        let m = CooMatrix::from_triplets(3, 3, vec![(1, 1, 1.0)]).unwrap();
        let mut d = MatrixDelta::for_matrix(&m);
        d.push_insert(0, 0, 2.0).unwrap();
        d.push_insert(2, 2, 3.0).unwrap();
        let updated = d.apply(&m).unwrap();
        assert_eq!(updated.triplets(), &[(0, 0, 2.0), (1, 1, 1.0), (2, 2, 3.0)]);
    }

    #[test]
    fn empty_delta_is_identity() {
        let d = MatrixDelta::new(3, 4);
        assert!(d.is_empty());
        assert_eq!(d.apply(&base()).unwrap(), base());
    }

    #[test]
    fn push_rejects_out_of_bounds_and_duplicates() {
        let mut d = MatrixDelta::new(2, 2);
        assert_eq!(
            d.push_insert(2, 0, 1.0).unwrap_err(),
            SparseError::RowOutOfBounds { row: 2, rows: 2 }
        );
        assert_eq!(
            d.push_delete(0, 5).unwrap_err(),
            SparseError::ColOutOfBounds { col: 5, cols: 2 }
        );
        d.push_insert(0, 0, 1.0).unwrap();
        assert_eq!(
            d.push_delete(0, 0).unwrap_err(),
            SparseError::DuplicateEntry { row: 0, col: 0 }
        );
    }

    #[test]
    fn apply_rejects_insert_over_existing_entry() {
        let mut d = MatrixDelta::new(3, 4);
        d.push_insert(1, 1, 9.0).unwrap();
        assert_eq!(
            d.apply(&base()).unwrap_err(),
            SparseError::DuplicateEntry { row: 1, col: 1 }
        );
    }

    #[test]
    fn apply_rejects_ops_on_absent_entries() {
        let mut d = MatrixDelta::new(3, 4);
        d.push_delete(0, 1).unwrap();
        assert_eq!(
            d.apply(&base()).unwrap_err(),
            SparseError::AbsentEntry { row: 0, col: 1 }
        );
        let mut d = MatrixDelta::new(3, 4);
        d.push_revalue(2, 3, 1.0).unwrap();
        assert_eq!(
            d.apply(&base()).unwrap_err(),
            SparseError::AbsentEntry { row: 2, col: 3 }
        );
    }

    #[test]
    fn apply_rejects_shape_mismatch() {
        let d = MatrixDelta::new(4, 4);
        assert!(matches!(
            d.apply(&base()).unwrap_err(),
            SparseError::MalformedStructure(_)
        ));
    }

    #[test]
    fn accessors_split_ops_by_kind() {
        let mut d = MatrixDelta::new(3, 4);
        d.push_delete(2, 2).unwrap();
        d.push_insert(1, 3, 7.0).unwrap();
        d.push_revalue(0, 0, -1.0).unwrap();
        assert_eq!(d.inserts(), vec![(1, 3, 7.0)]);
        assert_eq!(d.revalues(), vec![(0, 0, -1.0)]);
        assert_eq!(d.deletes(), vec![(2, 2)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.coords().collect::<Vec<_>>(), vec![(0, 0), (1, 3), (2, 2)]);
        let written: Vec<f32> = d.written_values().collect();
        assert_eq!(written, vec![-1.0, 7.0]);
    }

    #[test]
    fn versioned_matrix_snapshots_are_copy_on_write() {
        let mut vm = VersionedMatrix::new(base());
        assert_eq!(vm.version(), 0);
        let snapshot = Arc::clone(vm.matrix());
        let mut d = MatrixDelta::new(3, 4);
        d.push_revalue(0, 0, 9.0).unwrap();
        assert_eq!(vm.apply(&d).unwrap(), 1);
        assert_eq!(snapshot.triplets()[0], (0, 0, 1.0)); // old snapshot intact
        assert_eq!(vm.matrix().triplets()[0], (0, 0, 9.0));
    }

    #[test]
    fn versioned_matrix_failed_apply_leaves_version_unchanged() {
        let mut vm = VersionedMatrix::new(base());
        let mut d = MatrixDelta::new(3, 4);
        d.push_delete(0, 1).unwrap();
        assert!(vm.apply(&d).is_err());
        assert_eq!(vm.version(), 0);
        assert_eq!(*vm.matrix().as_ref(), base());
    }

    #[test]
    fn cow_csr_matches_coo_and_shares_untouched_rows() {
        let m = base();
        let csr = CowCsr::from(&m);
        assert_eq!(csr.nnz(), m.nnz());
        let mut d = MatrixDelta::for_matrix(&m);
        d.push_insert(0, 1, 6.0).unwrap();
        d.push_delete(0, 3).unwrap();
        let next = csr.apply_delta(&d).unwrap();
        let expected = d.apply(&m).unwrap();
        assert_eq!(next.iter().collect::<Vec<_>>(), expected.triplets());
        assert_eq!(next.nnz(), expected.nnz());
        assert!(!next.shares_row(&csr, 0)); // rebuilt
        assert!(next.shares_row(&csr, 1)); // shared
        assert!(next.shares_row(&csr, 2)); // shared
    }

    #[test]
    fn cow_csr_spmv_is_bit_identical_to_csr_spmv() {
        let m = base();
        let x = [1.5, -2.0, 0.25, 3.0];
        let dense = CsrMatrix::from(&m).spmv(&x);
        let cow = CowCsr::from(&m).spmv(&x);
        assert_eq!(dense, cow);
    }

    #[test]
    fn cow_csr_apply_rejects_bad_ops() {
        let csr = CowCsr::from(&base());
        let mut d = MatrixDelta::new(3, 4);
        d.push_insert(1, 1, 2.0).unwrap();
        assert_eq!(
            csr.apply_delta(&d).unwrap_err(),
            SparseError::DuplicateEntry { row: 1, col: 1 }
        );
        let mut d = MatrixDelta::new(3, 4);
        d.push_revalue(1, 0, 2.0).unwrap();
        assert_eq!(
            csr.apply_delta(&d).unwrap_err(),
            SparseError::AbsentEntry { row: 1, col: 0 }
        );
        let wrong_shape = MatrixDelta::new(2, 2);
        assert!(csr.apply_delta(&wrong_shape).is_err());
    }

    #[test]
    fn delta_chain_through_versions_tracks_scratch_rebuild() {
        let mut vm = VersionedMatrix::new(base());
        let mut csr = CowCsr::from(vm.matrix().as_ref());
        for step in 0..4u32 {
            let mut d = MatrixDelta::new(3, 4);
            let v = step as f32 + 1.5;
            match step % 2 {
                0 => d.push_revalue(2, 0, v).unwrap(),
                _ => {
                    d.push_delete(2, 0).unwrap();
                    d.push_insert(2, 0, v).unwrap_err(); // same coord twice
                    d = MatrixDelta::new(3, 4);
                    d.push_revalue(1, 1, v).unwrap();
                }
            }
            csr = csr.apply_delta(&d).unwrap();
            vm.apply(&d).unwrap();
            assert_eq!(
                csr.iter().collect::<Vec<_>>(),
                vm.matrix().triplets(),
                "CowCsr chain diverged from COO chain at step {step}"
            );
        }
        assert_eq!(vm.version(), 4);
    }
}
