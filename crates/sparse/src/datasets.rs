//! Evaluation dataset catalogs mirroring the paper's workloads.
//!
//! Two catalogs are provided:
//!
//! * [`table2`] — the 20 named matrices of Table 2 (10 SuiteSparse + 10
//!   SNAP), each reproduced by a deterministic synthetic generator matched to
//!   the row's non-zero count and density (and, where the construction is
//!   known exactly — `mycielskian12` — matched structurally);
//! * [`corpus`] — the "800 matrices" population used by Figures 3, 11 and
//!   14, sweeping density from 1e-6 to 1e-1 and NNZ from 1e3 to 1e6 across
//!   all generator families.
//!
//! Generation is seeded per-spec, so catalogs are stable across runs and
//! machines.

use crate::generators::{
    arrow_with_nnz, banded_with_nnz, mycielskian, power_law, rmat, uniform_random,
    RmatProbabilities,
};
use crate::CooMatrix;
use serde::{Deserialize, Serialize};

/// Matrix collection a dataset originates from (Table 2's two halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collection {
    /// The SuiteSparse matrix collection (Davis & Hu).
    SuiteSparse,
    /// The Stanford SNAP network collection (Leskovec & Krevl).
    Snap,
}

impl std::fmt::Display for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Collection::SuiteSparse => write!(f, "SuiteSparse"),
            Collection::Snap => write!(f, "SNAP"),
        }
    }
}

/// Synthetic recipe used to reproduce a dataset's structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Recipe {
    /// Uniform (Erdős–Rényi) placement — balanced LP-style matrices.
    Uniform,
    /// Power-law row degrees with the given exponent — social/web graphs.
    PowerLaw {
        /// Zipf exponent of the row-degree distribution.
        alpha: f64,
    },
    /// R-MAT recursive graph of dimension `2^scale`.
    Rmat {
        /// log2 of the matrix dimension.
        scale: u32,
    },
    /// Band of half-width `bandwidth` sampled to the exact NNZ — circuit
    /// and power-flow structure.
    Banded {
        /// Half-width of the band.
        bandwidth: usize,
    },
    /// Diagonal band plus `dense_rows` heavy global-constraint rows and
    /// columns — trajectory-optimization (KKT) structure.
    Arrow {
        /// Half-width of the band.
        bandwidth: usize,
        /// Number of dense boundary rows/columns.
        dense_rows: usize,
    },
    /// The exact Mycielski construction `M_k`.
    Mycielskian {
        /// Construction depth (`mycielskian12` is `k = 12`).
        k: u32,
    },
}

/// One row of Table 2: a named evaluation matrix and how to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Two-letter ID used throughout the paper's plots.
    pub id: &'static str,
    /// Full dataset name in its home collection.
    pub name: &'static str,
    /// Source collection.
    pub collection: Collection,
    /// Target number of explicit entries (Table 2's `NNZ` column).
    pub nnz: usize,
    /// Target density in percent (Table 2's `Density %` column).
    pub density_pct: f64,
    /// Generator recipe matched to the dataset's structure.
    pub recipe: Recipe,
    /// Seed used for deterministic generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// Matrix dimension implied by the NNZ and density targets
    /// (`n = sqrt(nnz / density)`), except for recipes that fix their own
    /// dimension (R-MAT, Mycielskian).
    pub fn dimension(&self) -> usize {
        match self.recipe {
            Recipe::Rmat { scale } => 1usize << scale,
            Recipe::Mycielskian { k } => {
                // n_2 = 2, n_{k+1} = 2 n_k + 1  =>  n_k = 3 * 2^(k-2) - 1.
                3 * (1usize << (k - 2)) - 1
            }
            _ => {
                let density = self.density_pct / 100.0;
                ((self.nnz as f64 / density).sqrt().round() as usize).max(1)
            }
        }
    }

    /// Generates the matrix for this spec.
    ///
    /// # Example
    ///
    /// ```
    /// use chason_sparse::datasets::table2;
    ///
    /// let spec = &table2()[3]; // MY = mycielskian12
    /// let m = spec.generate();
    /// assert_eq!(m.nnz(), spec.nnz);
    /// ```
    pub fn generate(&self) -> CooMatrix {
        let n = self.dimension();
        match self.recipe {
            Recipe::Uniform => uniform_random(n, n, self.nnz, self.seed),
            Recipe::PowerLaw { alpha } => power_law(n, n, self.nnz, alpha, self.seed),
            Recipe::Rmat { scale } => rmat(scale, self.nnz, RmatProbabilities::GRAPH500, self.seed),
            Recipe::Banded { bandwidth } => banded_with_nnz(n, bandwidth, self.nnz, self.seed),
            Recipe::Arrow {
                bandwidth,
                dense_rows,
            } => arrow_with_nnz(n, bandwidth, dense_rows, self.nnz, self.seed),
            Recipe::Mycielskian { k } => mycielskian(k, self.seed),
        }
    }
}

/// Half-width that guarantees the band holds at least `nnz` cells for an
/// `n × n` matrix.
const fn band_for(nnz: usize, n: usize) -> usize {
    // band cells >= n * (bandwidth + 1); solve for bandwidth with slack.
    let per_row = nnz / n + 1;
    if per_row < 2 {
        1
    } else {
        per_row
    }
}

/// The 20 matrices of Table 2.
///
/// Order follows the paper: 10 SuiteSparse rows, then 10 SNAP rows. Note the
/// paper reuses the ID `RE` for both `reorientation_4` and `Reuters911`; the
/// `collection` field disambiguates.
pub fn table2() -> Vec<DatasetSpec> {
    use Collection::*;
    vec![
        DatasetSpec {
            id: "DY",
            name: "dynamicSoaringProblem_8",
            collection: SuiteSparse,
            nnz: 38_136,
            density_pct: 0.303,
            recipe: Recipe::Arrow {
                bandwidth: band_for(38_136, 3548),
                dense_rows: 13,
            },
            seed: 0xD1,
        },
        DatasetSpec {
            id: "RE",
            name: "reorientation_4",
            collection: SuiteSparse,
            nnz: 33_630,
            density_pct: 0.455,
            recipe: Recipe::Arrow {
                bandwidth: band_for(33_630, 2719),
                dense_rows: 7,
            },
            seed: 0xD2,
        },
        DatasetSpec {
            id: "C5",
            name: "c52",
            collection: SuiteSparse,
            nnz: 20_278,
            density_pct: 0.000_35,
            recipe: Recipe::Arrow {
                bandwidth: 1,
                dense_rows: 2,
            },
            seed: 0xD3,
        },
        DatasetSpec {
            id: "MY",
            name: "mycielskian12",
            collection: SuiteSparse,
            nnz: 407_200,
            density_pct: 4.31,
            recipe: Recipe::Mycielskian { k: 12 },
            seed: 0xD4,
        },
        DatasetSpec {
            id: "VS",
            name: "vsp_c_30_data_data",
            collection: SuiteSparse,
            nnz: 124_368,
            density_pct: 0.102,
            recipe: Recipe::PowerLaw { alpha: 1.3 },
            seed: 0xD5,
        },
        DatasetSpec {
            id: "TS",
            name: "TSC_OPF_300",
            collection: SuiteSparse,
            nnz: 820_783,
            density_pct: 0.859,
            recipe: Recipe::Arrow {
                bandwidth: band_for(820_783, 9775),
                dense_rows: 12,
            },
            seed: 0xD6,
        },
        DatasetSpec {
            id: "LO",
            name: "lowThrust_7",
            collection: SuiteSparse,
            nnz: 211_561,
            density_pct: 0.070,
            recipe: Recipe::Arrow {
                bandwidth: band_for(211_561, 17_385),
                dense_rows: 31,
            },
            seed: 0xD7,
        },
        DatasetSpec {
            id: "HA",
            name: "hangGlider_3",
            collection: SuiteSparse,
            nnz: 92_703,
            density_pct: 0.088,
            recipe: Recipe::Arrow {
                bandwidth: band_for(92_703, 10_264),
                dense_rows: 14,
            },
            seed: 0xD8,
        },
        DatasetSpec {
            id: "TR",
            name: "trans5",
            collection: SuiteSparse,
            nnz: 749_800,
            density_pct: 0.005_41,
            recipe: Recipe::Arrow {
                bandwidth: band_for(749_800, 117_726),
                dense_rows: 12,
            },
            seed: 0xD9,
        },
        DatasetSpec {
            id: "CK",
            name: "ckt11752_dc_1",
            collection: SuiteSparse,
            nnz: 333_029,
            density_pct: 0.013_8,
            recipe: Recipe::Arrow {
                bandwidth: band_for(333_029, 49_125),
                dense_rows: 53,
            },
            seed: 0xDA,
        },
        DatasetSpec {
            id: "WI",
            name: "wiki-Vote",
            collection: Snap,
            nnz: 103_689,
            density_pct: 0.150_6,
            recipe: Recipe::PowerLaw { alpha: 1.6 },
            seed: 0xE1,
        },
        DatasetSpec {
            id: "EM",
            name: "email-Enron",
            collection: Snap,
            nnz: 367_332,
            density_pct: 0.027_2,
            recipe: Recipe::PowerLaw { alpha: 1.7 },
            seed: 0xE2,
        },
        DatasetSpec {
            id: "AS",
            name: "as-caida",
            collection: Snap,
            nnz: 106_762,
            density_pct: 0.010_8,
            recipe: Recipe::Rmat { scale: 15 },
            seed: 0xE3,
        },
        DatasetSpec {
            id: "OR",
            name: "Oregon-2",
            collection: Snap,
            nnz: 65_406,
            density_pct: 0.046_9,
            recipe: Recipe::PowerLaw { alpha: 1.9 },
            seed: 0xE4,
        },
        DatasetSpec {
            id: "WK",
            name: "wiki-RfA",
            collection: Snap,
            nnz: 188_077,
            density_pct: 0.145,
            recipe: Recipe::PowerLaw { alpha: 1.5 },
            seed: 0xE5,
        },
        DatasetSpec {
            id: "SC",
            name: "soc-Slashdot0811",
            collection: Snap,
            nnz: 905_468,
            density_pct: 0.015_1,
            recipe: Recipe::PowerLaw { alpha: 1.6 },
            seed: 0xE6,
        },
        DatasetSpec {
            id: "A7",
            name: "as-735",
            collection: Snap,
            nnz: 26_467,
            density_pct: 0.044_4,
            recipe: Recipe::PowerLaw { alpha: 2.0 },
            seed: 0xE7,
        },
        DatasetSpec {
            id: "CM",
            name: "CollegeMsg",
            collection: Snap,
            nnz: 20_296,
            density_pct: 0.562,
            recipe: Recipe::PowerLaw { alpha: 1.4 },
            seed: 0xE8,
        },
        DatasetSpec {
            id: "WB",
            name: "wb-cs-stanford",
            collection: Snap,
            nnz: 36_854,
            density_pct: 0.037_4,
            recipe: Recipe::PowerLaw { alpha: 1.7 },
            seed: 0xE9,
        },
        DatasetSpec {
            id: "RE",
            name: "Reuters911",
            collection: Snap,
            nnz: 296_076,
            density_pct: 0.166_7,
            recipe: Recipe::PowerLaw { alpha: 1.5 },
            seed: 0xEA,
        },
    ]
}

/// One member of the synthetic evaluation corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Index of this matrix within the corpus (0-based).
    pub index: usize,
    /// Generator family used.
    pub recipe: Recipe,
    /// Target number of explicit entries.
    pub nnz: usize,
    /// Matrix dimension.
    pub dimension: usize,
    /// Seed used for deterministic generation.
    pub seed: u64,
}

impl CorpusSpec {
    /// Generates the matrix for this spec.
    pub fn generate(&self) -> CooMatrix {
        let n = self.dimension;
        match self.recipe {
            Recipe::Uniform => uniform_random(n, n, self.nnz, self.seed),
            Recipe::PowerLaw { alpha } => power_law(n, n, self.nnz, alpha, self.seed),
            Recipe::Rmat { scale } => rmat(scale, self.nnz, RmatProbabilities::GRAPH500, self.seed),
            Recipe::Banded { bandwidth } => banded_with_nnz(n, bandwidth, self.nnz, self.seed),
            Recipe::Arrow {
                bandwidth,
                dense_rows,
            } => arrow_with_nnz(n, bandwidth, dense_rows, self.nnz, self.seed),
            Recipe::Mycielskian { k } => mycielskian(k, self.seed),
        }
    }
}

/// Builds the "800 matrices" corpus (Figures 3, 11, 14).
///
/// `count` matrices are generated with log-spaced NNZ in `1e3..1e6` and
/// densities spanning `1e-6..1e-1` (the ranges quoted in §5.4), cycling
/// through the generator families. Pass `count = 800` for the paper-scale
/// population; smaller counts sample the same parameter grid more coarsely.
///
/// The family mix is weighted toward skewed matrices (hub-row arrows and
/// power-law graphs), matching the population behaviour the paper reports:
/// PE-aware scheduling leaves ~70% of PE slots idle for the *typical*
/// matrix (Fig. 3) with a balanced tail reaching down to ~20%, and the
/// arrow entries sweep their hub-row weight so pre-migration stalls span
/// roughly 60–92%.
pub fn corpus(count: usize, seed: u64) -> Vec<CorpusSpec> {
    let mut specs = Vec::with_capacity(count);
    for i in 0..count {
        let t = if count > 1 {
            i as f64 / (count - 1) as f64
        } else {
            0.0
        };
        // Log-space nnz from 1e3 to 1e6, mass-weighted toward the upper
        // decades (the SuiteSparse population in this range is dominated by
        // 1e5-1e6-nnz matrices; a uniform log spacing would make a third of
        // the corpus tiny outliers).
        let nnz = (1.0e3 * (1.0e3_f64).powf(t.powf(0.55))).round() as usize;
        // Density from 1e-6 (largest matrices) up to 1e-1, interleaved so
        // every size bucket sees several densities.
        let density_exp = -6.0 + 5.0 * (((i * 7) % count.max(1)) as f64 / count.max(1) as f64);
        let density = 10f64.powf(density_exp);
        let n = ((nnz as f64 / density).sqrt().round() as usize).clamp(64, 200_000);
        let nnz = nnz.min(n * n);
        // Phase decorrelated from both size and density, used to sweep the
        // arrow entries' hub weight.
        let phase = ((i * 13) % count.max(1)) as f64 / count.max(1) as f64;
        let mean_band = (nnz / n + 1).max(1);
        // Hub-row weight targeting a chain-to-ideal ratio rho: a hub row of
        // h = 0.3 nnz / d non-zeros forces a RAW chain of 10 h cycles
        // against an ideal stream of nnz / 128 cycles — rho = 1280 h / nnz,
        // so d = 384 / rho dense rows.
        let arrow = |rho: f64| Recipe::Arrow {
            bandwidth: mean_band,
            dense_rows: ((384.0 / rho).round() as usize).clamp(1, (n / 8).max(1)),
        };
        let recipe = match i % 8 {
            0 => Recipe::Uniform,
            1 | 4 => arrow(1.2 + 0.9 * phase), // ~55-70% pre-migration stalls
            2 => arrow(1.4 + 0.8 * phase),     // ~60-72% pre-migration stalls
            3 | 6 => arrow(1.8 + 2.4 * phase), // ~68-88% pre-migration stalls
            5 => Recipe::PowerLaw {
                alpha: 1.4 + 0.5 * t,
            },
            _ => Recipe::Rmat {
                scale: (n as f64).log2().ceil().clamp(6.0, 17.0) as u32,
            },
        };
        let dimension = match recipe {
            Recipe::Rmat { scale } => 1usize << scale,
            _ => n,
        };
        specs.push(CorpusSpec {
            index: i,
            recipe,
            nnz: nnz.min(dimension * dimension),
            dimension,
            seed: seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_twenty_rows_in_paper_order() {
        let t = table2();
        assert_eq!(t.len(), 20);
        assert_eq!(t[0].id, "DY");
        assert_eq!(t[9].id, "CK");
        assert_eq!(t[10].id, "WI");
        assert_eq!(t[19].name, "Reuters911");
        assert!(t[..10]
            .iter()
            .all(|s| s.collection == Collection::SuiteSparse));
        assert!(t[10..].iter().all(|s| s.collection == Collection::Snap));
    }

    #[test]
    fn mycielskian_spec_dimension_matches_closed_form() {
        let my = &table2()[3];
        assert_eq!(my.dimension(), 3071);
    }

    /// Every Table 2 matrix lands on its NNZ target exactly (for exact
    /// recipes) or within 15% (for the dimension-constrained R-MAT recipe).
    #[test]
    fn table2_nnz_targets_are_met() {
        for spec in table2() {
            // Skip the two largest to keep unit tests fast; they are covered
            // by the integration suite.
            if spec.nnz > 500_000 {
                continue;
            }
            let m = spec.generate();
            let err = (m.nnz() as f64 - spec.nnz as f64).abs() / spec.nnz as f64;
            assert!(
                err < 0.15,
                "{}: generated {} vs target {}",
                spec.name,
                m.nnz(),
                spec.nnz
            );
        }
    }

    #[test]
    fn table2_density_targets_are_close() {
        for spec in table2() {
            if spec.nnz > 200_000 {
                continue;
            }
            let m = spec.generate();
            let got = m.density() * 100.0;
            let ratio = got / spec.density_pct;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: density {got:.4}% vs target {:.4}%",
                spec.name,
                spec.density_pct
            );
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(12, 7);
        let b = corpus(12, 7);
        assert_eq!(a, b);
        let m1 = a[3].generate();
        let m2 = b[3].generate();
        assert_eq!(m1, m2);
    }

    #[test]
    fn corpus_spans_the_nnz_range() {
        let specs = corpus(16, 1);
        let min = specs.iter().map(|s| s.nnz).min().unwrap();
        let max = specs.iter().map(|s| s.nnz).max().unwrap();
        assert!(min <= 2_000, "min nnz {min}");
        assert!(max >= 500_000, "max nnz {max}");
    }

    #[test]
    fn corpus_nnz_never_exceeds_cells() {
        for spec in corpus(25, 2) {
            assert!(spec.nnz <= spec.dimension * spec.dimension);
        }
    }

    #[test]
    fn corpus_generates_valid_matrices() {
        for spec in corpus(10, 3).into_iter().filter(|s| s.nnz < 50_000) {
            let m = spec.generate();
            assert!(m.nnz() > 0, "corpus matrix {} is empty", spec.index);
        }
    }

    #[test]
    fn collection_display_names() {
        assert_eq!(Collection::SuiteSparse.to_string(), "SuiteSparse");
        assert_eq!(Collection::Snap.to_string(), "SNAP");
    }
}
