//! Row/column permutation utilities.
//!
//! Row order matters to the accelerator: rows are striped across PEs as
//! `row % total_PEs` (Eq. 1), so permuting rows redistributes work across
//! channels — the software-only alternative to CrHCS that prior work
//! explored (§7.1 cites reordering-based SpMV optimizations). The
//! `ablation_row_order` experiment uses these helpers to quantify how much
//! of CrHCS's benefit a static reorder can and cannot recover.

use crate::{CooMatrix, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A permutation of `0..len` with its inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permutation {
    /// Builds a permutation from a forward map (`new_index = forward[old]`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedStructure`] if `forward` is not a
    /// permutation of `0..forward.len()`.
    pub fn from_forward(forward: Vec<usize>) -> Result<Self, SparseError> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            if new >= n || inverse[new] != usize::MAX {
                return Err(SparseError::MalformedStructure(format!(
                    "forward map is not a permutation (index {old} -> {new})"
                )));
            }
            inverse[new] = old;
        }
        Ok(Permutation { forward, inverse })
    }

    /// The identity permutation of `0..len`.
    pub fn identity(len: usize) -> Self {
        let forward: Vec<usize> = (0..len).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// A uniformly random permutation (Fisher–Yates, seeded).
    pub fn random(len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut forward: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = rng.gen_range(0..=i);
            forward.swap(i, j);
        }
        #[allow(clippy::expect_used)] // a Fisher-Yates shuffle of 0..len is a permutation
        let perm = Permutation::from_forward(forward).expect("shuffle yields a permutation");
        perm
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an old index to its new position.
    pub fn apply(&self, old: usize) -> usize {
        self.forward[old]
    }

    /// Maps a new position back to the old index.
    pub fn invert(&self, new: usize) -> usize {
        self.inverse[new]
    }
}

/// Builds the degree-interleaving row permutation: rows sorted by
/// population, then dealt round-robin across the PE stripes so each PE
/// receives a balanced mix of heavy and light rows.
///
/// This is the strongest *static* load-balancing reorder available to a
/// Serpens-style design without hardware changes; the ablation compares it
/// against CrHCS's dynamic migration. Note what it cannot fix: a single
/// RAW-chained hub row still serializes on one PE no matter where it lands.
pub fn degree_interleave(matrix: &CooMatrix, total_pes: usize) -> Permutation {
    let mut degrees = vec![0usize; matrix.rows()];
    for &(r, _, _) in matrix.iter() {
        degrees[r] += 1;
    }
    // Sort rows by descending degree (stable on index for determinism).
    let mut order: Vec<usize> = (0..matrix.rows()).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(degrees[r]), r));
    // Deal them out: the k-th heaviest row goes to stripe k % total_pes,
    // position k / total_pes within the stripe.
    let rows = matrix.rows();
    let mut forward = vec![0usize; rows];
    let pes = total_pes.max(1);
    for (k, &old) in order.iter().enumerate() {
        let stripe = k % pes;
        let depth = k / pes;
        let new = depth * pes + stripe;
        forward[old] = new.min(rows.saturating_sub(1));
    }
    // The construction above can exceed `rows` when rows % pes != 0 for the
    // deepest positions; repair by compacting collisions.
    repair(&mut forward);
    #[allow(clippy::expect_used)] // repair() leaves forward a bijection on 0..rows
    let perm = Permutation::from_forward(forward).expect("repair yields a permutation");
    perm
}

/// Repairs an almost-permutation by reassigning duplicate / out-of-range
/// targets to the unused slots in ascending order (stable for the rest).
fn repair(forward: &mut [usize]) {
    let n = forward.len();
    let mut used = vec![false; n];
    let mut needs_fix = Vec::new();
    for (i, f) in forward.iter().enumerate() {
        if *f < n && !used[*f] {
            used[*f] = true;
        } else {
            needs_fix.push(i);
        }
    }
    let mut free = (0..n).filter(|&s| !used[s]);
    for i in needs_fix {
        #[allow(clippy::expect_used)] // counting: one free slot exists per broken entry
        let slot = free.next().expect("free slots match broken entries");
        forward[i] = slot;
    }
}

/// Applies a row permutation to a matrix (`new_row = perm.apply(old_row)`).
///
/// # Panics
///
/// Panics if `perm.len() != matrix.rows()`.
pub fn permute_rows(matrix: &CooMatrix, perm: &Permutation) -> CooMatrix {
    assert_eq!(
        perm.len(),
        matrix.rows(),
        "permutation length must match rows"
    );
    let triplets = matrix
        .iter()
        .map(|&(r, c, v)| (perm.apply(r), c, v))
        .collect();
    #[allow(clippy::expect_used)] // a permutation maps valid rows to valid rows
    let permuted = CooMatrix::from_triplets(matrix.rows(), matrix.cols(), triplets)
        .expect("permutation preserves coordinate validity");
    permuted
}

/// Applies a row permutation to a dense vector indexed by row.
///
/// # Panics
///
/// Panics if `perm.len() != values.len()`.
pub fn permute_vector(values: &[f32], perm: &Permutation) -> Vec<f32> {
    assert_eq!(
        perm.len(),
        values.len(),
        "permutation length must match vector"
    );
    let mut out = vec![0.0f32; values.len()];
    for (old, &v) in values.iter().enumerate() {
        out[perm.apply(old)] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{arrow_with_nnz, uniform_random};
    use crate::stats::row_degrees;

    #[test]
    fn from_forward_validates() {
        assert!(Permutation::from_forward(vec![0, 2, 1]).is_ok());
        assert!(Permutation::from_forward(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_forward(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::random(50, 9);
        for i in 0..50 {
            assert_eq!(p.invert(p.apply(i)), i);
        }
    }

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(10);
        assert!((0..10).all(|i| p.apply(i) == i));
    }

    #[test]
    fn permute_rows_preserves_spmv_up_to_reorder() {
        let m = uniform_random(40, 30, 200, 4);
        let p = Permutation::random(40, 7);
        let pm = permute_rows(&m, &p);
        let x: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect();
        let y = m.spmv(&x);
        let py = pm.spmv(&x);
        for old in 0..40 {
            assert_eq!(py[p.apply(old)], y[old], "row {old} moved incorrectly");
        }
        // And the helper agrees.
        assert_eq!(permute_vector(&y, &p), py);
    }

    #[test]
    fn degree_interleave_balances_stripes() {
        let m = arrow_with_nnz(512, 2, 8, 8_000, 3);
        let pes = 16;
        let p = degree_interleave(&m, pes);
        let pm = permute_rows(&m, &p);
        let deg = row_degrees(&pm);
        // Per-stripe totals should be close to each other.
        let mut stripe_load = vec![0usize; pes];
        for (r, &d) in deg.iter().enumerate() {
            stripe_load[r % pes] += d;
        }
        let max = *stripe_load.iter().max().unwrap();
        let min = *stripe_load.iter().min().unwrap();
        assert!(
            max <= min * 2 + 16,
            "interleave should balance stripes: {stripe_load:?}"
        );
    }

    #[test]
    fn degree_interleave_handles_ragged_row_counts() {
        // rows % pes != 0 exercises the repair path.
        let m = uniform_random(37, 37, 150, 2);
        let p = degree_interleave(&m, 8);
        assert_eq!(p.len(), 37);
        // Must still be a valid permutation (from_forward validated it).
        let mut seen = [false; 37];
        for i in 0..37 {
            assert!(!seen[p.apply(i)]);
            seen[p.apply(i)] = true;
        }
    }

    #[test]
    #[should_panic(expected = "must match rows")]
    fn permute_rows_length_mismatch_panics() {
        let m = uniform_random(10, 10, 20, 1);
        let p = Permutation::identity(9);
        let _ = permute_rows(&m, &p);
    }
}
