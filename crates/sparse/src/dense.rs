use crate::SparseError;
use serde::{Deserialize, Serialize};

/// A dense row-major FP32 matrix.
///
/// Used as the `B` and `C` operands of the SpMM extension (§7.2 of the
/// paper: `C = αAB + βC`) and as a convenience for building test oracles.
///
/// # Example
///
/// ```
/// use chason_sparse::DenseMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedStructure`] when `data.len() !=
    /// rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, SparseError> {
        if data.len() != rows * cols {
            return Err(SparseError::MalformedStructure(format!(
                "dense data length {} != {rows} x {cols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads one cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Writes one cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn column(&self, col: usize) -> Vec<f32> {
        assert!(col < self.cols, "dense index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + col])
            .collect()
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Scales every cell by `factor`.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Largest absolute cell-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in dense comparison"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(3, 2);
        assert_eq!(m.get(2, 1), 0.0);
        m.set(2, 1, 7.5);
        assert_eq!(m.get(2, 1), 7.5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_fn_fills_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.column(2), vec![2.0, 12.0]);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.data(), &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn scale_and_diff() {
        let mut a = DenseMatrix::from_row_major(1, 3, vec![1.0, -2.0, 3.0]).unwrap();
        let b = a.clone();
        a.scale(2.0);
        assert_eq!(a.data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let m = DenseMatrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }
}
