use crate::{CooMatrix, CsrMatrix, SparseError, Triplet};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse column (CSC) form.
///
/// CSC is the column-major dual of [`CsrMatrix`]. The window partitioner in
/// `chason-core` uses it to slice matrices into `W = 8192`-column segments
/// (§4.1 of the paper) without re-scanning all entries per window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from its raw parts.
    ///
    /// # Errors
    ///
    /// Mirrors [`CsrMatrix::from_parts`]: malformed pointer arrays, length
    /// mismatches, out-of-range row indices, or non-increasing row indices
    /// within a column are rejected.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::MalformedStructure(format!(
                "col_ptr length {} must be cols + 1 = {}",
                col_ptr.len(),
                cols + 1
            )));
        }
        if col_ptr.first() != Some(&0) {
            return Err(SparseError::MalformedStructure(
                "col_ptr must start at 0".to_string(),
            ));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::MalformedStructure(format!(
                "row_idx length {} must equal values length {}",
                row_idx.len(),
                values.len()
            )));
        }
        #[allow(clippy::expect_used)] // col_ptr length was checked to be cols + 1 above
        let col_ptr_end = *col_ptr.last().expect("col_ptr is non-empty");
        if col_ptr_end != row_idx.len() {
            return Err(SparseError::MalformedStructure(format!(
                "col_ptr must end at nnz = {}",
                row_idx.len()
            )));
        }
        for w in col_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::MalformedStructure(
                    "col_ptr must be non-decreasing".to_string(),
                ));
            }
        }
        for c in 0..cols {
            let slice = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for (i, &r) in slice.iter().enumerate() {
                if r >= rows {
                    return Err(SparseError::RowOutOfBounds { row: r, rows });
                }
                if i > 0 && slice[i - 1] >= r {
                    return Err(SparseError::MalformedStructure(format!(
                        "row indices in column {c} must be strictly increasing"
                    )));
                }
            }
        }
        Ok(CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicit entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (`cols + 1` entries, starting at 0).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row indices and values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> (&[usize], &[f32]) {
        let span = self.col_ptr[c]..self.col_ptr[c + 1];
        (&self.row_idx[span.clone()], &self.values[span])
    }

    /// Iterates over all entries as `(row, col, value)` triplets in
    /// column-major order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Extracts the sub-matrix of columns `col_start..col_end` as triplets,
    /// with column indices rebased to `0..(col_end - col_start)`.
    ///
    /// This is the primitive behind window partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `col_start > col_end` or `col_end > self.cols()`.
    pub fn column_window(&self, col_start: usize, col_end: usize) -> Vec<Triplet> {
        assert!(
            col_start <= col_end && col_end <= self.cols,
            "invalid column window"
        );
        let mut out = Vec::new();
        for c in col_start..col_end {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                out.push((r, c - col_start, v));
            }
        }
        out
    }

    /// Computes `y = A·x` (column-major accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "dense vector length must equal matrix columns"
        );
        let mut y = vec![0.0f32; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r] += v * xc;
            }
        }
        y
    }
}

impl From<&CooMatrix> for CscMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols + 1];
        for &(_, c, _) in coo.iter() {
            col_ptr[c + 1] += 1;
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0usize; coo.nnz()];
        let mut values = vec![0.0f32; coo.nnz()];
        // COO iterates by (row, col); filling per-column cursors yields rows
        // in increasing order within each column.
        for &(r, c, v) in coo.iter() {
            let slot = cursor[c];
            row_idx[slot] = r;
            values[slot] = v;
            cursor[c] += 1;
        }
        CscMatrix {
            rows: coo.rows(),
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

impl From<&CsrMatrix> for CscMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        CscMatrix::from(&CooMatrix::from(csr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        // [1 0 2]
        // [0 0 0]
        // [0 3 4]
        CooMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn conversion_from_coo_is_column_sorted() {
        let csc = CscMatrix::from(&sample_coo());
        let t: Vec<_> = csc.iter().collect();
        assert_eq!(t, vec![(0, 0, 1.0), (2, 1, 3.0), (0, 2, 2.0), (2, 2, 4.0)]);
    }

    #[test]
    fn spmv_matches_csr() {
        let coo = sample_coo();
        let csr = CsrMatrix::from(&coo);
        let csc = CscMatrix::from(&coo);
        let x = [0.5, -2.0, 1.5];
        assert_eq!(csc.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn column_window_rebases_indices() {
        let csc = CscMatrix::from(&sample_coo());
        let w = csc.column_window(1, 3);
        assert_eq!(w, vec![(2, 0, 3.0), (0, 1, 2.0), (2, 1, 4.0)]);
    }

    #[test]
    fn column_window_empty_range_is_empty() {
        let csc = CscMatrix::from(&sample_coo());
        assert!(csc.column_window(1, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid column window")]
    fn column_window_rejects_reversed_range() {
        let csc = CscMatrix::from(&sample_coo());
        let _ = csc.column_window(2, 1);
    }

    #[test]
    fn from_parts_validates_row_bounds() {
        let err = CscMatrix::from_parts(2, 1, vec![0, 1], vec![7], vec![1.0]).unwrap_err();
        assert_eq!(err, SparseError::RowOutOfBounds { row: 7, rows: 2 });
    }

    #[test]
    fn from_parts_validates_sorted_rows() {
        let err = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn csr_to_csc_preserves_entries() {
        let coo = sample_coo();
        let csr = CsrMatrix::from(&coo);
        let csc = CscMatrix::from(&csr);
        let mut a: Vec<_> = csc.iter().collect();
        a.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(a, coo.triplets());
    }
}
