use crate::{CooMatrix, SparseError, Triplet};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// CSR is the processing-friendly format: row-major iteration is O(nnz), and
/// it is the layout every SpMV baseline in `chason-baselines` consumes. The
/// row-pointer / column-index / value arrays follow the textbook layout:
/// row `r`'s entries live at `values[row_ptr[r]..row_ptr[r + 1]]`.
///
/// # Example
///
/// ```
/// use chason_sparse::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let coo = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)])?;
/// let csr = CsrMatrix::from(&coo);
/// assert_eq!(csr.row(1), (&[1][..], &[2.0][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedStructure`] when the arrays are
    /// inconsistent (wrong `row_ptr` length, non-monotonic pointers,
    /// mismatched index/value lengths) and
    /// [`SparseError::ColOutOfBounds`] for an out-of-range column index.
    /// Column indices within a row must be strictly increasing.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedStructure(format!(
                "row_ptr length {} must be rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr.first() != Some(&0) {
            return Err(SparseError::MalformedStructure(
                "row_ptr must start at 0".to_string(),
            ));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedStructure(format!(
                "col_idx length {} must equal values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        #[allow(clippy::expect_used)] // row_ptr length was checked to be rows + 1 above
        let row_ptr_end = *row_ptr.last().expect("row_ptr is non-empty");
        if row_ptr_end != col_idx.len() {
            return Err(SparseError::MalformedStructure(format!(
                "row_ptr must end at nnz = {}",
                col_idx.len()
            )));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::MalformedStructure(
                    "row_ptr must be non-decreasing".to_string(),
                ));
            }
        }
        for r in 0..rows {
            let slice = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (i, &c) in slice.iter().enumerate() {
                if c >= cols {
                    return Err(SparseError::ColOutOfBounds { col: c, cols });
                }
                if i > 0 && slice[i - 1] >= c {
                    return Err(SparseError::MalformedStructure(format!(
                        "column indices in row {r} must be strictly increasing"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicit entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that hold an explicit entry, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.values.len() as f64 / cells
        }
    }

    /// The row-pointer array (`rows + 1` entries, starting at 0).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array, row-major.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[usize], &[f32]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Number of explicit entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterates over all entries as `(row, col, value)` triplets in row-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "dense vector length must equal matrix columns"
        );
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Computes `y = A·x` into a caller-provided buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(
            x.len(),
            self.cols,
            "dense vector length must equal matrix columns"
        );
        assert_eq!(y.len(), self.rows, "output length must equal matrix rows");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            *out = acc;
        }
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in coo.iter() {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let nnz = coo.nnz();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        // COO entries are already sorted by (row, col).
        for &(_, c, v) in coo.iter() {
            col_idx.push(c);
            values.push(v);
        }
        CsrMatrix {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        #[allow(clippy::expect_used)] // a valid CSR matrix always yields valid triplets
        let coo = CooMatrix::from_triplets(csr.rows(), csr.cols(), csr.iter().collect())
            .expect("a valid CSR matrix always yields valid triplets");
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [0 3 4]
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn from_parts_accepts_valid_structure() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_parts_rejects_bad_row_ptr_length() {
        let err = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn from_parts_rejects_nonzero_start() {
        let err = CsrMatrix::from_parts(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn from_parts_rejects_decreasing_row_ptr() {
        let err =
            CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn from_parts_rejects_wrong_tail() {
        let err = CsrMatrix::from_parts(1, 2, vec![0, 3], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn from_parts_rejects_col_out_of_bounds() {
        let err = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert_eq!(err, SparseError::ColOutOfBounds { col: 5, cols: 2 });
    }

    #[test]
    fn from_parts_rejects_unsorted_columns_within_row() {
        let err = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedStructure(_)));
    }

    #[test]
    fn conversion_from_coo_round_trips() {
        let coo = CooMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)],
        )
        .unwrap();
        let csr = CsrMatrix::from(&coo);
        let back = CooMatrix::from(&csr);
        assert_eq!(back, coo);
    }

    #[test]
    fn spmv_matches_coo_spmv() {
        let m = sample();
        let coo = CooMatrix::from(&m);
        let x = [1.0, -1.0, 2.0];
        assert_eq!(m.spmv(&x), coo.spmv(&x));
    }

    #[test]
    fn spmv_handles_empty_rows() {
        let m = sample();
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y[1], 0.0);
    }

    #[test]
    fn spmv_into_overwrites_stale_output() {
        let m = sample();
        let mut y = vec![99.0; 3];
        m.spmv_into(&[0.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)]);
    }
}
