use super::rng_for;
use crate::CooMatrix;
use rand::Rng;
use std::collections::HashSet;

/// Generates an `n × n` "arrow" matrix with *exactly* `nnz` entries: a
/// diagonal band of half-width `bandwidth` plus `dense_rows` heavy boundary
/// rows (and matching boundary columns) that each touch a large fraction of
/// the matrix.
///
/// This is the structure of direct-transcription optimal-control KKT
/// systems (`dynamicSoaringProblem`, `lowThrust`, `hangGlider`,
/// `reorientation`, `TSC_OPF`): per-stage locality in the band plus a few
/// global-constraint rows that are nearly full. The heavy rows are what
/// cripples intra-channel scheduling — a row with `h` non-zeros needs
/// `h × D` cycles on its single PE under PE-aware scheduling, which is why
/// Serpens shows 80–100% PE underutilization on these matrices (Fig. 12)
/// and why CrHCS's cross-channel migration helps most.
///
/// Approximately 60% of `nnz` lands in the heavy boundary rows/columns and
/// 40% in the band; `nnz` is clamped to the structure's capacity.
///
/// # Panics
///
/// Panics if `dense_rows > n`.
///
/// # Example
///
/// ```
/// use chason_sparse::{generators::arrow_with_nnz, stats::row_stats};
///
/// let m = arrow_with_nnz(2000, 4, 4, 30_000, 7);
/// assert_eq!(m.nnz(), 30_000);
/// // The boundary rows are orders of magnitude heavier than band rows.
/// assert!(row_stats(&m).max_row_nnz > 1_000);
/// ```
pub fn arrow_with_nnz(
    n: usize,
    bandwidth: usize,
    dense_rows: usize,
    nnz: usize,
    seed: u64,
) -> CooMatrix {
    assert!(
        dense_rows <= n,
        "dense_rows cannot exceed the matrix dimension"
    );
    let mut rng = rng_for(seed);
    if n == 0 {
        return CooMatrix::new(0, 0);
    }
    let mut coords: HashSet<(usize, usize)> = HashSet::with_capacity(nnz);
    // The boundary block occupies the last `dense_rows` rows and columns.
    let boundary_start = n - dense_rows;
    let band_cells: usize = (0..n)
        .map(|r| {
            let lo = r.saturating_sub(bandwidth);
            let hi = (r + bandwidth).min(n - 1);
            hi - lo + 1
        })
        .sum();
    let boundary_distinct = 2 * dense_rows * n - dense_rows * dense_rows;
    let target = nnz.min(band_cells + boundary_distinct);

    // Heavy boundary rows: ~30% of the mass split *exactly evenly* across
    // the dense rows, so the maximum row population — the quantity that
    // sets the RAW-chain length and hence the scheduling behaviour — is
    // deterministic, not subject to sampling variance.
    if let Some(per_row) = (target * 3 / 10).checked_div(dense_rows) {
        let per_row = per_row.min(n);
        for i in 0..dense_rows {
            let r = boundary_start + i;
            let mut cols_used = HashSet::with_capacity(per_row);
            while cols_used.len() < per_row {
                cols_used.insert(rng.gen_range(0..n));
            }
            for c in cols_used {
                coords.insert((r, c));
            }
        }
        // Heavy boundary columns: another ~30%, sampled uniformly (their
        // entries spread across all rows, so they do not move the maximum).
        let col_target = (coords.len() + target * 3 / 10).min(target);
        let mut guard = 0usize;
        while coords.len() < col_target && guard < 64 * target.max(1) {
            guard += 1;
            let r = rng.gen_range(0..n);
            let c = boundary_start + rng.gen_range(0..dense_rows);
            coords.insert((r, c));
        }
    }
    // Fill the remainder from the band.
    let mut guard = 0usize;
    while coords.len() < target && guard < 64 * target.max(1) {
        guard += 1;
        let r = rng.gen_range(0..n);
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth).min(n - 1);
        coords.insert((r, rng.gen_range(lo..=hi)));
    }
    // Saturated structures (tiny bands): top up anywhere to honour `nnz`.
    while coords.len() < nnz.min(n * n) {
        coords.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    super::matrix_from_coords(n, n, coords, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{row_degrees, row_stats};

    #[test]
    fn exact_nnz_is_produced() {
        let m = arrow_with_nnz(1000, 3, 2, 8000, 3);
        assert_eq!(m.nnz(), 8000);
    }

    #[test]
    fn boundary_rows_are_the_heaviest() {
        let m = arrow_with_nnz(1000, 3, 3, 9000, 5);
        let deg = row_degrees(&m);
        let max_boundary = deg[997..].iter().max().copied().unwrap();
        let max_interior = deg[..997].iter().max().copied().unwrap();
        assert!(
            max_boundary > 4 * max_interior,
            "boundary {max_boundary} vs interior {max_interior}"
        );
    }

    #[test]
    fn interior_entries_stay_in_band_or_boundary_columns() {
        let m = arrow_with_nnz(500, 2, 2, 3000, 9);
        for &(r, c, _) in m.iter() {
            let in_band = r.abs_diff(c) <= 2;
            let in_boundary = r >= 498 || c >= 498;
            assert!(in_band || in_boundary, "stray entry ({r}, {c})");
        }
    }

    #[test]
    fn no_dense_rows_degenerates_to_a_band() {
        let m = arrow_with_nnz(300, 2, 0, 1000, 1);
        assert_eq!(m.nnz(), 1000);
        let s = row_stats(&m);
        assert!(s.max_row_nnz <= 5);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            arrow_with_nnz(200, 2, 2, 900, 4),
            arrow_with_nnz(200, 2, 2, 900, 4)
        );
        assert_ne!(
            arrow_with_nnz(200, 2, 2, 900, 4),
            arrow_with_nnz(200, 2, 2, 900, 5)
        );
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_too_many_dense_rows() {
        let _ = arrow_with_nnz(10, 1, 11, 10, 0);
    }
}
