use super::{rng_for, sample_value};
use crate::CooMatrix;
use rand::Rng;

/// Generates an `n × n` block-diagonal matrix: `n / block` dense-ish blocks
/// along the diagonal, each cell populated with probability `fill`.
///
/// Block-diagonal structure models decoupled sub-problems (multi-scenario
/// optimization, partitioned circuits). Rows inside a block are heavy while
/// rows between blocks may be empty when `fill < 1`, giving a bimodal degree
/// distribution distinct from both [`super::banded`] and
/// [`super::power_law`].
///
/// The trailing partial block (when `block` does not divide `n`) is
/// generated too.
///
/// # Panics
///
/// Panics if `block == 0` or `fill` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::block_diagonal;
///
/// let m = block_diagonal(8, 4, 1.0, 0);
/// assert_eq!(m.nnz(), 2 * 16); // two full 4x4 blocks
/// ```
pub fn block_diagonal(n: usize, block: usize, fill: f64, seed: u64) -> CooMatrix {
    assert!(block > 0, "block size must be positive");
    assert!((0.0..=1.0).contains(&fill), "fill must be within [0, 1]");
    let mut rng = rng_for(seed);
    let mut triplets = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        for r in start..end {
            for c in start..end {
                if fill >= 1.0 || rng.gen::<f64>() < fill {
                    triplets.push((r, c, sample_value(&mut rng)));
                }
            }
        }
        start = end;
    }
    #[allow(clippy::expect_used)] // block coordinates are unique by construction
    let matrix = CooMatrix::from_triplets(n, n, triplets).expect("block coordinates are valid");
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_blocks_have_expected_count() {
        let m = block_diagonal(12, 3, 1.0, 0);
        assert_eq!(m.nnz(), 4 * 9);
    }

    #[test]
    fn partial_trailing_block_is_generated() {
        let m = block_diagonal(10, 4, 1.0, 0);
        // blocks: 4x4, 4x4, 2x2
        assert_eq!(m.nnz(), 16 + 16 + 4);
    }

    #[test]
    fn entries_stay_within_their_block() {
        let m = block_diagonal(20, 5, 0.8, 2);
        for &(r, c, _) in m.iter() {
            assert_eq!(r / 5, c / 5, "entry ({r},{c}) crosses a block boundary");
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn rejects_zero_block() {
        let _ = block_diagonal(4, 0, 1.0, 0);
    }

    #[test]
    fn zero_size_is_empty() {
        assert_eq!(block_diagonal(0, 4, 1.0, 0).nnz(), 0);
    }
}
