use super::{matrix_from_coords, rng_for};
use crate::CooMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Quadrant probabilities for the R-MAT recursive generator.
///
/// The four probabilities correspond to the top-left, top-right, bottom-left
/// and bottom-right quadrants at every recursion level and must sum to 1.
/// The classic Graph500 setting is `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatProbabilities {
    /// Top-left quadrant probability (`a`).
    pub a: f64,
    /// Top-right quadrant probability (`b`).
    pub b: f64,
    /// Bottom-left quadrant probability (`c`).
    pub c: f64,
    /// Bottom-right quadrant probability (`d`).
    pub d: f64,
}

impl RmatProbabilities {
    /// The Graph500 reference setting `(0.57, 0.19, 0.19, 0.05)`.
    pub const GRAPH500: RmatProbabilities = RmatProbabilities {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Validates that the probabilities are non-negative and sum to ~1.
    pub fn is_valid(&self) -> bool {
        let parts = [self.a, self.b, self.c, self.d];
        parts.iter().all(|p| p.is_finite() && *p >= 0.0)
            && (parts.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

impl Default for RmatProbabilities {
    fn default() -> Self {
        RmatProbabilities::GRAPH500
    }
}

/// Generates a `2^scale × 2^scale` R-MAT matrix with `nnz` distinct entries.
///
/// R-MAT recursively subdivides the adjacency matrix, biasing entries toward
/// one quadrant. It produces the community structure plus degree skew of
/// autonomous-system graphs (`as-caida`, `Oregon-2`, `as-735`).
///
/// # Panics
///
/// Panics if `probs` is invalid (see [`RmatProbabilities::is_valid`]) or if
/// `scale >= usize::BITS`.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::{rmat, RmatProbabilities};
///
/// let m = rmat(8, 1000, RmatProbabilities::GRAPH500, 42);
/// assert_eq!(m.rows(), 256);
/// assert_eq!(m.nnz(), 1000);
/// ```
pub fn rmat(scale: u32, nnz: usize, probs: RmatProbabilities, seed: u64) -> CooMatrix {
    assert!(
        probs.is_valid(),
        "R-MAT probabilities must be non-negative and sum to 1"
    );
    assert!(scale < usize::BITS, "scale too large for usize");
    let n = 1usize << scale;
    let cells = n.saturating_mul(n);
    let target = nnz.min(cells);
    let mut rng = rng_for(seed);
    let mut coords: HashSet<(usize, usize)> = HashSet::with_capacity(target);
    let mut misses = 0usize;
    while coords.len() < target {
        let mut r = 0usize;
        let mut c = 0usize;
        for _ in 0..scale {
            let x: f64 = rng.gen();
            let (dr, dc) = if x < probs.a {
                (0, 0)
            } else if x < probs.a + probs.b {
                (0, 1)
            } else if x < probs.a + probs.b + probs.c {
                (1, 0)
            } else {
                (1, 1)
            };
            r = (r << 1) | dr;
            c = (c << 1) | dc;
        }
        if !coords.insert((r, c)) {
            misses += 1;
            // Heavily duplicated region: the remaining mass may be tiny; bail
            // out to uniform fill to guarantee termination at exactly target.
            if misses > 64 * target.max(1) {
                while coords.len() < target {
                    coords.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
                }
                break;
            }
        }
    }
    matrix_from_coords(n, n, coords, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::row_stats;

    #[test]
    fn shape_is_power_of_two() {
        let m = rmat(6, 100, RmatProbabilities::GRAPH500, 1);
        assert_eq!(m.rows(), 64);
        assert_eq!(m.cols(), 64);
    }

    #[test]
    fn exact_nnz() {
        let m = rmat(8, 2000, RmatProbabilities::GRAPH500, 1);
        assert_eq!(m.nnz(), 2000);
    }

    #[test]
    fn skew_exceeds_uniform() {
        let uniform = RmatProbabilities {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g_uniform = row_stats(&rmat(9, 4000, uniform, 3)).gini;
        let g_rmat = row_stats(&rmat(9, 4000, RmatProbabilities::GRAPH500, 3)).gini;
        assert!(g_rmat > g_uniform);
    }

    #[test]
    fn saturated_region_terminates() {
        // scale 2 → 16 cells; ask for all of them with extreme skew.
        let probs = RmatProbabilities {
            a: 0.97,
            b: 0.01,
            c: 0.01,
            d: 0.01,
        };
        let m = rmat(2, 16, probs, 3);
        assert_eq!(m.nnz(), 16);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_invalid_probabilities() {
        let bad = RmatProbabilities {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        };
        let _ = rmat(4, 10, bad, 0);
    }

    #[test]
    fn graph500_constant_is_valid() {
        assert!(RmatProbabilities::GRAPH500.is_valid());
        assert!(RmatProbabilities::default().is_valid());
    }
}
