use super::{rng_for, sample_value};
use crate::CooMatrix;
use rand::Rng;

/// Generates an `n × n` banded matrix: cells within `bandwidth` of the
/// diagonal are populated independently with probability `fill`.
///
/// Banded structure is the discretised-PDE / circuit regime of SuiteSparse
/// matrices (`ckt11752_dc_1`, `trans5`): rows are near-uniformly populated,
/// so stalls come from RAW dependencies rather than load imbalance.
///
/// # Panics
///
/// Panics if `fill` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::banded;
///
/// let m = banded(100, 2, 1.0, 0);
/// // Full tridiagonal-plus band: every |r - c| <= 2 cell present.
/// assert_eq!(m.nnz(), 100 + 2 * 99 + 2 * 98);
/// ```
pub fn banded(n: usize, bandwidth: usize, fill: f64, seed: u64) -> CooMatrix {
    assert!((0.0..=1.0).contains(&fill), "fill must be within [0, 1]");
    let mut rng = rng_for(seed);
    let mut triplets = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth).min(n.saturating_sub(1));
        for c in lo..=hi {
            if n == 0 {
                break;
            }
            if fill >= 1.0 || rng.gen::<f64>() < fill {
                triplets.push((r, c, sample_value(&mut rng)));
            }
        }
    }
    #[allow(clippy::expect_used)] // band coordinates are unique by construction
    let matrix = CooMatrix::from_triplets(n, n, triplets).expect("band coordinates are valid");
    matrix
}

/// Generates an `n × n` banded matrix with *exactly* `nnz` entries sampled
/// uniformly from the band of half-width `bandwidth`.
///
/// Used by the dataset catalog to hit Table 2's per-matrix non-zero counts
/// precisely. `nnz` is clamped to the number of cells in the band.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::banded_with_nnz;
///
/// let m = banded_with_nnz(1000, 8, 5000, 1);
/// assert_eq!(m.nnz(), 5000);
/// ```
pub fn banded_with_nnz(n: usize, bandwidth: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = rng_for(seed);
    if n == 0 {
        return CooMatrix::new(0, 0);
    }
    // Count the band cells exactly (edge rows have truncated bands).
    let band_cells: usize = (0..n)
        .map(|r| {
            let lo = r.saturating_sub(bandwidth);
            let hi = (r + bandwidth).min(n - 1);
            hi - lo + 1
        })
        .sum();
    let target = nnz.min(band_cells);
    let mut coords = std::collections::HashSet::with_capacity(target);
    while coords.len() < target {
        let r = rng.gen_range(0..n);
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth).min(n - 1);
        let c = rng.gen_range(lo..=hi);
        coords.insert((r, c));
    }
    super::matrix_from_coords(n, n, coords, &mut rng)
}

/// Generates an `n × n` diagonal matrix with random non-zero values.
///
/// The degenerate one-entry-per-row case: every PE gets exactly one value per
/// owned row, maximising RAW-dependency stalls under row-based scheduling.
pub fn diagonal(n: usize, seed: u64) -> CooMatrix {
    let mut rng = rng_for(seed);
    let triplets = (0..n).map(|i| (i, i, sample_value(&mut rng))).collect();
    #[allow(clippy::expect_used)] // diagonal coordinates are unique by construction
    let matrix = CooMatrix::from_triplets(n, n, triplets).expect("diagonal coordinates are valid");
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_band_has_expected_count() {
        // bandwidth 1 tridiagonal: n + 2(n-1) entries.
        let m = banded(10, 1, 1.0, 0);
        assert_eq!(m.nnz(), 10 + 2 * 9);
    }

    #[test]
    fn entries_stay_within_band() {
        let m = banded(50, 3, 0.7, 4);
        for &(r, c, _) in m.iter() {
            assert!(r.abs_diff(c) <= 3, "entry ({r},{c}) escapes bandwidth 3");
        }
    }

    #[test]
    fn fill_zero_is_empty() {
        assert_eq!(banded(20, 2, 0.0, 4).nnz(), 0);
    }

    #[test]
    fn partial_fill_is_between_bounds() {
        let m = banded(200, 1, 0.5, 4);
        let max = 200 + 2 * 199;
        assert!(m.nnz() > max / 4 && m.nnz() < 3 * max / 4);
    }

    #[test]
    fn zero_size_is_empty() {
        assert_eq!(banded(0, 5, 1.0, 0).nnz(), 0);
        assert_eq!(diagonal(0, 0).nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_bad_fill() {
        let _ = banded(4, 1, 1.5, 0);
    }

    #[test]
    fn diagonal_has_one_entry_per_row() {
        let m = diagonal(17, 3);
        assert_eq!(m.nnz(), 17);
        for &(r, c, _) in m.iter() {
            assert_eq!(r, c);
        }
    }
}
