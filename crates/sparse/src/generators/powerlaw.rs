use super::{rng_for, sample_value};
use crate::CooMatrix;
use rand::Rng;
use std::collections::HashSet;

/// Generates a matrix whose row populations follow a (truncated) power law
/// with exponent `alpha`, approximating the degree skew of SNAP social / web
/// graphs (`wiki-Vote`, `email-Enron`, `as-caida`, ...).
///
/// Row `i` (after a random permutation) receives a degree proportional to
/// `(i + 1)^-alpha`; columns are drawn uniformly. The result has *exactly*
/// `nnz` entries (clamped to `rows * cols`), many empty rows, and a handful
/// of very heavy rows — the regime where PE-aware scheduling leaves ~70% of
/// PEs idle (Fig. 3) and CrHCS helps most.
///
/// Row degrees are additionally capped at `~2.5·sqrt(nnz)`: the maximum
/// degrees of the paper's SNAP graphs all fall near that envelope
/// (wiki-Vote 457 ≈ 1.4·√nnz, email-Enron 1383 ≈ 2.3·√nnz, Slashdot
/// ≈ 2.6·√nnz), whereas an uncapped Zipf head would put 30-50% of all
/// edges on one vertex — a skew regime no real SNAP graph exhibits.
///
/// # Panics
///
/// Panics if `alpha` is not finite or is negative.
///
/// # Example
///
/// ```
/// use chason_sparse::{generators::power_law, stats::row_stats};
///
/// let m = power_law(500, 500, 4000, 1.6, 7);
/// assert_eq!(m.nnz(), 4000);
/// assert!(row_stats(&m).gini > 0.45); // heavily skewed
/// ```
pub fn power_law(rows: usize, cols: usize, nnz: usize, alpha: f64, seed: u64) -> CooMatrix {
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be finite and non-negative"
    );
    if rows == 0 || cols == 0 {
        return CooMatrix::new(rows, cols);
    }
    let mut rng = rng_for(seed);
    let cells = rows.saturating_mul(cols);
    let target = nnz.min(cells);
    // Realistic maximum degree (see the type-level docs). The mean-based
    // floor keeps tiny matrices generable.
    let mean = target.div_ceil(rows.max(1));
    let degree_cap =
        cols.min(((2.5 * (target as f64).sqrt()).ceil() as usize).max(8 * mean.max(1)));

    // Zipf weights over the rows, shuffled so heavy rows land anywhere.
    let mut weights: Vec<f64> = (0..rows).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let mut order: Vec<usize> = (0..rows).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    // Ideal (real-valued) degrees, floored; the fractional remainder is then
    // distributed by *weighted sampling* so light rows stay empty with high
    // probability — real power-law graphs have many zero-degree vertices,
    // and those empty rows are exactly what starves PEs in the paper.
    let mut degrees = vec![0usize; rows];
    let mut assigned = 0usize;
    for (rank, &row) in order.iter().enumerate() {
        let base = ((weights[rank] * target as f64).floor() as usize).min(degree_cap);
        degrees[row] = base;
        assigned += base;
    }
    // Cumulative weights in row order for binary-search sampling.
    let mut by_row = vec![0.0f64; rows];
    for (rank, &row) in order.iter().enumerate() {
        by_row[row] = weights[rank];
    }
    let mut cumulative = vec![0.0f64; rows];
    let mut acc = 0.0;
    for (row, c) in cumulative.iter_mut().enumerate() {
        acc += by_row[row];
        *c = acc;
    }
    let mut stalled = 0usize;
    while assigned < target {
        let x: f64 = rng.gen_range(0.0..acc);
        let row = cumulative.partition_point(|&c| c <= x).min(rows - 1);
        if degrees[row] < degree_cap {
            degrees[row] += 1;
            assigned += 1;
            stalled = 0;
        } else {
            stalled += 1;
            if stalled > 64 * rows {
                // Nearly saturated: fall back to a linear scan for capacity.
                for d in degrees.iter_mut() {
                    if assigned == target {
                        break;
                    }
                    if *d < degree_cap {
                        *d += 1;
                        assigned += 1;
                    }
                }
                if assigned < target {
                    break; // matrix is fully saturated
                }
            }
        }
    }

    let mut triplets = Vec::with_capacity(target);
    for (row, &deg) in degrees.iter().enumerate() {
        let mut cols_used: HashSet<usize> = HashSet::with_capacity(deg);
        while cols_used.len() < deg {
            cols_used.insert(rng.gen_range(0..cols));
        }
        let mut sorted: Vec<usize> = cols_used.into_iter().collect();
        sorted.sort_unstable();
        for c in sorted {
            triplets.push((row, c, sample_value(&mut rng)));
        }
    }
    #[allow(clippy::expect_used)] // power-law coordinates are unique by construction
    let matrix = CooMatrix::from_triplets(rows, cols, triplets).expect("coordinates are valid");
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::row_stats;

    #[test]
    fn exact_nnz_is_produced() {
        let m = power_law(300, 300, 2500, 1.8, 11);
        assert_eq!(m.nnz(), 2500);
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let m = power_law(100, 100, 2000, 0.0, 11);
        let s = row_stats(&m);
        assert!(
            s.gini < 0.15,
            "alpha = 0 should be balanced, gini = {}",
            s.gini
        );
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let lo = row_stats(&power_law(400, 400, 3000, 0.5, 5)).gini;
        let hi = row_stats(&power_law(400, 400, 3000, 2.0, 5)).gini;
        assert!(
            hi > lo,
            "gini(alpha=2) = {hi} should exceed gini(alpha=0.5) = {lo}"
        );
    }

    #[test]
    fn skewed_matrices_have_empty_rows() {
        let s = row_stats(&power_law(500, 500, 2000, 2.0, 5));
        assert!(
            s.empty_rows > 100,
            "expected many empty rows, got {}",
            s.empty_rows
        );
    }

    #[test]
    fn saturation_is_handled() {
        // Ask for more than fits: clamps to rows * cols.
        let m = power_law(5, 5, 100, 1.0, 5);
        assert_eq!(m.nnz(), 25);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn rejects_negative_alpha() {
        let _ = power_law(10, 10, 10, -1.0, 5);
    }

    #[test]
    fn zero_dimension_yields_empty_matrix() {
        assert_eq!(power_law(0, 10, 5, 1.0, 3).nnz(), 0);
    }
}
