use super::rng_for;
use crate::CooMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters of the stage-structured optimal-control KKT generator.
///
/// Trajectory-optimization matrices in SuiteSparse (`dynamicSoaringProblem`,
/// `lowThrust`, `hangGlider`, `reorientation`, `TSC_OPF`) come from direct
/// transcription: the decision variables of `stages` time steps are chained,
/// so the KKT system is block tri-diagonal (each stage couples only to its
/// neighbours) with a small set of dense boundary rows/columns from global
/// constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalControlConfig {
    /// Number of transcription stages (time steps).
    pub stages: usize,
    /// Decision variables per stage (states + controls).
    pub vars_per_stage: usize,
    /// Fill probability within the diagonal stage blocks.
    pub diag_fill: f64,
    /// Fill probability within the off-diagonal (stage-coupling) blocks.
    pub coupling_fill: f64,
    /// Number of dense global-constraint rows and columns appended at the end.
    pub boundary_rows: usize,
    /// Fill probability of the boundary rows/columns.
    pub boundary_fill: f64,
}

impl OptimalControlConfig {
    /// A small config for unit tests and doc examples.
    pub fn small() -> Self {
        OptimalControlConfig {
            stages: 8,
            vars_per_stage: 6,
            diag_fill: 0.6,
            coupling_fill: 0.3,
            boundary_rows: 2,
            boundary_fill: 0.5,
        }
    }

    /// Total matrix dimension implied by the config.
    pub fn dimension(&self) -> usize {
        self.stages * self.vars_per_stage + self.boundary_rows
    }
}

/// Generates a stage-structured optimal-control KKT-style matrix.
///
/// # Panics
///
/// Panics if any fill probability is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::{optimal_control, OptimalControlConfig};
///
/// let cfg = OptimalControlConfig::small();
/// let m = optimal_control(cfg, 42);
/// assert_eq!(m.rows(), cfg.dimension());
/// assert!(m.nnz() > 0);
/// ```
pub fn optimal_control(config: OptimalControlConfig, seed: u64) -> CooMatrix {
    for (name, f) in [
        ("diag_fill", config.diag_fill),
        ("coupling_fill", config.coupling_fill),
        ("boundary_fill", config.boundary_fill),
    ] {
        assert!((0.0..=1.0).contains(&f), "{name} must be within [0, 1]");
    }
    let n = config.dimension();
    let b = config.vars_per_stage;
    let mut rng = rng_for(seed);
    let mut coords: HashSet<(usize, usize)> = HashSet::new();

    let fill_block = |coords: &mut HashSet<(usize, usize)>,
                      rng: &mut rand::rngs::StdRng,
                      r0: usize,
                      c0: usize,
                      rows: usize,
                      cols: usize,
                      p: f64| {
        for r in r0..r0 + rows {
            for c in c0..c0 + cols {
                if p >= 1.0 || rng.gen::<f64>() < p {
                    coords.insert((r, c));
                }
            }
        }
    };

    for s in 0..config.stages {
        let base = s * b;
        fill_block(&mut coords, &mut rng, base, base, b, b, config.diag_fill);
        if s + 1 < config.stages {
            // Stage-coupling blocks (dynamics constraints), both directions.
            fill_block(
                &mut coords,
                &mut rng,
                base,
                base + b,
                b,
                b,
                config.coupling_fill,
            );
            fill_block(
                &mut coords,
                &mut rng,
                base + b,
                base,
                b,
                b,
                config.coupling_fill,
            );
        }
    }
    // Dense boundary rows & columns (global constraints, e.g. endpoint
    // conditions), which create the heavy rows these matrices are known for.
    let boundary_base = config.stages * b;
    for i in 0..config.boundary_rows {
        let br = boundary_base + i;
        for c in 0..n {
            if config.boundary_fill >= 1.0 || rng.gen::<f64>() < config.boundary_fill {
                coords.insert((br, c));
            }
        }
        for r in 0..n {
            if config.boundary_fill >= 1.0 || rng.gen::<f64>() < config.boundary_fill {
                coords.insert((r, br));
            }
        }
    }

    super::matrix_from_coords(n, n, coords, &mut rng)
}

/// Scales [`OptimalControlConfig`] so the generated matrix lands near a
/// target non-zero count and density (used by the dataset catalog).
///
/// The per-block fills are set from the target density of the banded region;
/// dimension comes from `sqrt(nnz / density)`.
pub fn config_for_target(nnz: usize, density: f64) -> OptimalControlConfig {
    let density = density.clamp(1e-9, 1.0);
    let n = ((nnz as f64 / density).sqrt().round() as usize).max(16);
    let vars_per_stage = 16usize.min(n / 4).max(2);
    let stages = (n / vars_per_stage).max(1);
    // Banded region cells: stages * (3 * b^2) roughly; pick fill to hit nnz.
    let band_cells = (stages * 3 * vars_per_stage * vars_per_stage) as f64;
    let fill = (nnz as f64 / band_cells).clamp(0.01, 1.0);
    OptimalControlConfig {
        stages,
        vars_per_stage,
        diag_fill: fill.min(1.0),
        coupling_fill: (fill * 0.6).min(1.0),
        boundary_rows: 2,
        boundary_fill: 0.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::row_stats;

    #[test]
    fn dimension_matches_config() {
        let cfg = OptimalControlConfig::small();
        let m = optimal_control(cfg, 1);
        assert_eq!(m.rows(), cfg.dimension());
        assert_eq!(m.cols(), cfg.dimension());
    }

    #[test]
    fn interior_entries_stay_near_diagonal() {
        let cfg = OptimalControlConfig {
            boundary_rows: 0,
            ..OptimalControlConfig::small()
        };
        let m = optimal_control(cfg, 2);
        let b = cfg.vars_per_stage;
        for &(r, c, _) in m.iter() {
            let (sr, sc) = (r / b, c / b);
            assert!(
                sr.abs_diff(sc) <= 1,
                "entry ({r},{c}) couples non-adjacent stages"
            );
        }
    }

    #[test]
    fn boundary_rows_are_heavy() {
        let cfg = OptimalControlConfig {
            boundary_fill: 1.0,
            ..OptimalControlConfig::small()
        };
        let m = optimal_control(cfg, 3);
        let s = row_stats(&m);
        // Boundary rows touch all n columns; interior rows touch <= 3b.
        assert!(s.max_row_nnz >= cfg.dimension());
    }

    #[test]
    fn config_for_target_hits_order_of_magnitude() {
        let cfg = config_for_target(38_136, 0.00303);
        let m = optimal_control(cfg, 4);
        let ratio = m.nnz() as f64 / 38_136.0;
        assert!(
            (0.2..5.0).contains(&ratio),
            "generated nnz {} too far from target 38136",
            m.nnz()
        );
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_bad_fill() {
        let cfg = OptimalControlConfig {
            diag_fill: 2.0,
            ..OptimalControlConfig::small()
        };
        let _ = optimal_control(cfg, 0);
    }
}
