//! Deterministic synthetic sparse-matrix generators.
//!
//! These generators stand in for the SuiteSparse and SNAP collections used in
//! the paper (see `DESIGN.md` §2). Each one is seeded and fully
//! deterministic: the same parameters always produce the same matrix, so
//! every experiment in `chason-bench` is reproducible bit-for-bit.
//!
//! The generators cover the structural regimes the paper's matrices fall in:
//!
//! * [`uniform_random`] — Erdős–Rényi fill, the balanced baseline;
//! * [`power_law`] — skewed row degrees, the SNAP social/web-graph regime;
//! * [`rmat`] — recursive-matrix graphs with community structure;
//! * [`banded`] — discretised-PDE / circuit bands;
//! * [`block_diagonal`] — decoupled subproblem structure;
//! * [`mycielskian`] — the exact Mycielski graph construction
//!   (SuiteSparse's `mycielskian12` *is* this graph);
//! * [`optimal_control`] — stage-structured trajectory-optimization KKT
//!   patterns (`dynamicSoaringProblem`, `lowThrust`, `hangGlider`, ...).

mod arrow;
mod banded;
mod block;
mod kron;
mod optimal_control;
mod powerlaw;
mod random;
mod rmat;

pub use arrow::arrow_with_nnz;
pub use banded::{banded, banded_with_nnz, diagonal};
pub use block::block_diagonal;
pub use kron::mycielskian;
pub use optimal_control::{config_for_target, optimal_control, OptimalControlConfig};
pub use powerlaw::power_law;
pub use random::uniform_random;
pub use rmat::{rmat, RmatProbabilities};

use crate::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Creates the deterministic RNG used by every generator.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a non-zero value in `[-1, 1] \ {0}` (uniform, never exactly zero so
/// an explicit entry is never confused with a scheduling stall).
pub(crate) fn sample_value(rng: &mut StdRng) -> f32 {
    loop {
        let v: f32 = rng.gen_range(-1.0..=1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Builds a matrix from a coordinate set, assigning each coordinate a random
/// non-zero value.
pub(crate) fn matrix_from_coords(
    rows: usize,
    cols: usize,
    coords: HashSet<(usize, usize)>,
    rng: &mut StdRng,
) -> CooMatrix {
    // Sort the coordinates *before* drawing values: HashSet iteration order
    // is randomized per process, and tying RNG consumption to it would make
    // the generators non-deterministic.
    let mut sorted: Vec<(usize, usize)> = coords.into_iter().collect();
    sorted.sort_unstable();
    let triplets: Vec<(usize, usize, f32)> = sorted
        .into_iter()
        .map(|(r, c)| (r, c, sample_value(rng)))
        .collect();
    #[allow(clippy::expect_used)] // generator coordinates are validated by construction
    let matrix = CooMatrix::from_triplets(rows, cols, triplets).expect("coordinates are valid");
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_value_is_never_zero() {
        let mut rng = rng_for(1);
        for _ in 0..10_000 {
            assert_ne!(sample_value(&mut rng), 0.0);
        }
    }

    #[test]
    fn same_seed_same_matrix_across_generators() {
        assert_eq!(
            uniform_random(50, 50, 200, 7),
            uniform_random(50, 50, 200, 7)
        );
        assert_eq!(
            power_law(50, 50, 200, 1.5, 7),
            power_law(50, 50, 200, 1.5, 7)
        );
        assert_eq!(banded(64, 3, 0.8, 7), banded(64, 3, 0.8, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            uniform_random(50, 50, 200, 1),
            uniform_random(50, 50, 200, 2)
        );
    }
}
