use super::{rng_for, sample_value};
use crate::CooMatrix;

/// Generates the adjacency matrix of the Mycielskian graph `M_k` with random
/// non-zero edge weights.
///
/// The Mycielski construction starts from `M_2 = K_2` (a single edge) and
/// repeatedly applies: given a graph with vertices `v_1..v_n`, add shadow
/// vertices `u_1..u_n` and an apex `w`; keep the original edges, connect
/// `u_i` to every neighbour of `v_i`, and connect every `u_i` to `w`.
///
/// SuiteSparse's `mycielskian12` (Table 2's `MY`) **is** `M_12`: 3 071
/// vertices and 407 200 explicit entries (density 4.31%) — this generator
/// reproduces the paper's matrix structure exactly, not just statistically.
///
/// # Panics
///
/// Panics if `k < 2` (the construction is defined from `M_2`) or if `k` is
/// large enough to overflow vertex counts (`k > 60`).
///
/// # Example
///
/// ```
/// use chason_sparse::generators::mycielskian;
///
/// let m12 = mycielskian(12, 0);
/// assert_eq!(m12.rows(), 3071);
/// assert_eq!(m12.nnz(), 407_200);
/// ```
pub fn mycielskian(k: u32, seed: u64) -> CooMatrix {
    assert!(k >= 2, "the Mycielski construction starts at k = 2");
    assert!(k <= 60, "k too large");
    let mut rng = rng_for(seed);
    // Undirected edge list of M_2 = K_2.
    let mut n = 2usize;
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    for _ in 2..k {
        let apex = 2 * n;
        let mut next = Vec::with_capacity(3 * edges.len() + n);
        for &(a, b) in &edges {
            next.push((a, b)); // original edge
            next.push((a + n, b)); // shadow of a — neighbour of b
            next.push((a, b + n)); // a — shadow of b
        }
        for i in 0..n {
            next.push((i + n, apex));
        }
        edges = next;
        n = 2 * n + 1;
    }
    let mut triplets = Vec::with_capacity(2 * edges.len());
    for &(a, b) in &edges {
        let v = sample_value(&mut rng);
        triplets.push((a, b, v));
        triplets.push((b, a, v));
    }
    #[allow(clippy::expect_used)] // mycielskian edges are unique by construction
    let matrix = CooMatrix::from_triplets(n, n, triplets).expect("mycielskian edges are valid");
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vertex and edge counts follow n' = 2n + 1, e' = 3e + n.
    #[test]
    fn counts_follow_recurrence() {
        let mut n = 2usize;
        let mut e = 1usize;
        for k in 2..=9u32 {
            let m = mycielskian(k, 0);
            assert_eq!(m.rows(), n, "vertex count at k = {k}");
            assert_eq!(m.nnz(), 2 * e, "edge count at k = {k}");
            e = 3 * e + n;
            n = 2 * n + 1;
        }
    }

    #[test]
    fn m12_matches_suitesparse_mycielskian12() {
        let m = mycielskian(12, 0);
        assert_eq!(m.rows(), 3071);
        assert_eq!(m.cols(), 3071);
        assert_eq!(m.nnz(), 407_200);
        let density_pct = m.density() * 100.0;
        assert!(
            (density_pct - 4.31).abs() < 0.01,
            "density {density_pct}% != 4.31%"
        );
    }

    #[test]
    fn adjacency_is_symmetric_with_matching_weights() {
        let m = mycielskian(6, 3);
        for &(r, c, v) in m.iter() {
            let mirrored = m
                .iter()
                .find(|&&(r2, c2, _)| r2 == c && c2 == r)
                .expect("mirror entry exists");
            assert_eq!(mirrored.2, v);
        }
    }

    #[test]
    fn no_self_loops() {
        let m = mycielskian(7, 1);
        assert!(m.iter().all(|&(r, c, _)| r != c));
    }

    #[test]
    #[should_panic(expected = "starts at k = 2")]
    fn rejects_k_below_two() {
        let _ = mycielskian(1, 0);
    }
}
