use super::{matrix_from_coords, rng_for};
use crate::CooMatrix;
use rand::Rng;
use std::collections::HashSet;

/// Generates an Erdős–Rényi-style matrix with exactly `nnz` entries placed
/// uniformly at random (without replacement).
///
/// This is the *balanced* regime: row populations are approximately Poisson,
/// so PE-aware scheduling already does reasonably well and CrHCS's advantage
/// is modest — the low end of the paper's improvement range.
///
/// `nnz` is clamped to `rows * cols`.
///
/// # Example
///
/// ```
/// use chason_sparse::generators::uniform_random;
///
/// let m = uniform_random(100, 100, 500, 42);
/// assert_eq!(m.nnz(), 500);
/// ```
pub fn uniform_random(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = rng_for(seed);
    let cells = rows.saturating_mul(cols);
    let target = nnz.min(cells);
    if rows == 0 || cols == 0 {
        return CooMatrix::new(rows, cols);
    }
    let mut coords: HashSet<(usize, usize)> = HashSet::with_capacity(target);
    if target > cells / 2 {
        // Dense regime: enumerate and reject instead of rejection-sampling.
        let mut all: Vec<(usize, usize)> = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| (r, c)))
            .collect();
        // Fisher-Yates partial shuffle of the first `target` positions.
        for i in 0..target {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        coords.extend(all.into_iter().take(target));
    } else {
        while coords.len() < target {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            coords.insert((r, c));
        }
    }
    matrix_from_coords(rows, cols, coords, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::row_stats;

    #[test]
    fn exact_nnz_is_produced() {
        for &n in &[0usize, 1, 17, 250] {
            assert_eq!(uniform_random(40, 40, n, 3).nnz(), n);
        }
    }

    #[test]
    fn nnz_clamped_to_cell_count() {
        let m = uniform_random(4, 4, 1000, 3);
        assert_eq!(m.nnz(), 16);
    }

    #[test]
    fn zero_dimension_yields_empty_matrix() {
        let m = uniform_random(0, 10, 5, 3);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_regime_uses_exact_fill() {
        let m = uniform_random(10, 10, 90, 3);
        assert_eq!(m.nnz(), 90);
    }

    #[test]
    fn rows_are_roughly_balanced() {
        let m = uniform_random(200, 200, 8000, 9);
        let s = row_stats(&m);
        // Poisson(40) rows: stddev should be near sqrt(40), far below mean.
        assert!(s.stddev_row_nnz < s.mean_row_nnz);
        assert!(
            s.gini < 0.3,
            "uniform fill should be balanced, gini = {}",
            s.gini
        );
    }
}
