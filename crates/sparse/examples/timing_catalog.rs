//! Prints per-matrix generation time and structure stats for the catalogs.
fn main() {
    for spec in chason_sparse::datasets::corpus(24, 1) {
        let m = spec.generate();
        let st = chason_sparse::stats::row_stats(&m);
        println!(
            "{:2} {:?} n={} nnz={} maxrow={} rho~{:.1}",
            spec.index,
            spec.recipe,
            spec.dimension,
            m.nnz(),
            st.max_row_nnz,
            1280.0 * st.max_row_nnz as f64 / m.nnz().max(1) as f64
        );
    }
}
