//! The race-smoke contract, as a test suite: at a fixed seed every real
//! model explores clean, every seeded mutant is caught, traces replay, and
//! exploration is deterministic.

use std::str::FromStr;

use chason_race::Schedule;
use chason_race_models::{all_models, find_model};

const SEED: u64 = 0xC0FFEE;
const BUDGET: usize = 1200;
const PREEMPTIONS: usize = 2;

#[test]
fn real_models_explore_clean() {
    for model in all_models().iter().filter(|m| !m.expect_violation) {
        let (report, pass) = model.check(SEED, BUDGET, PREEMPTIONS);
        assert!(
            pass,
            "real model {} violated after {} executions:\n{}",
            model.id(),
            report.executions,
            report.violation.map(|v| v.to_string()).unwrap_or_default()
        );
    }
}

#[test]
fn every_mutant_is_caught() {
    for model in all_models().iter().filter(|m| m.expect_violation) {
        let (report, pass) = model.check(SEED, BUDGET, PREEMPTIONS);
        assert!(
            pass,
            "mutant {} escaped: {} executions, complete={}",
            model.id(),
            report.executions,
            report.complete
        );
    }
}

#[test]
fn mutant_traces_replay_to_the_same_violation() {
    let model = find_model("shutdown-drain/relaxed-publish").expect("model registered");
    let (report, _) = model.check(SEED, BUDGET, PREEMPTIONS);
    let violation = report.violation.expect("mutant caught");
    let schedule = Schedule::from_str(&violation.schedule.to_string()).expect("schedule parses");
    let replayed = chason_race::replay(model.options(SEED, 1, PREEMPTIONS), &schedule, model.run)
        .expect("replay does not diverge")
        .expect("replay reproduces the violation");
    assert_eq!(
        std::mem::discriminant(&replayed.kind),
        std::mem::discriminant(&violation.kind),
        "replayed {:?}, explored {:?}",
        replayed.kind,
        violation.kind
    );
}

#[test]
fn exploration_is_deterministic_per_seed() {
    let model = find_model("serve-queue/ok").expect("model registered");
    let (first, _) = model.check(SEED, 400, PREEMPTIONS);
    let (second, _) = model.check(SEED, 400, PREEMPTIONS);
    assert_eq!(first.executions, second.executions);
    assert_eq!(first.pruned, second.pruned);
    assert_eq!(first.max_depth, second.max_depth);
}
