//! `chason-race` — run the model suites through the deterministic
//! interleaving explorer (usually via `cargo xtask race`).
//!
//! Default mode explores every model: real (`ok*`) models must come back
//! clean, known-racy mutants must be caught (the self-check that proves the
//! checker has teeth). Any violation prints a seed-replayable schedule;
//! `--replay` re-executes exactly that interleaving.

use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Instant;

use chason_race::{Schedule, Violation};
use chason_race_models::{all_models, find_model, ModelDef};

const USAGE: &str = "\
chason-race: deterministic interleaving explorer over the model suites

USAGE:
  chason-race [--seed N] [--budget N] [--preemptions N] [--suite NAME]
              [--skip-mutants] [--artifacts DIR]
  chason-race --replay \"0,1,0\" --model SUITE/NAME [--seed N] [--preemptions N]
  chason-race --list

OPTIONS:
  --seed N         exploration seed quoted in violation reports  [default: 0]
  --budget N       max executions per model                      [default: 4000]
  --preemptions N  preemption bound per execution                [default: 2]
  --suite NAME     only run models of this suite
  --skip-mutants   only run the real (expected-clean) models
  --artifacts DIR  write <suite>__<name>.trace.txt for each violation
  --replay S       re-run one schedule (with --model) instead of exploring
  --model ID       model id (suite/name) for --replay
  --list           list model ids and exit
";

struct Cli {
    seed: u64,
    budget: usize,
    preemptions: usize,
    suite: Option<String>,
    skip_mutants: bool,
    artifacts: Option<PathBuf>,
    replay: Option<String>,
    model: Option<String>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        seed: 0,
        budget: 4000,
        preemptions: 2,
        suite: None,
        skip_mutants: false,
        artifacts: None,
        replay: None,
        model: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => cli.seed = parse_num(&value("--seed")?)?,
            "--budget" => cli.budget = parse_num(&value("--budget")?)?,
            "--preemptions" => cli.preemptions = parse_num(&value("--preemptions")?)?,
            "--suite" => cli.suite = Some(value("--suite")?),
            "--skip-mutants" => cli.skip_mutants = true,
            "--artifacts" => cli.artifacts = Some(PathBuf::from(value("--artifacts")?)),
            "--replay" => cli.replay = Some(value("--replay")?),
            "--model" => cli.model = Some(value("--model")?),
            "--list" => cli.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(cli)
}

fn parse_num<T: FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{text:?} is not a valid number"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if cli.list {
        for model in all_models() {
            let kind = if model.expect_violation {
                "mutant"
            } else {
                "model "
            };
            println!("{kind}  {:<34} {}", model.id(), model.about);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(schedule) = &cli.replay {
        return run_replay(&cli, schedule);
    }
    run_explore(&cli)
}

/// Re-execute one recorded schedule of one model.
fn run_replay(cli: &Cli, schedule: &str) -> ExitCode {
    let Some(id) = &cli.model else {
        eprintln!("error: --replay needs --model SUITE/NAME");
        return ExitCode::from(2);
    };
    let Some(model) = find_model(id) else {
        eprintln!("error: no model named {id:?} (see --list)");
        return ExitCode::from(2);
    };
    let schedule = match Schedule::from_str(schedule) {
        Ok(s) => s,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let opts = model.options(cli.seed, 1, cli.preemptions);
    match chason_race::replay(opts, &schedule, model.run) {
        Ok(Some(violation)) => {
            println!("{id}: schedule reproduces a violation\n{violation}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!("{id}: schedule executed clean");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: replay diverged: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Explore every selected model; exit non-zero if any real model violates
/// or any mutant escapes.
fn run_explore(cli: &Cli) -> ExitCode {
    let models: Vec<ModelDef> = all_models()
        .into_iter()
        .filter(|m| cli.suite.as_deref().is_none_or(|s| m.suite == s))
        .filter(|m| !(cli.skip_mutants && m.expect_violation))
        .collect();
    if models.is_empty() {
        eprintln!("error: no models selected (see --list)");
        return ExitCode::from(2);
    }
    println!(
        "exploring {} models  seed={}  budget={}  preemption-bound={}",
        models.len(),
        cli.seed,
        cli.budget,
        cli.preemptions
    );
    let started = Instant::now();
    let mut failures = 0usize;
    for model in &models {
        let model_started = Instant::now();
        let (report, pass) = model.check(cli.seed, cli.budget, cli.preemptions);
        let verdict = match (pass, model.expect_violation) {
            (true, false) => "OK   clean",
            (true, true) => "OK   caught",
            (false, false) => "FAIL violation in real model",
            (false, true) => "FAIL mutant escaped",
        };
        println!(
            "{:<36} {:<28} execs={:<5} pruned={:<5} depth={:<3} {:<10} {:.2}s",
            model.id(),
            verdict,
            report.executions,
            report.pruned,
            report.max_depth,
            if report.complete {
                "complete"
            } else {
                "budget-cut"
            },
            model_started.elapsed().as_secs_f64(),
        );
        if let Some(violation) = &report.violation {
            println!(
                "    {}  [replay: cargo xtask race --replay \"{}\" --model {} --seed {}]",
                violation.kind,
                violation.schedule,
                model.id(),
                violation.seed
            );
            if let Some(dir) = &cli.artifacts {
                write_artifact(dir, model, violation);
            }
            if !pass {
                println!("{violation}");
            }
        }
        if !pass {
            failures += 1;
        }
    }
    println!(
        "done: {}/{} models passed in {:.2}s",
        models.len() - failures,
        models.len(),
        started.elapsed().as_secs_f64()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_artifact(dir: &PathBuf, model: &ModelDef, violation: &Violation) {
    let path = dir.join(format!("{}__{}.trace.txt", model.suite, model.name));
    let body = format!(
        "model: {}\nexpect_violation: {}\n{violation}",
        model.id(),
        model.expect_violation
    );
    if let Err(error) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("warning: could not write {}: {error}", path.display());
    }
}
