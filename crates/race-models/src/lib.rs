//! Model suites for `chason-race`: small extracted models of the
//! workspace's real hot concurrent structures, each paired with seeded
//! *known-racy mutants* that the checker must catch (the self-check idiom of
//! `chason verify --corrupt` and the bench comparator, applied to
//! concurrency).
//!
//! Five structure suites plus a shim-semantics suite:
//!
//! | suite             | models                                              |
//! |-------------------|-----------------------------------------------------|
//! | `serve-queue`     | bounded queue + shed + `try_recv_if` batching       |
//! | `shutdown-drain`  | producer/consumer shutdown with disconnect drain    |
//! | `lru-cache`       | shared `LruCache` get/insert/evict counters         |
//! | `dynamic-cursor`  | `spmv_dynamic`-style work-stealing chunk claims     |
//! | `histogram-shard` | telemetry shard merge while another thread records  |
//! | `channel`         | crossbeam-shim blocking semantics under the checker |
//!
//! Every model runs the *real* `vendor/crossbeam` channel code (this crate
//! enables its `model-check` feature) and, where practical, the real
//! workspace types (`chason_core::LruCache`,
//! `chason_telemetry::metrics::HistogramShard`).
//!
//! Run via `cargo xtask race`; see DESIGN.md §12 for how to write a model.

pub mod models;

use chason_race::{Options, Report};

/// One runnable model: a real structure extract (`expect_violation: false`)
/// or a seeded known-racy mutant (`expect_violation: true`).
pub struct ModelDef {
    /// Suite name (kebab-case, stable CLI identifier).
    pub suite: &'static str,
    /// Model name within the suite; real models are named `ok*`.
    pub name: &'static str,
    /// What the mutant seeds (or what the real model protects), one line.
    pub about: &'static str,
    /// Mutants must be caught; real models must explore clean.
    pub expect_violation: bool,
    /// Spurious-wakeup budget per execution (exercises re-check loops).
    pub spurious: usize,
    /// The model body. Must be schedule-deterministic: no real time, no
    /// ambient randomness (see DESIGN.md §12).
    pub run: fn(),
}

impl ModelDef {
    /// Stable identifier, e.g. `serve-queue/racy-shed-counter`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.suite, self.name)
    }

    /// Exploration options for this model at the given seed and budget.
    pub fn options(&self, seed: u64, budget: usize, preemption_bound: usize) -> Options {
        Options {
            seed,
            max_executions: budget,
            preemption_bound,
            spurious_wakeups: self.spurious,
            ..Options::default()
        }
    }

    /// Explore this model and judge the outcome: a real model passes when
    /// clean, a mutant passes when its seeded bug is caught.
    pub fn check(&self, seed: u64, budget: usize, preemption_bound: usize) -> (Report, bool) {
        let report = chason_race::explore(self.options(seed, budget, preemption_bound), self.run);
        let pass = report.violation.is_some() == self.expect_violation;
        (report, pass)
    }
}

/// Every model in every suite, in stable order.
pub fn all_models() -> Vec<ModelDef> {
    let mut out = Vec::new();
    out.extend(models::serve_queue::models());
    out.extend(models::shutdown_drain::models());
    out.extend(models::lru_cache::models());
    out.extend(models::dynamic_cursor::models());
    out.extend(models::histogram_shard::models());
    out.extend(models::channel_semantics::models());
    out.extend(models::net_wakeup::models());
    out
}

/// Look up a model by `suite/name` id.
pub fn find_model(id: &str) -> Option<ModelDef> {
    all_models().into_iter().find(|m| m.id() == id)
}

/// Lock a checker mutex, forgiving poison: in a model, any panic aborts the
/// whole execution, so poisoning carries no information.
pub fn lock<T>(m: &chason_race::sync::Mutex<T>) -> chason_race::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Join a model thread, propagating its return value.
pub fn join<T>(handle: chason_race::thread::JoinHandle<T>) -> T {
    // A child panic is already reported by the checker (Panic violation) and
    // aborts the execution before this join can observe `Err`, so unwrapping
    // here cannot mask a failure.
    #[allow(clippy::expect_used)] // see above: child panics abort the execution first
    handle.join().expect("model thread panicked")
}
