//! Semantics checks of the vendored crossbeam channel shim *itself*, run
//! under the checker: disconnect-while-blocked, timeout-vs-disconnect
//! precedence, and spurious-wakeup robustness. All models here are expected
//! clean — they pin the shim's contract across every explored interleaving
//! (complementing the wall-clock tests in `vendor/crossbeam`).
//!
//! Timeouts follow the DESIGN.md §12 rules: durations are generous
//! (an hour), and the scheduler only fires a timeout when nothing else can
//! run, so `Timeout` results are schedule-chosen, never wall-clock-chosen.

use std::time::Duration;

use chason_race::thread;
use crossbeam::channel::{self, RecvTimeoutError};

use crate::{join, ModelDef};

const GENEROUS: Duration = Duration::from_secs(3600);

/// Dropping the only sender unblocks a parked `recv` with `Err`.
fn recv_disconnect() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let consumer = thread::spawn(move || assert!(rx.recv().is_err(), "recv survived disconnect"));
    drop(tx);
    join(consumer);
}

/// A buffered value is still delivered after the sender hangs up; only the
/// *next* recv reports the disconnect.
fn recv_value_then_disconnect() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let producer = thread::spawn(move || assert!(tx.send(1).is_ok()));
    let consumer = thread::spawn(move || {
        assert_eq!(rx.recv().ok(), Some(1), "buffered value lost at disconnect");
        assert!(rx.recv().is_err(), "disconnect not reported after drain");
    });
    join(producer);
    join(consumer);
}

/// With a live sender and an empty queue, `recv_timeout` reports `Timeout`
/// (fired by the scheduler's timeout rescue, not the wall clock).
fn recv_timeout_quiet() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let consumer = thread::spawn(move || {
        let got = rx.recv_timeout(GENEROUS);
        assert!(
            matches!(got, Err(RecvTimeoutError::Timeout)),
            "expected Timeout, got {got:?}"
        );
    });
    join(consumer);
    drop(tx); // kept alive across the join: the timeout must not be a disconnect
}

/// When every sender is gone, a blocked `recv_timeout` reports
/// `Disconnected` — never `Timeout`, even though a deadline is armed.
fn recv_timeout_disconnect() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let producer = thread::spawn(move || drop(tx));
    let consumer = thread::spawn(move || {
        let got = rx.recv_timeout(GENEROUS);
        assert!(
            matches!(got, Err(RecvTimeoutError::Disconnected)),
            "expected Disconnected, got {got:?}"
        );
    });
    join(producer);
    join(consumer);
}

/// Dropping the only receiver unblocks a `send` parked on a full queue.
fn send_blocked_disconnect() {
    let (tx, rx) = channel::bounded::<u32>(1);
    assert!(tx.try_send(0).is_ok()); // fill the queue so the send must park
    let sender = thread::spawn(move || assert!(tx.send(1).is_err(), "send survived disconnect"));
    drop(rx);
    join(sender);
}

/// The shim's wait loops re-check their predicate after every wakeup, so
/// injected spurious wakeups never surface a wrong result.
fn spurious_wakeup() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let consumer = thread::spawn(move || {
        assert_eq!(
            rx.recv().ok(),
            Some(7),
            "spurious wakeup leaked out of recv"
        );
    });
    assert!(tx.try_send(7).is_ok());
    join(consumer);
}

/// The `channel` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "channel",
            name: "recv-disconnect",
            about: "sender drop unblocks a parked recv with Err",
            expect_violation: false,
            spurious: 0,
            run: recv_disconnect,
        },
        ModelDef {
            suite: "channel",
            name: "recv-value-then-disconnect",
            about: "buffered value delivered before disconnect reported",
            expect_violation: false,
            spurious: 0,
            run: recv_value_then_disconnect,
        },
        ModelDef {
            suite: "channel",
            name: "recv-timeout-quiet",
            about: "live sender + empty queue times out via rescue",
            expect_violation: false,
            spurious: 1,
            run: recv_timeout_quiet,
        },
        ModelDef {
            suite: "channel",
            name: "recv-timeout-disconnect",
            about: "disconnect beats an armed timeout",
            expect_violation: false,
            spurious: 1,
            run: recv_timeout_disconnect,
        },
        ModelDef {
            suite: "channel",
            name: "send-blocked-disconnect",
            about: "receiver drop unblocks a parked send with Err",
            expect_violation: false,
            spurious: 0,
            run: send_blocked_disconnect,
        },
        ModelDef {
            suite: "channel",
            name: "spurious-wakeup",
            about: "recv re-checks its predicate after spurious wakeups",
            expect_violation: false,
            spurious: 3,
            run: spurious_wakeup,
        },
    ]
}
