//! Telemetry shard aggregation: one thread merges a thread-local
//! [`HistogramShard`] into shared totals while another thread is still
//! recording into them — the `chason-telemetry` pattern of relaxed counter
//! `fetch_add`s whose totals are only *read* after all writers are joined.
//!
//! Mutant:
//! * `lost-update` — the shared count becomes a naive read-modify-write on
//!   an unsynchronized cell; the merge races the concurrent recorder.

use std::sync::Arc;

use chason_race::atomic::{AtomicU64, Ordering};
use chason_race::cell::RaceCell;
use chason_race::thread;
use chason_telemetry::metrics::HistogramShard;

use crate::{join, ModelDef};

/// Correct extract: relaxed `fetch_add`s are atomic RMWs, so concurrent
/// merge and record never lose updates; the totals are read after join.
fn ok() {
    let count = Arc::new(AtomicU64::new(0));
    let sum = Arc::new(AtomicU64::new(0));

    let merge_count = Arc::clone(&count);
    let merge_sum = Arc::clone(&sum);
    let merger = thread::spawn(move || {
        let mut shard = HistogramShard::new();
        shard.record(1);
        shard.record(2);
        // relaxed: counter merge only needs atomicity; totals are read
        // after join (the telemetry metrics idiom)
        merge_count.fetch_add(shard.count(), Ordering::Relaxed);
        // The shard's sum is private; the model tracks it (1 + 2).
        // relaxed: see above
        merge_sum.fetch_add(3, Ordering::Relaxed);
    });

    let rec_count = Arc::clone(&count);
    let rec_sum = Arc::clone(&sum);
    let recorder = thread::spawn(move || {
        // relaxed: counter bumps, read after join
        rec_count.fetch_add(1, Ordering::Relaxed);
        // relaxed: see above
        rec_sum.fetch_add(4, Ordering::Relaxed);
    });

    join(merger);
    join(recorder);
    // relaxed: joins above order these loads after every fetch_add
    assert_eq!(count.load(Ordering::Relaxed), 3, "lost count update");
    // relaxed: see above
    assert_eq!(sum.load(Ordering::Relaxed), 7, "lost sum update");
}

/// Mutant: the shared count is a plain cell updated by get-then-set; the
/// merger and the recorder race on it.
fn lost_update() {
    let count = Arc::new(RaceCell::new(0u64));

    let merge_count = Arc::clone(&count);
    let merger = thread::spawn(move || {
        let mut shard = HistogramShard::new();
        shard.record(1);
        shard.record(2);
        let seen = merge_count.get(); // BUG: unsynchronized RMW
        merge_count.set(seen + shard.count());
    });

    let rec_count = Arc::clone(&count);
    let recorder = thread::spawn(move || {
        let seen = rec_count.get(); // BUG: unsynchronized RMW
        rec_count.set(seen + 1);
    });

    join(merger);
    join(recorder);
}

/// The `histogram-shard` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "histogram-shard",
            name: "ok",
            about: "relaxed fetch_add merge vs concurrent recorder is atomic",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "histogram-shard",
            name: "lost-update",
            about: "count merged with get-then-set races the recorder",
            expect_violation: true,
            spurious: 0,
            run: lost_update,
        },
    ]
}
