//! Producer/consumer shutdown drain: the serve daemon's exit path. The
//! producer enqueues its last jobs and hangs up; the worker drains until
//! disconnect and *publishes* its tally with a release store that a
//! concurrent observer reads through an acquire load.
//!
//! Mutants:
//! * `relaxed-publish` — the `done` flag is stored `Relaxed`, so the
//!   observer's read of the (non-atomic) tally has no happens-before edge to
//!   the worker's write: a data race the dropped fence was hiding.
//! * `missing-drain` — the worker polls `try_recv` instead of blocking until
//!   disconnect, so it can exit before the producer has enqueued anything.

use std::sync::Arc;

use chason_race::atomic::{AtomicBool, Ordering};
use chason_race::cell::RaceCell;
use chason_race::thread;
use crossbeam::channel;

use crate::{join, ModelDef};

const SUBMITTED: usize = 2;

struct Shared {
    done: AtomicBool,
    tally: RaceCell<usize>,
}

fn run_with(publish: Ordering, drain: fn(&channel::Receiver<u32>) -> usize) {
    let (tx, rx) = channel::bounded::<u32>(4);
    let shared = Arc::new(Shared {
        done: AtomicBool::new(false),
        tally: RaceCell::new(0),
    });

    let producer = thread::spawn(move || {
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        // tx drops here: the disconnect is the shutdown signal
    });

    let worker_shared = Arc::clone(&shared);
    let worker = thread::spawn(move || {
        let drained = drain(&rx);
        worker_shared.tally.set(drained);
        worker_shared.done.store(true, publish);
    });

    let observer_shared = Arc::clone(&shared);
    let observer = thread::spawn(move || {
        // One-shot check, not a spin loop: the scheduler explores both the
        // flag-up and flag-down interleavings (DESIGN.md §12).
        if observer_shared.done.load(Ordering::Acquire) {
            assert_eq!(
                observer_shared.tally.get(),
                SUBMITTED,
                "tally read before drain"
            );
        }
    });

    join(producer);
    join(worker);
    join(observer);
    assert_eq!(shared.tally.get(), SUBMITTED, "drain incomplete at join");
}

fn drain_blocking(rx: &channel::Receiver<u32>) -> usize {
    let mut drained = 0;
    while rx.recv().is_ok() {
        drained += 1;
    }
    drained
}

fn drain_polling(rx: &channel::Receiver<u32>) -> usize {
    let mut drained = 0;
    // BUG: `Err(Empty)` and `Err(Disconnected)` are conflated, so an empty
    // queue ends the drain while the producer is still running.
    while rx.try_recv().is_ok() {
        drained += 1;
    }
    drained
}

fn ok() {
    run_with(Ordering::Release, drain_blocking);
}

fn relaxed_publish() {
    // relaxed: seeded bug under test — the checker must flag the missing
    // release edge as a data race on the tally cell.
    run_with(Ordering::Relaxed, drain_blocking);
}

fn missing_drain() {
    run_with(Ordering::Release, drain_polling);
}

/// The `shutdown-drain` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "shutdown-drain",
            name: "ok",
            about: "blocking drain to disconnect, release/acquire publish",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "shutdown-drain",
            name: "relaxed-publish",
            about: "done flag stored Relaxed: tally read races worker write",
            expect_violation: true,
            spurious: 0,
            run: relaxed_publish,
        },
        ModelDef {
            suite: "shutdown-drain",
            name: "missing-drain",
            about: "try_recv poll conflates Empty with Disconnected",
            expect_violation: true,
            spurious: 0,
            run: missing_drain,
        },
    ]
}
