//! Concurrent use of the real [`chason_core::LruCache`] behind a mutex —
//! the plan-cache idiom in `chason-serve`. Exhaustively checks that the
//! hit/miss/eviction counters stay consistent across every interleaving of
//! two clients, and that per-op locking (lock, touch, unlock) is enough.
//!
//! Mutant:
//! * `toctou-insert` — a check-then-insert spans two lock acquisitions; two
//!   clients both observe the key absent and both insert, breaking the
//!   "exactly one freshness miss" accounting that per-op locking appears to
//!   provide.

use std::sync::Arc;

use chason_core::LruCache;
use chason_race::atomic::{AtomicUsize, Ordering};
use chason_race::sync::Mutex;
use chason_race::thread;

use crate::{join, lock, ModelDef};

/// Correct extract: each cache op takes the lock for its full duration.
/// Three distinct keys into capacity 2 force exactly one eviction no matter
/// the order; two `get`s contribute exactly two hit-or-miss ticks.
fn ok() {
    let cache = Arc::new(Mutex::new(LruCache::<u32, u32>::new(2)));

    let c1 = Arc::clone(&cache);
    let t1 = thread::spawn(move || {
        let _ = lock(&c1).insert(1, 10);
        let _ = lock(&c1).get(&1);
        let _ = lock(&c1).insert(2, 20);
    });
    let c2 = Arc::clone(&cache);
    let t2 = thread::spawn(move || {
        let _ = lock(&c2).insert(3, 30);
        let _ = lock(&c2).get(&2);
    });
    join(t1);
    join(t2);

    let guard = lock(&cache);
    let stats = guard.stats();
    assert_eq!(stats.capacity, 2);
    assert_eq!(stats.len, 2, "3 distinct keys into capacity 2");
    assert_eq!(stats.evictions, 1, "exactly one eviction in every order");
    assert_eq!(stats.hits + stats.misses, 2, "two gets, two ticks");
}

/// Mutant: `contains` check and `insert` under *separate* lock
/// acquisitions. Both clients can pass the check before either inserts.
fn toctou_insert() {
    let cache = Arc::new(Mutex::new(LruCache::<u32, u32>::new(2)));
    let fresh_inserts = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for _ in 0..2 {
        let cache = Arc::clone(&cache);
        let fresh_inserts = Arc::clone(&fresh_inserts);
        clients.push(thread::spawn(move || {
            if !lock(&cache).contains(&7) {
                // BUG: the key can appear between the check and this insert
                let _ = lock(&cache).insert(7, 1);
                fresh_inserts.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for handle in clients {
        join(handle);
    }
    assert_eq!(
        fresh_inserts.load(Ordering::SeqCst),
        1,
        "double fresh insert of key 7"
    );
}

/// The `lru-cache` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "lru-cache",
            name: "ok",
            about: "per-op locking keeps hit/miss/eviction counters coherent",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "lru-cache",
            name: "toctou-insert",
            about: "contains/insert under separate locks double-inserts",
            expect_violation: true,
            spurious: 0,
            run: toctou_insert,
        },
    ]
}
