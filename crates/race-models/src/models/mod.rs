//! The model suites. Each module models one real concurrent structure from
//! the workspace and ships seeded known-racy mutants next to the correct
//! (`ok*`) extract; see the module docs for what each mutant plants.

pub mod channel_semantics;
pub mod dynamic_cursor;
pub mod histogram_shard;
pub mod lru_cache;
pub mod net_wakeup;
pub mod serve_queue;
pub mod shutdown_drain;
