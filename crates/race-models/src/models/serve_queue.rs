//! The serve daemon's bounded job queue, reduced to its sync skeleton:
//! producers `try_send` and count a *shed* on `Full` (load-shedding in
//! `chason-serve`'s accept path), a worker drains until disconnect and
//! batches same-key jobs with `try_recv_if` (the worker-loop batching).
//!
//! Mutants:
//! * `racy-shed-counter` — the shed counter becomes a plain read-modify-write
//!   on an unsynchronized cell; two shedding producers race on it.
//! * `lost-job-on-full` — a full queue drops the job without counting it, so
//!   the conservation invariant `processed + shed == submitted` breaks.

use std::sync::Arc;

use chason_race::atomic::{AtomicUsize, Ordering};
use chason_race::cell::RaceCell;
use chason_race::thread;
use crossbeam::channel;

use crate::{join, ModelDef};

/// Jobs are `(key, serial)`; serials are globally unique.
type Job = (usize, usize);

const PRODUCERS: usize = 2;
const JOBS_PER_PRODUCER: usize = 2;
const BATCH_LIMIT: usize = 2;

fn drain_batching(rx: &channel::Receiver<Job>) -> (Vec<usize>, usize) {
    let mut processed = Vec::new();
    let mut max_batch = 0;
    while let Ok(head) = rx.recv() {
        let key = head.0;
        let mut batch = vec![head];
        while batch.len() < BATCH_LIMIT {
            match rx.try_recv_if(|job| job.0 == key) {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        max_batch = max_batch.max(batch.len());
        processed.extend(batch.into_iter().map(|job| job.1));
    }
    (processed, max_batch)
}

/// Correct extract: shed on `Full` via an atomic counter; every submitted
/// job is either processed or shed, serials never duplicate, and key
/// batching never exceeds its limit.
fn ok() {
    let (tx, rx) = channel::bounded::<Job>(2);
    let shed = Arc::new(AtomicUsize::new(0));
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        let shed = Arc::clone(&shed);
        producers.push(thread::spawn(move || {
            for i in 0..JOBS_PER_PRODUCER {
                if tx.try_send((p, p * 10 + i)).is_err() {
                    shed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }));
    }
    drop(tx); // the worker's recv loop ends when the last producer exits
    let worker = thread::spawn(move || drain_batching(&rx));
    for handle in producers {
        join(handle);
    }
    let (processed, max_batch) = join(worker);
    let shed = shed.load(Ordering::SeqCst);
    assert_eq!(
        processed.len() + shed,
        PRODUCERS * JOBS_PER_PRODUCER,
        "jobs lost or duplicated (processed {processed:?}, shed {shed})"
    );
    let mut unique = processed.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        processed.len(),
        "duplicate serials {processed:?}"
    );
    assert!(max_batch <= BATCH_LIMIT, "batch overrun: {max_batch}");
}

/// Mutant: the shed counter is a naive load-then-store on a shared cell.
/// The queue is pre-filled so both producers shed, and their unsynchronized
/// read-modify-writes race.
fn racy_shed_counter() {
    let (tx, rx) = channel::bounded::<Job>(1);
    assert!(tx.try_send((9, 99)).is_ok()); // pre-fill: every producer send sheds
    let shed = Arc::new(RaceCell::new(0usize));
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        let shed = Arc::clone(&shed);
        producers.push(thread::spawn(move || {
            if tx.try_send((p, p)).is_err() {
                let seen = shed.get(); // BUG: unsynchronized RMW
                shed.set(seen + 1);
            }
        }));
    }
    for handle in producers {
        join(handle);
    }
    drop(rx);
}

/// Mutant: a full queue silently drops the job instead of counting a shed,
/// breaking `processed + shed == submitted`.
fn lost_job_on_full() {
    let (tx, rx) = channel::bounded::<Job>(2);
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        producers.push(thread::spawn(move || {
            for i in 0..JOBS_PER_PRODUCER {
                let _ = tx.try_send((p, p * 10 + i)); // BUG: Full is dropped uncounted
            }
        }));
    }
    drop(tx);
    let worker = thread::spawn(move || drain_batching(&rx));
    for handle in producers {
        join(handle);
    }
    let (processed, _) = join(worker);
    assert_eq!(
        processed.len(),
        PRODUCERS * JOBS_PER_PRODUCER,
        "jobs vanished (processed {processed:?})"
    );
}

/// The `serve-queue` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "serve-queue",
            name: "ok",
            about: "bounded queue + atomic shed + try_recv_if key batching",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "serve-queue",
            name: "racy-shed-counter",
            about: "shed counter as unsynchronized load-then-store",
            expect_violation: true,
            spurious: 0,
            run: racy_shed_counter,
        },
        ModelDef {
            suite: "serve-queue",
            name: "lost-job-on-full",
            about: "Full drops the job without counting a shed",
            expect_violation: true,
            spurious: 0,
            run: lost_job_on_full,
        },
    ]
}
