//! The work-stealing chunk cursor from `spmv_dynamic`
//! (`chason_baselines::parallel`): workers claim row chunks with
//! `fetch_add` on a shared cursor and write disjoint output slices. The
//! disjoint-write pattern is exactly what a race detector must *not* flag —
//! and what the two mutants break.
//!
//! Mutants:
//! * `nonatomic-claim` — the claim becomes load-then-store, so two workers
//!   can claim the same chunk and race on its output cell.
//! * `off-by-one-claim` — the stop test is `>` instead of `>=`, walking one
//!   chunk past the end (an out-of-bounds panic in every schedule).

use std::sync::Arc;

use chason_race::atomic::{AtomicUsize, Ordering};
use chason_race::cell::RaceCell;
use chason_race::thread;

use crate::{join, ModelDef};

const CHUNKS: usize = 3;
const WORKERS: usize = 2;

fn chunk_cells() -> Arc<Vec<RaceCell<usize>>> {
    Arc::new((0..CHUNKS).map(|_| RaceCell::new(0)).collect())
}

/// Correct extract: atomic claims partition the chunks, so the per-chunk
/// writes are disjoint and the after-join read sees every chunk written
/// exactly once.
fn ok() {
    let cursor = Arc::new(AtomicUsize::new(0));
    let cells = chunk_cells();
    let mut workers = Vec::new();
    for _ in 0..WORKERS {
        let cursor = Arc::clone(&cursor);
        let cells = Arc::clone(&cells);
        workers.push(thread::spawn(move || {
            loop {
                // relaxed: chunk claims only need atomicity, not ordering —
                // results are read after join (mirrors baselines::parallel)
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= CHUNKS {
                    break;
                }
                cells[idx].set(idx + 1);
            }
        }));
    }
    for handle in workers {
        join(handle);
    }
    for (idx, cell) in cells.iter().enumerate() {
        assert_eq!(cell.get(), idx + 1, "chunk {idx} not written exactly once");
    }
}

/// Mutant: the claim is a load followed by a store — two workers can read
/// the same cursor value and both write the same chunk.
fn nonatomic_claim() {
    let cursor = Arc::new(AtomicUsize::new(0));
    let cells = chunk_cells();
    let mut workers = Vec::new();
    for _ in 0..WORKERS {
        let cursor = Arc::clone(&cursor);
        let cells = Arc::clone(&cells);
        workers.push(thread::spawn(move || {
            loop {
                // relaxed: seeded bug under test — the lost atomicity (not
                // the ordering) is what the checker must catch
                let idx = cursor.load(Ordering::Relaxed); // BUG: not a fetch_add
                if idx >= CHUNKS {
                    break;
                }
                // relaxed: seeded bug under test (see above)
                cursor.store(idx + 1, Ordering::Relaxed);
                cells[idx].set(idx + 1);
            }
        }));
    }
    for handle in workers {
        join(handle);
    }
}

/// Mutant: the stop test is off by one, so a worker claims chunk `CHUNKS`
/// and indexes past the end of the output.
fn off_by_one_claim() {
    let cursor = Arc::new(AtomicUsize::new(0));
    let cells = chunk_cells();
    let mut workers = Vec::new();
    for _ in 0..WORKERS {
        let cursor = Arc::clone(&cursor);
        let cells = Arc::clone(&cells);
        workers.push(thread::spawn(move || {
            loop {
                // relaxed: chunk claims only need atomicity (see `ok`)
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx > CHUNKS {
                    // BUG: admits idx == CHUNKS
                    break;
                }
                cells[idx].set(idx + 1);
            }
        }));
    }
    for handle in workers {
        join(handle);
    }
}

/// The `dynamic-cursor` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "dynamic-cursor",
            name: "ok",
            about: "fetch_add chunk claims give disjoint writes",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "dynamic-cursor",
            name: "nonatomic-claim",
            about: "load-then-store claim duplicates a chunk",
            expect_violation: true,
            spurious: 0,
            run: nonatomic_claim,
        },
        ModelDef {
            suite: "dynamic-cursor",
            name: "off-by-one-claim",
            about: "stop test admits one chunk past the end",
            expect_violation: true,
            spurious: 0,
            run: off_by_one_claim,
        },
    ]
}
