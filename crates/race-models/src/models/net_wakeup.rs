//! The chason-net event loop's wakeup/registration handshake
//! (`crates/net/src/server.rs`). Producers enqueue a completion and then
//! notify the poller, deduplicating notifies through a `notified` flag:
//!
//! ```text
//! producer: enqueue(c); if !notified.swap(true) { poller.notify() }
//! loop:     wait();     notified.store(false);  drain_inbox()
//! ```
//!
//! The dedupe is only sound because the loop clears `notified` *before*
//! draining: a producer that skips the notify (it saw the flag up) knows
//! its enqueue happened before the clear, hence before the drain that
//! follows it, so the completion is picked up by the in-progress cycle.
//!
//! Mutant:
//! * `drain-then-clear` — the loop drains first and clears the flag
//!   after. A producer can enqueue in the window between the drain and
//!   the clear, see the flag still up, and skip the notify: the loop goes
//!   back to sleep with a completion sitting in the inbox forever (a lost
//!   wakeup).

use std::sync::Arc;

use chason_race::atomic::{AtomicBool, AtomicUsize, Ordering};
use chason_race::thread;
use crossbeam::channel;

use crate::{join, ModelDef};

const SUBMITTED: usize = 2;

/// When the loop clears the `notified` flag relative to draining the
/// inbox.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Clear {
    BeforeDrain,
    AfterDrain,
}

fn run_with(clear: Clear) {
    // The inbox of completions and the poller's notification pipe. A
    // blocking `recv` on the token channel is the loop parked in
    // `wait()`: disconnect (every producer done, no token in flight)
    // means no wakeup will ever come again.
    let (item_tx, item_rx) = channel::bounded::<u32>(4);
    let (token_tx, token_rx) = channel::bounded::<()>(4);
    let notified = Arc::new(AtomicBool::new(false));
    let drained_total = Arc::new(AtomicUsize::new(0));

    let mut producers = Vec::new();
    for item in 0..SUBMITTED as u32 {
        let item_tx = item_tx.clone();
        let token_tx = token_tx.clone();
        let notified = Arc::clone(&notified);
        producers.push(thread::spawn(move || {
            assert!(item_tx.try_send(item).is_ok());
            // Dedupe: only the producer that flips the flag pays for a
            // poller notify; everyone else relies on the handshake.
            if !notified.swap(true, Ordering::SeqCst) {
                assert!(token_tx.try_send(()).is_ok());
            }
        }));
    }
    // The loop owns only the receiving ends; the producers' clones are
    // the last senders, so their exit closes the wait channel.
    drop(item_tx);
    drop(token_tx);

    let loop_notified = Arc::clone(&notified);
    let loop_drained = Arc::clone(&drained_total);
    let event_loop = thread::spawn(move || {
        let mut drained = 0;
        while token_rx.recv().is_ok() {
            if clear == Clear::BeforeDrain {
                loop_notified.store(false, Ordering::SeqCst);
            }
            while item_rx.try_recv().is_ok() {
                drained += 1;
            }
            if clear == Clear::AfterDrain {
                // BUG (mutant): a producer enqueueing right here still
                // sees the flag up, skips its notify, and is never
                // drained.
                loop_notified.store(false, Ordering::SeqCst);
            }
        }
        loop_drained.store(drained, Ordering::SeqCst);
    });

    for producer in producers {
        join(producer);
    }
    join(event_loop);
    assert_eq!(
        drained_total.load(Ordering::SeqCst),
        SUBMITTED,
        "lost wakeup: a completion was enqueued but never drained"
    );
}

fn ok() {
    run_with(Clear::BeforeDrain);
}

fn drain_then_clear() {
    run_with(Clear::AfterDrain);
}

/// The `net-wakeup` suite.
pub fn models() -> Vec<ModelDef> {
    vec![
        ModelDef {
            suite: "net-wakeup",
            name: "ok",
            about: "clear notified before draining: skipped notifies are safe",
            expect_violation: false,
            spurious: 0,
            run: ok,
        },
        ModelDef {
            suite: "net-wakeup",
            name: "drain-then-clear",
            about: "flag cleared after the drain: dedupe loses a wakeup",
            expect_violation: true,
            spurious: 0,
            run: drain_then_clear,
        },
    ]
}
