use serde::{Deserialize, Serialize};

/// Geometry and bandwidth of an HBM subsystem.
///
/// The default values describe the AMD Xilinx Alveo U55c used in the paper:
/// 32 channels at 14.37 GB/s each (460 GB/s aggregate), 512-bit pseudo-channel
/// ports, 16 GB capacity. §3.2 notes that 512 bits is the ideal read/write
/// width, so each beat carries eight 64-bit sparse elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of independent channels on the device.
    pub channels: usize,
    /// Width of a channel's read/write port in bits.
    pub port_width_bits: usize,
    /// Sustained per-channel bandwidth in GB/s.
    pub channel_bandwidth_gbps: f64,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Size of one sparse element in bits (32-bit value + 32-bit metadata).
    pub element_bits: usize,
}

impl HbmConfig {
    /// The Alveo U55c HBM2 configuration used throughout the paper.
    pub fn alveo_u55c() -> Self {
        HbmConfig {
            channels: 32,
            port_width_bits: 512,
            channel_bandwidth_gbps: 14.37,
            capacity_bytes: 16 * (1 << 30),
            element_bits: 64,
        }
    }

    /// The Alveo U280 configuration (Serpens' original platform): same
    /// geometry, lower sustained bandwidth (460 GB/s peak is not reached;
    /// the paper quotes 273 GB/s usable on U280).
    pub fn alveo_u280() -> Self {
        HbmConfig {
            channel_bandwidth_gbps: 8.53,
            ..HbmConfig::alveo_u55c()
        }
    }

    /// Sparse elements carried by one beat (`port_width / element_bits`).
    ///
    /// For the paper's 64-bit elements this is 8 — which is why a PEG holds
    /// 8 PEs, and why 64-bit precision (§5.5) would drop it to 5.
    pub fn elements_per_beat(&self) -> usize {
        self.port_width_bits / self.element_bits
    }

    /// Bytes carried by one beat.
    pub fn bytes_per_beat(&self) -> usize {
        self.port_width_bits / 8
    }

    /// Aggregate bandwidth of `n` active channels in GB/s.
    pub fn aggregate_bandwidth_gbps(&self, active_channels: usize) -> f64 {
        self.channel_bandwidth_gbps * active_channels.min(self.channels) as f64
    }

    /// Time to stream `bytes` through one channel, in seconds.
    pub fn channel_stream_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.channel_bandwidth_gbps * 1e9)
    }

    /// Validates the configuration (non-zero geometry, element width divides
    /// the port width).
    pub fn is_valid(&self) -> bool {
        self.channels > 0
            && self.port_width_bits > 0
            && self.element_bits > 0
            && self.port_width_bits.is_multiple_of(self.element_bits)
            && self.channel_bandwidth_gbps > 0.0
    }
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig::alveo_u55c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_matches_paper_numbers() {
        let cfg = HbmConfig::alveo_u55c();
        assert_eq!(cfg.channels, 32);
        assert_eq!(cfg.elements_per_beat(), 8);
        assert_eq!(cfg.bytes_per_beat(), 64);
        // 32 channels at 14.37 GB/s is the quoted 460 GB/s peak.
        let peak = cfg.aggregate_bandwidth_gbps(32);
        assert!((peak - 459.84).abs() < 0.1, "peak {peak}");
        // 19 channels is the paper's Chasoň allocation: 273 GB/s.
        let used = cfg.aggregate_bandwidth_gbps(19);
        assert!((used - 273.0).abs() < 0.1, "used {used}");
    }

    #[test]
    fn aggregate_clamps_to_channel_count() {
        let cfg = HbmConfig::alveo_u55c();
        assert_eq!(
            cfg.aggregate_bandwidth_gbps(64),
            cfg.aggregate_bandwidth_gbps(32)
        );
    }

    #[test]
    fn sixty_four_bit_precision_drops_elements_per_beat() {
        // §5.5: FP64 value + 32-bit metadata = 96 bits -> 5 elements/beat.
        let cfg = HbmConfig {
            element_bits: 96,
            port_width_bits: 480,
            ..Default::default()
        };
        assert_eq!(cfg.elements_per_beat(), 5);
    }

    #[test]
    fn stream_time_scales_linearly() {
        let cfg = HbmConfig::alveo_u55c();
        let t1 = cfg.channel_stream_seconds(1_000_000);
        let t2 = cfg.channel_stream_seconds(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validity_checks() {
        assert!(HbmConfig::alveo_u55c().is_valid());
        assert!(HbmConfig::alveo_u280().is_valid());
        let bad = HbmConfig {
            element_bits: 60,
            ..Default::default()
        };
        assert!(!bad.is_valid(), "60 does not divide 512");
        let bad = HbmConfig {
            channels: 0,
            ..Default::default()
        };
        assert!(!bad.is_valid());
    }
}
