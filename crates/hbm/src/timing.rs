//! Beat-level stream timing: where the ≈2.8× initiation-interval inflation
//! of the real pipeline comes from.
//!
//! The schedule model assumes one 512-bit beat per clock. A real HBM2
//! pseudo-channel cannot sustain that against a 300 MHz consumer: reads are
//! issued in bursts (BL4 over a DDR interface), row activations insert gaps
//! between bursts, periodic refresh steals whole windows, and the AXI/HLS
//! glue adds handshake bubbles. [`StreamTiming`] composes those effects
//! into an effective cycles-per-beat figure; [`StreamTiming::u55c`] is the
//! operating point that reproduces the Table 3 latency calibration
//! (`chason_sim`'s `stream_ii ≈ 2.8`).

use serde::{Deserialize, Serialize};

/// Beat-level timing parameters of one streamed HBM channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamTiming {
    /// Beats delivered per burst (BL4 on HBM2 = 2 × 512-bit beats at the
    /// kernel clock).
    pub beats_per_burst: u64,
    /// Dead cycles between consecutive bursts of the same row
    /// (tCCD + AXI handshake).
    pub inter_burst_gap: u64,
    /// Additional dead cycles when a burst crosses a DRAM row boundary
    /// (tRP + tRCD).
    pub row_miss_penalty: u64,
    /// Beats per DRAM row (1 KB row / 64 B beat = 16).
    pub beats_per_row: u64,
    /// Cycles between refresh windows (tREFI at the kernel clock).
    pub refresh_interval: u64,
    /// Cycles a refresh window blocks the channel (tRFC).
    pub refresh_penalty: u64,
}

impl StreamTiming {
    /// The Alveo U55c operating point at a 301 MHz kernel clock.
    ///
    /// With these parameters a long sequential stream costs ≈2.8 cycles per
    /// beat — the inflation `chason-sim` applies as `stream_ii`.
    pub fn u55c() -> Self {
        StreamTiming {
            beats_per_burst: 2,
            inter_burst_gap: 2,
            row_miss_penalty: 10,
            beats_per_row: 16,
            refresh_interval: 1170, // 3.9 us at 301 MHz (per-bank tREFI)
            refresh_penalty: 78,    // 260 ns tRFC
        }
    }

    /// An idealized memory with no gaps: exactly one cycle per beat.
    pub fn ideal() -> Self {
        StreamTiming {
            beats_per_burst: u64::MAX,
            inter_burst_gap: 0,
            row_miss_penalty: 0,
            beats_per_row: u64::MAX,
            refresh_interval: u64::MAX,
            refresh_penalty: 0,
        }
    }

    /// Cycles to stream `beats` sequentially through one channel.
    pub fn stream_cycles(&self, beats: u64) -> u64 {
        if beats == 0 {
            return 0;
        }
        let mut cycles = beats; // one transfer cycle per beat
        if self.beats_per_burst != u64::MAX && self.beats_per_burst > 0 {
            let bursts = beats.div_ceil(self.beats_per_burst);
            cycles += bursts.saturating_sub(1) * self.inter_burst_gap;
        }
        if self.beats_per_row != u64::MAX && self.beats_per_row > 0 {
            let row_crossings = beats.div_ceil(self.beats_per_row).saturating_sub(1);
            cycles += row_crossings * self.row_miss_penalty;
        }
        if self.refresh_interval != u64::MAX && self.refresh_interval > 0 {
            let refreshes = cycles / self.refresh_interval;
            cycles += refreshes * self.refresh_penalty;
        }
        cycles
    }

    /// Effective cycles per beat for a long stream (the `stream_ii` this
    /// timing implies).
    pub fn effective_ii(&self) -> f64 {
        let beats = 1_000_000u64;
        self.stream_cycles(beats) as f64 / beats as f64
    }

    /// Sustained bandwidth of a channel in GB/s for a given kernel clock,
    /// assuming 64-byte beats.
    pub fn sustained_bandwidth_gbps(&self, clock_mhz: f64) -> f64 {
        clock_mhz * 1e6 * 64.0 / self.effective_ii() / 1e9
    }
}

impl Default for StreamTiming {
    fn default() -> Self {
        StreamTiming::u55c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_memory_is_one_cycle_per_beat() {
        let t = StreamTiming::ideal();
        assert_eq!(t.stream_cycles(0), 0);
        assert_eq!(t.stream_cycles(1), 1);
        assert_eq!(t.stream_cycles(10_000), 10_000);
        assert!((t.effective_ii() - 1.0).abs() < 1e-9);
    }

    /// The U55c operating point reproduces the calibrated `stream_ii`.
    #[test]
    fn u55c_effective_ii_matches_calibration() {
        let ii = StreamTiming::u55c().effective_ii();
        assert!(
            (ii - 2.8).abs() < 0.2,
            "u55c timing implies II {ii:.3}, calibration uses 2.8"
        );
    }

    #[test]
    fn u55c_sustained_bandwidth_is_below_channel_peak() {
        let bw = StreamTiming::u55c().sustained_bandwidth_gbps(301.0);
        // 64 B x 301 MHz = 19.3 GB/s demanded; sustained must land under
        // the channel's 14.37 GB/s physical peak.
        assert!(bw < 14.37, "sustained {bw:.2} GB/s exceeds channel peak");
        assert!(bw > 4.0, "sustained {bw:.2} GB/s implausibly low");
    }

    #[test]
    fn each_effect_adds_cycles() {
        let base = StreamTiming::ideal();
        let burst = StreamTiming {
            beats_per_burst: 2,
            inter_burst_gap: 3,
            ..base
        };
        let rows = StreamTiming {
            beats_per_row: 16,
            row_miss_penalty: 14,
            ..burst
        };
        let refresh = StreamTiming {
            refresh_interval: 1000,
            refresh_penalty: 78,
            ..rows
        };
        let beats = 10_000;
        let a = base.stream_cycles(beats);
        let b = burst.stream_cycles(beats);
        let c = rows.stream_cycles(beats);
        let d = refresh.stream_cycles(beats);
        assert!(a < b && b < c && c < d, "{a} {b} {c} {d}");
    }

    #[test]
    fn short_streams_pay_no_refresh() {
        let t = StreamTiming::u55c();
        // A stream shorter than the refresh interval sees no refresh tax.
        let no_refresh = StreamTiming {
            refresh_interval: u64::MAX,
            ..t
        };
        assert_eq!(t.stream_cycles(64), no_refresh.stream_cycles(64));
    }
}
