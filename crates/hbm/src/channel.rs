use crate::HbmConfig;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// One HBM channel holding a scheduled data list.
///
/// A channel stores the raw 64-bit words the scheduler produced for it
/// (packed sparse elements, with `0` denoting a stall slot) and answers
/// traffic questions: how many 512-bit beats the list occupies and how many
/// bytes cross the channel when it is streamed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    id: usize,
    data: Vec<u64>,
}

impl Channel {
    /// Creates an empty channel with the given ID.
    pub fn new(id: usize) -> Self {
        Channel {
            id,
            data: Vec::new(),
        }
    }

    /// Creates a channel pre-loaded with a data list.
    pub fn with_data(id: usize, data: Vec<u64>) -> Self {
        Channel { id, data }
    }

    /// Channel ID (index within the HBM stack).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The raw data list.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Number of 64-bit words in the data list.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the data list is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a word to the data list.
    pub fn push(&mut self, word: u64) {
        self.data.push(word);
    }

    /// Number of port-width beats needed to stream the list
    /// (`ceil(len / elements_per_beat)`).
    pub fn beats(&self, config: &HbmConfig) -> u64 {
        let per_beat = config.elements_per_beat();
        (self.data.len().div_ceil(per_beat)) as u64
    }

    /// Bytes transferred when the list is streamed (beats are always full
    /// width; a partial final beat still moves `bytes_per_beat`).
    pub fn bytes(&self, config: &HbmConfig) -> u64 {
        self.beats(config) * config.bytes_per_beat() as u64
    }

    /// Iterates the list as full beats, padding the final beat with zeros.
    pub fn beat_stream<'a>(&'a self, config: &HbmConfig) -> BeatStream<'a> {
        BeatStream {
            data: &self.data,
            per_beat: config.elements_per_beat(),
            cursor: 0,
        }
    }
}

/// Iterator over a channel's data list in port-width beats.
///
/// Each item is one beat: exactly `elements_per_beat` 64-bit words, with the
/// final beat zero-padded. Produced by [`Channel::beat_stream`].
#[derive(Debug, Clone)]
pub struct BeatStream<'a> {
    data: &'a [u64],
    per_beat: usize,
    cursor: usize,
}

impl BeatStream<'_> {
    /// Serializes the next beat as little-endian bytes (wire format of the
    /// 512-bit port), or `None` when the stream is exhausted.
    pub fn next_beat_bytes(&mut self) -> Option<Bytes> {
        let beat = self.next()?;
        let mut buf = BytesMut::with_capacity(beat.len() * 8);
        for w in &beat {
            buf.put_u64_le(*w);
        }
        Some(buf.freeze())
    }
}

impl Iterator for BeatStream<'_> {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.data.len() {
            return None;
        }
        let end = (self.cursor + self.per_beat).min(self.data.len());
        let mut beat = self.data[self.cursor..end].to_vec();
        beat.resize(self.per_beat, 0);
        self.cursor = end;
        Some(beat)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.data.len() - self.cursor).div_ceil(self.per_beat);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for BeatStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HbmConfig {
        HbmConfig::alveo_u55c()
    }

    #[test]
    fn empty_channel_has_no_beats() {
        let ch = Channel::new(3);
        assert_eq!(ch.id(), 3);
        assert!(ch.is_empty());
        assert_eq!(ch.beats(&cfg()), 0);
        assert_eq!(ch.bytes(&cfg()), 0);
        assert_eq!(ch.beat_stream(&cfg()).count(), 0);
    }

    #[test]
    fn exact_multiple_fills_all_beats() {
        let ch = Channel::with_data(0, (0..16u64).collect());
        assert_eq!(ch.beats(&cfg()), 2);
        let beats: Vec<_> = ch.beat_stream(&cfg()).collect();
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0], (0..8u64).collect::<Vec<_>>());
        assert_eq!(beats[1], (8..16u64).collect::<Vec<_>>());
    }

    #[test]
    fn final_beat_is_zero_padded() {
        let ch = Channel::with_data(0, vec![1, 2, 3]);
        let beats: Vec<_> = ch.beat_stream(&cfg()).collect();
        assert_eq!(beats, vec![vec![1, 2, 3, 0, 0, 0, 0, 0]]);
        assert_eq!(ch.bytes(&cfg()), 64, "a partial beat still moves 64 bytes");
    }

    #[test]
    fn beat_stream_is_exact_size() {
        let ch = Channel::with_data(0, (0..20u64).collect());
        let stream = ch.beat_stream(&cfg());
        assert_eq!(stream.len(), 3);
    }

    #[test]
    fn beat_bytes_are_little_endian() {
        let ch = Channel::with_data(0, vec![0x0102_0304_0506_0708]);
        let mut stream = ch.beat_stream(&cfg());
        let bytes = stream.next_beat_bytes().unwrap();
        assert_eq!(bytes.len(), 64);
        assert_eq!(
            &bytes[..8],
            &[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
        );
        assert!(stream.next_beat_bytes().is_none());
    }

    #[test]
    fn push_extends_the_list() {
        let mut ch = Channel::new(0);
        for w in 0..9u64 {
            ch.push(w);
        }
        assert_eq!(ch.len(), 9);
        assert_eq!(ch.beats(&cfg()), 2);
    }

    #[test]
    fn narrower_elements_pack_more_per_beat() {
        // Hypothetical 128-bit port with 32-bit elements: 4 per beat.
        let cfg = HbmConfig {
            port_width_bits: 128,
            element_bits: 32,
            ..cfg()
        };
        let ch = Channel::with_data(0, (0..5u64).collect());
        assert_eq!(ch.beats(&cfg), 2);
    }
}
