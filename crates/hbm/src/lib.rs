//! High-bandwidth-memory (HBM) channel model for the Chasoň simulation.
//!
//! The paper's accelerators are *streaming* designs: scheduled data lists are
//! read sequentially from independent HBM channels at the channel's peak
//! bandwidth (14.37 GB/s on the Alveo U55c), 512 bits per clock beat, eight
//! 64-bit sparse elements per beat. Because the stream never stalls, the
//! memory system's contribution to performance reduces to *how many beats
//! each channel must transfer* — which is exactly what this crate models.
//!
//! * [`HbmConfig`] — stack geometry and per-channel bandwidth, with an
//!   [`HbmConfig::alveo_u55c`] preset;
//! * [`Channel`] / [`BeatStream`] — a channel holding a data list and the
//!   512-bit beat iterator over it;
//! * [`traffic`] — transfer accounting across channels, used by the paper's
//!   "data transfer reduction" figure (Fig. 15).
//!
//! # Example
//!
//! ```
//! use chason_hbm::{Channel, HbmConfig};
//!
//! let cfg = HbmConfig::alveo_u55c();
//! let channel = Channel::with_data(0, (0..20u64).collect());
//! // 20 elements, 8 per 512-bit beat -> 3 beats (last one padded).
//! assert_eq!(channel.beats(&cfg), 3);
//! assert_eq!(channel.bytes(&cfg), 3 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod config;
pub mod timing;
pub mod traffic;

pub use channel::{BeatStream, Channel};
pub use config::HbmConfig;
pub use timing::StreamTiming;
