//! Transfer accounting across a set of channels.
//!
//! Fig. 15 of the paper reports "data transfer reduction": Chasoň moves ~7×
//! fewer bytes than Serpens for the same matrix because CrHCS removes the
//! explicit zero padding from the channel lists. These helpers compute the
//! byte totals and the derived efficiency metrics (Eq. 7).

use crate::{Channel, HbmConfig};
use serde::{Deserialize, Serialize};

/// Aggregate traffic of one streamed pass over a set of channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Channels that carried at least one beat.
    pub active_channels: usize,
    /// Total beats across all channels.
    pub beats: u64,
    /// Total bytes across all channels.
    pub bytes: u64,
    /// Beats on the longest channel (streaming makes this the time-critical
    /// channel: all channels finish together after this many beats).
    pub max_channel_beats: u64,
}

impl TrafficSummary {
    /// Measures the traffic of streaming every channel once.
    pub fn measure(channels: &[Channel], config: &HbmConfig) -> Self {
        let mut beats = 0u64;
        let mut active = 0usize;
        let mut max_beats = 0u64;
        for ch in channels {
            let b = ch.beats(config);
            beats += b;
            max_beats = max_beats.max(b);
            if b > 0 {
                active += 1;
            }
        }
        TrafficSummary {
            active_channels: active,
            beats,
            bytes: beats * config.bytes_per_beat() as u64,
            max_channel_beats: max_beats,
        }
    }

    /// Wall-clock time of the streamed pass in seconds: the longest channel's
    /// bytes over one channel's bandwidth (channels stream concurrently).
    pub fn stream_seconds(&self, config: &HbmConfig) -> f64 {
        config.channel_stream_seconds(self.max_channel_beats * config.bytes_per_beat() as u64)
    }

    /// Ratio of this pass's bytes to another pass's bytes.
    ///
    /// `other.transfer_reduction_vs(self)` > 1 means `self` moves less data.
    /// Returns `f64::INFINITY` when `self` moves no bytes but `other` does,
    /// and `1.0` when both are empty.
    pub fn transfer_reduction_vs(&self, other: &TrafficSummary) -> f64 {
        if self.bytes == 0 {
            if other.bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            other.bytes as f64 / self.bytes as f64
        }
    }
}

/// Bandwidth efficiency (Eq. 7): throughput harnessed per GB/s of bandwidth.
///
/// Returns 0 when no bandwidth is used.
pub fn bandwidth_efficiency(throughput_gflops: f64, bandwidth_gbps: f64) -> f64 {
    if bandwidth_gbps <= 0.0 {
        0.0
    } else {
        throughput_gflops / bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HbmConfig {
        HbmConfig::alveo_u55c()
    }

    fn channels(lengths: &[usize]) -> Vec<Channel> {
        lengths
            .iter()
            .enumerate()
            .map(|(i, &n)| Channel::with_data(i, vec![1u64; n]))
            .collect()
    }

    #[test]
    fn measure_counts_beats_and_active_channels() {
        let chs = channels(&[16, 8, 0, 3]);
        let t = TrafficSummary::measure(&chs, &cfg());
        assert_eq!(t.beats, [2, 1, 0, 1].iter().sum::<u64>());
        assert_eq!(t.bytes, 4 * 64);
        assert_eq!(t.active_channels, 3);
        assert_eq!(t.max_channel_beats, 2);
    }

    #[test]
    fn stream_time_is_set_by_longest_channel() {
        let t = TrafficSummary::measure(&channels(&[80, 8]), &cfg());
        let expected = cfg().channel_stream_seconds(10 * 64);
        assert!((t.stream_seconds(&cfg()) - expected).abs() < 1e-15);
    }

    #[test]
    fn transfer_reduction_ratio() {
        let small = TrafficSummary::measure(&channels(&[8]), &cfg());
        let large = TrafficSummary::measure(&channels(&[56]), &cfg());
        assert!((small.transfer_reduction_vs(&large) - 7.0).abs() < 1e-12);
        assert!((large.transfer_reduction_vs(&small) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_reduction_edge_cases() {
        let empty = TrafficSummary::measure(&[], &cfg());
        let some = TrafficSummary::measure(&channels(&[8]), &cfg());
        assert_eq!(empty.transfer_reduction_vs(&empty), 1.0);
        assert_eq!(empty.transfer_reduction_vs(&some), f64::INFINITY);
    }

    #[test]
    fn bandwidth_efficiency_matches_eq7() {
        assert!((bandwidth_efficiency(30.0, 273.0) - 0.1099).abs() < 1e-3);
        assert_eq!(bandwidth_efficiency(30.0, 0.0), 0.0);
    }
}
