//! Integration tests of the HBM timing and traffic models: exact burst /
//! refresh accounting, monotonicity under load, and channel contention
//! (skew) behaviour.

use chason_hbm::traffic::TrafficSummary;
use chason_hbm::{Channel, HbmConfig, StreamTiming};
use proptest::prelude::*;

fn cfg() -> HbmConfig {
    HbmConfig::alveo_u55c()
}

fn channels(lengths: &[usize]) -> Vec<Channel> {
    lengths
        .iter()
        .enumerate()
        .map(|(i, &n)| Channel::with_data(i, vec![1u64; n]))
        .collect()
}

/// Burst accounting is exact, not approximate: hand-computed cycle counts
/// for a small stream with every effect isolated.
#[test]
fn burst_and_row_accounting_is_exact() {
    let t = StreamTiming {
        beats_per_burst: 2,
        inter_burst_gap: 3,
        row_miss_penalty: 10,
        beats_per_row: 4,
        refresh_interval: u64::MAX,
        refresh_penalty: 0,
    };
    // 8 beats = 4 bursts -> 3 gaps; 2 rows -> 1 row crossing.
    assert_eq!(t.stream_cycles(8), 8 + 3 * 3 + 10);
    // 1 beat: a single burst, no gaps, no crossings.
    assert_eq!(t.stream_cycles(1), 1);
    // 2 beats: still one burst and one row.
    assert_eq!(t.stream_cycles(2), 2);
    // 3 beats: second burst opens -> one gap.
    assert_eq!(t.stream_cycles(3), 3 + 3);
    // 5 beats: 3 bursts (2 gaps), second row (1 crossing).
    assert_eq!(t.stream_cycles(5), 5 + 2 * 3 + 10);
}

/// Refresh windows tax exactly the cycles that cross a tREFI boundary.
#[test]
fn refresh_accounting_is_exact() {
    let t = StreamTiming {
        beats_per_burst: u64::MAX,
        inter_burst_gap: 0,
        row_miss_penalty: 0,
        beats_per_row: u64::MAX,
        refresh_interval: 100,
        refresh_penalty: 7,
    };
    assert_eq!(t.stream_cycles(99), 99);
    assert_eq!(t.stream_cycles(100), 100 + 7);
    assert_eq!(t.stream_cycles(250), 250 + 2 * 7);
}

/// A skewed channel load (all data on one channel) streams slower than the
/// same bytes balanced across channels — the contention the schedulers
/// exist to avoid.
#[test]
fn skewed_channel_load_streams_slower_than_balanced() {
    let config = cfg();
    let total = 32 * 16; // words
    let skewed = TrafficSummary::measure(&channels(&[total, 0, 0, 0]), &config);
    let balanced = TrafficSummary::measure(
        &channels(&[total / 4, total / 4, total / 4, total / 4]),
        &config,
    );
    assert_eq!(skewed.bytes, balanced.bytes, "same payload");
    assert!(skewed.max_channel_beats > balanced.max_channel_beats);
    assert!(skewed.stream_seconds(&config) > balanced.stream_seconds(&config));
    // Perfect 4-way balance is exactly 4x faster.
    assert!(
        (skewed.stream_seconds(&config) / balanced.stream_seconds(&config) - 4.0).abs() < 1e-12
    );
}

/// Partial beats round up: a channel pays a full beat for its last ragged
/// word (the §3.2 padding in hardware terms).
#[test]
fn ragged_tail_words_cost_a_full_beat() {
    let config = cfg();
    let wpb = config.elements_per_beat();
    for extra in 1..wpb {
        let t = TrafficSummary::measure(&channels(&[wpb + extra]), &config);
        assert_eq!(t.beats, 2, "{extra} extra words must round to 2 beats");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More beats never stream faster, under any plausible timing.
    #[test]
    fn stream_cycles_are_monotone_in_beats(
        beats in 0u64..5_000,
        delta in 1u64..500,
        gap in 0u64..8,
        miss in 0u64..32,
        refresh in 64u64..4096,
    ) {
        let t = StreamTiming {
            beats_per_burst: 2,
            inter_burst_gap: gap,
            row_miss_penalty: miss,
            beats_per_row: 16,
            refresh_interval: refresh,
            refresh_penalty: 78,
            };
        prop_assert!(t.stream_cycles(beats) <= t.stream_cycles(beats + delta));
    }

    /// Real timing never beats the ideal memory, and the effective
    /// initiation interval is always >= 1 cycle/beat.
    #[test]
    fn real_timing_never_beats_ideal(beats in 1u64..100_000) {
        let real = StreamTiming::u55c();
        let ideal = StreamTiming::ideal();
        prop_assert!(real.stream_cycles(beats) >= ideal.stream_cycles(beats));
        prop_assert!(real.effective_ii() >= 1.0);
    }

    /// Traffic measurement is additive: bytes across channels equal the sum
    /// of per-channel bytes, and the longest channel bounds the average.
    #[test]
    fn traffic_summary_invariants(lengths in proptest::collection::vec(0usize..400, 1..8)) {
        let config = cfg();
        let chs = channels(&lengths);
        let t = TrafficSummary::measure(&chs, &config);
        let per_channel: u64 = chs.iter().map(|c| c.beats(&config)).sum();
        prop_assert_eq!(t.beats, per_channel);
        prop_assert_eq!(t.bytes, t.beats * config.bytes_per_beat() as u64);
        prop_assert_eq!(t.active_channels, lengths.iter().filter(|&&n| n > 0).count());
        if t.active_channels > 0 {
            let avg = t.beats as f64 / t.active_channels as f64;
            prop_assert!(t.max_channel_beats as f64 >= avg - 1e-9);
        }
        // Streaming time depends only on the longest channel.
        let longest_only = TrafficSummary::measure(
            &channels(&[t.max_channel_beats as usize * config.elements_per_beat()]),
            &config,
        );
        prop_assert!((t.stream_seconds(&config) - longest_only.stream_seconds(&config)).abs() < 1e-15);
    }
}
