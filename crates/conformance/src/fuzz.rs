//! Deterministic schedule fuzzer: fault injection against the full net.
//!
//! Each iteration builds a clean CrHCS schedule for a small seeded matrix,
//! applies one corruption from `chason-verify`'s ten-mutation library, and
//! then checks that the corruption is *caught* — by the static checker
//! ([`chason_verify::verify_schedule`]) or, failing that, by a dynamic
//! oracle watching a bare PEG-level replay of the corrupted grid:
//!
//! * **model** — the replay errors, panics, or reports pipeline hazards;
//! * **metamorphic** — the replay's MAC count disagrees with the source
//!   matrix's non-zero count;
//! * **numeric** — the merged `y` deviates from the CPU reference beyond
//!   the [`UlpTolerance`].
//!
//! The replay is *bare* on purpose: the engines re-run the static checker
//! in debug builds, so routing a corrupted schedule through them would
//! never reach the dynamic layer. Driving [`Peg`]s directly (with the
//! Rearrange Unit's documented merge formula reimplemented here) lets the
//! fuzzer attribute each catch to the layer that actually made it — the
//! evidence that the static and dynamic oracles compose into a net with no
//! holes.
//!
//! Everything is seeded: the same `(seed, iterations)` pair explores the
//! same `(matrix, config, corruption)` sequence on every machine.

// SplitMix64 lives in `crate::delta` and is shared by both fuzzers: tiny,
// deterministic, and independent of the OS — the only randomness used.
use crate::delta::{random_delta, DeltaKind, SplitMix64};
use crate::ulp::{compare, row_scales, UlpTolerance};
use chason_baselines::reference;
use chason_core::schedule::{Crhcs, ScheduledMatrix, Scheduler, SchedulerConfig};
use chason_sim::{AcceleratorConfig, ChasonEngine, Peg};
use chason_sparse::generators::{banded_with_nnz, diagonal, power_law, uniform_random};
use chason_sparse::CooMatrix;
use chason_verify::mutate::Corruption;
use chason_verify::verify_schedule;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which oracle layer detected an injected corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaughtBy {
    /// `chason-verify`'s static rules rejected the schedule outright.
    Static,
    /// The bare replay errored, panicked, or observed pipeline hazards.
    DynamicModel,
    /// The replay ran clean but performed a wrong number of MACs.
    DynamicMetamorphic,
    /// The replay ran clean but produced a wrong `y`.
    DynamicNumeric,
}

impl CaughtBy {
    /// Short stable label for tables and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            CaughtBy::Static => "static",
            CaughtBy::DynamicModel => "dynamic/model",
            CaughtBy::DynamicMetamorphic => "dynamic/metamorphic",
            CaughtBy::DynamicNumeric => "dynamic/numeric",
        }
    }
}

/// One fuzz iteration that escaped every oracle — a hole in the net.
#[derive(Debug, Clone)]
pub struct Escape {
    /// Iteration index (reproduce with the same seed).
    pub iteration: u64,
    /// The corruption that went undetected.
    pub corruption: Corruption,
    /// Name of the corpus matrix involved.
    pub matrix: String,
    /// Scheduler configuration of the escaped schedule.
    pub config: SchedulerConfig,
    /// The matrix itself, for minimization / `.mtx` artifact export.
    pub source: CooMatrix,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations where the corruption found no site and was skipped.
    pub skipped: u64,
    /// `corruption name -> (applications, layers that caught it)`.
    pub detections: BTreeMap<&'static str, (u64, Vec<CaughtBy>)>,
    /// Corruptions that escaped both layers.
    pub escapes: Vec<Escape>,
}

impl FuzzOutcome {
    /// True when every applied corruption was caught by some layer.
    pub fn is_clean(&self) -> bool {
        self.escapes.is_empty()
    }

    /// Whether every one of the ten corruptions was actually applied (and
    /// not merely attempted) at least once.
    pub fn covered_all_corruptions(&self) -> bool {
        Corruption::ALL
            .iter()
            .all(|c| self.detections.get(c.name()).is_some_and(|d| d.0 > 0))
    }

    /// Renders the per-corruption detection table required by the harness:
    /// corruption, expected static rule, applications, and the layers that
    /// caught it.
    pub fn detection_table(&self) -> String {
        let mut out = String::from(
            "corruption    rule  applied  caught by\n\
             ------------  ----  -------  ---------\n",
        );
        for c in Corruption::ALL {
            let (applied, layers) = self
                .detections
                .get(c.name())
                .cloned()
                .unwrap_or((0, Vec::new()));
            let layers = if layers.is_empty() {
                "-".to_string()
            } else {
                layers
                    .iter()
                    .map(|l| l.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "{:<12}  {:<4}  {:>7}  {}\n",
                c.name(),
                format!("{:?}", c.expected_rule()),
                applied,
                layers
            ));
        }
        out
    }
}

/// The fuzz pool: small matrices so each iteration replays in microseconds.
fn pool() -> Vec<(String, CooMatrix)> {
    vec![
        ("uniform/48x48".into(), uniform_random(48, 48, 260, 41)),
        ("power-law/56x56".into(), power_law(56, 56, 320, 1.7, 42)),
        ("banded/64x64".into(), banded_with_nnz(64, 5, 300, 43)),
        ("diagonal/40x40".into(), diagonal(40, 44)),
    ]
}

/// Runs `iterations` fuzz cycles from `seed`. Every iteration injects one
/// corruption into a clean CrHCS schedule and records which layer caught
/// it; an iteration caught by *no* layer lands in
/// [`FuzzOutcome::escapes`].
pub fn fuzz(seed: u64, iterations: u64) -> FuzzOutcome {
    let pool = pool();
    let mut rng = SplitMix64(seed);
    let mut outcome = FuzzOutcome::default();
    // Several corruptions legitimately panic the bare replay (that *is* the
    // dynamic/model catch); keep the default hook from spraying backtraces
    // for each one.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for i in 0..iterations {
        // Cycle through the corruptions so all ten are exercised even in
        // short runs; matrix and config stay pseudo-random.
        let corruption = Corruption::ALL[(i % Corruption::ALL.len() as u64) as usize];
        let (name, matrix) = &pool[rng.pick(pool.len())];
        let config = SchedulerConfig::toy(2 + rng.pick(3), 2 + rng.pick(3), [2, 4, 6][rng.pick(3)]);
        outcome.iterations += 1;

        let mut schedule = Crhcs::new().schedule(matrix, &config);
        if !corruption.apply(&mut schedule) {
            outcome.skipped += 1;
            continue;
        }
        let entry = outcome.detections.entry(corruption.name()).or_default();
        entry.0 += 1;

        let mut caught = Vec::new();
        if verify_schedule(&schedule, Some(matrix)).has_errors() {
            caught.push(CaughtBy::Static);
        }
        if let Some(dynamic) = replay_catches(&schedule, matrix) {
            caught.push(dynamic);
        }
        if caught.is_empty() {
            outcome.escapes.push(Escape {
                iteration: i,
                corruption,
                matrix: name.clone(),
                config,
                source: matrix.clone(),
            });
        }
        for layer in caught {
            if !entry.1.contains(&layer) {
                entry.1.push(layer);
            }
        }
    }
    std::panic::set_hook(previous_hook);
    for (_, layers) in outcome.detections.values_mut() {
        layers.sort();
    }
    outcome
}

/// Replays a (possibly corrupted) schedule on bare [`Peg`]s and returns the
/// first dynamic oracle that rejects it, or `None` when the replay is
/// indistinguishable from correct.
fn replay_catches(schedule: &ScheduledMatrix, matrix: &CooMatrix) -> Option<CaughtBy> {
    let x: Vec<f32> = (0..matrix.cols())
        .map(|i| ((i as f32) * 0.61).cos().mul_add(3.0, 3.5))
        .collect();
    let replay = catch_unwind(AssertUnwindSafe(|| bare_replay(schedule, &x)));
    let (y, mac_ops, hazards) = match replay {
        Err(_) | Ok(Err(_)) => return Some(CaughtBy::DynamicModel),
        Ok(Ok(r)) => r,
    };
    if hazards > 0 {
        return Some(CaughtBy::DynamicModel);
    }
    if mac_ops != matrix.nnz() as u64 {
        return Some(CaughtBy::DynamicMetamorphic);
    }
    let want = reference::spmv(matrix, &x);
    let scales = row_scales(matrix, &x);
    if compare(&want, &y, &scales, &UlpTolerance::default()).is_empty() {
        None
    } else {
        Some(CaughtBy::DynamicNumeric)
    }
}

/// Drives one [`Peg`] per channel through the schedule grid and merges the
/// outputs with the Rearrange Unit's formula
/// `y[row] = pvt[c][l][r] + Σ_hop shared[(c+C−hop)%C][(hop−1)·P + l][r]`.
fn bare_replay(
    schedule: &ScheduledMatrix,
    x: &[f32],
) -> Result<(Vec<f32>, u64, u64), chason_sim::SimError> {
    let cfg = &schedule.config;
    let rows_per_pe = schedule.rows.div_ceil(cfg.total_pes()).max(1);
    let scug = cfg.pes_per_channel * cfg.migration_hops;
    let mut pegs = Vec::with_capacity(cfg.channels);
    for c in 0..cfg.channels {
        let mut peg = Peg::new(c, cfg.pes_per_channel, x.len().max(1), rows_per_pe, scug)?;
        peg.load_x(x);
        pegs.push(peg);
    }
    for ch in &schedule.channels {
        let peg = &mut pegs[ch.channel];
        for (cycle, slots) in ch.grid.iter().enumerate() {
            peg.consume_cycle_at(slots, cfg, Some(cycle as u64))?;
        }
    }
    let mac_ops: u64 = pegs.iter().map(Peg::mac_ops).sum();
    let hazards: u64 = pegs.iter().map(Peg::hazards).sum();
    let outputs: Vec<_> = pegs.iter().map(Peg::reduce).collect();

    let channels = cfg.channels;
    let pes = cfg.pes_per_channel;
    let mut y = vec![0.0f32; schedule.rows];
    for (row, out) in y.iter_mut().enumerate() {
        let c = cfg.channel_for_row(row);
        let l = cfg.lane_for_row(row);
        let r = cfg.local_row(row);
        let mut acc = outputs[c].pvt[l].get(r).copied().unwrap_or(0.0);
        if channels >= 2 {
            for hop in 1..=cfg.migration_hops.min(channels - 1) {
                let holder = (c + channels - hop) % channels;
                let bank = (hop - 1) * pes + l;
                if let Some(sh) = outputs[holder].shared.get(bank) {
                    acc += sh.get(r).copied().unwrap_or(0.0);
                }
            }
        }
        *out = acc;
    }
    Ok((y, mac_ops, hazards))
}

// ---------------------------------------------------------------------------
// Delta-splice fuzzing: random insert/delete/revalue batches against the
// corpus pool, spliced into cached plans, replayed on bare PEGs.
// ---------------------------------------------------------------------------

/// One delta-splice iteration that failed an oracle.
#[derive(Debug, Clone)]
pub struct DeltaEscape {
    /// Iteration index (reproduce with the same seed).
    pub iteration: u64,
    /// Shape of the delta batch involved.
    pub kind: DeltaKind,
    /// Name of the pool matrix involved.
    pub matrix: String,
    /// Which oracle failed and how.
    pub detail: String,
    /// The matrix itself, for minimization / `.mtx` artifact export.
    pub source: CooMatrix,
}

/// Per-delta-kind tallies of a [`fuzz_deltas`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaKindStats {
    /// Delta batches of this kind generated and spliced.
    pub applied: u64,
    /// Splices bit-identical to a from-scratch plan.
    pub equivalent: u64,
    /// Spliced plans whose bare-PEG replay matched the reference SpMV of
    /// the updated matrix (MAC count and numerics, zero hazards).
    pub replay_clean: u64,
}

/// Aggregate result of a delta-splice fuzz run.
#[derive(Debug, Clone, Default)]
pub struct DeltaFuzzOutcome {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations where no valid delta could be generated.
    pub skipped: u64,
    /// `delta kind -> tallies`.
    pub per_kind: BTreeMap<&'static str, DeltaKindStats>,
    /// Iterations that failed the equivalence or replay oracle.
    pub escapes: Vec<DeltaEscape>,
}

impl DeltaFuzzOutcome {
    /// True when every splice was equivalent and replayed clean.
    pub fn is_clean(&self) -> bool {
        self.escapes.is_empty()
    }

    /// Whether every delta kind was actually exercised.
    pub fn covered_all_kinds(&self) -> bool {
        DeltaKind::ALL
            .iter()
            .all(|k| self.per_kind.get(k.name()).is_some_and(|s| s.applied > 0))
    }

    /// Renders the per-delta-kind detection/equivalence table.
    pub fn equivalence_table(&self) -> String {
        let mut out = String::from(
            "delta kind  applied  spliced==scratch  replay clean\n\
             ----------  -------  ----------------  ------------\n",
        );
        for kind in DeltaKind::ALL {
            let stats = self.per_kind.get(kind.name()).copied().unwrap_or_default();
            out.push_str(&format!(
                "{:<10}  {:>7}  {:>16}  {:>12}\n",
                kind.name(),
                stats.applied,
                stats.equivalent,
                stats.replay_clean
            ));
        }
        out
    }
}

/// Runs `iterations` delta-splice fuzz cycles from `seed`.
///
/// Each iteration draws a pool matrix, a toy scheduler geometry, and a
/// narrow column window (so the small matrices span several windows and
/// splices are genuinely partial), generates a random valid delta of the
/// cycled kind, splices it into a cached plan, and checks two oracles:
///
/// * **equivalence** — the spliced plan is bit-identical to planning the
///   updated matrix from scratch;
/// * **replay** — driving the spliced plan's window schedules on bare
///   [`Peg`]s (summing the per-window outputs) reproduces the reference
///   SpMV of the *updated* matrix: one MAC per non-zero, zero pipeline
///   hazards, numerics within the default [`UlpTolerance`].
///
/// The bare replay matters for the same reason it does in [`fuzz`]: the
/// engines re-verify plans in debug builds, so only a from-scratch PEG
/// drive can show that a spliced schedule *executes* correctly rather
/// than merely passing the static checker.
pub fn fuzz_deltas(seed: u64, iterations: u64) -> DeltaFuzzOutcome {
    let pool = pool();
    let mut rng = SplitMix64(seed);
    let mut outcome = DeltaFuzzOutcome::default();
    for i in 0..iterations {
        // Cycle the kinds so all four are exercised even in short runs.
        let kind = DeltaKind::ALL[(i % DeltaKind::ALL.len() as u64) as usize];
        let (name, matrix) = &pool[rng.pick(pool.len())];
        let sched = SchedulerConfig::toy(2 + rng.pick(3), 2 + rng.pick(3), [2, 4, 6][rng.pick(3)]);
        let window = [16, 32][rng.pick(2)];
        outcome.iterations += 1;

        let Some(delta) = random_delta(matrix, kind, &mut rng) else {
            outcome.skipped += 1;
            continue;
        };
        let escape = |detail: String, outcome: &mut DeltaFuzzOutcome| {
            outcome.escapes.push(DeltaEscape {
                iteration: i,
                kind,
                matrix: name.clone(),
                detail,
                source: matrix.clone(),
            });
        };

        let engine = ChasonEngine::new(AcceleratorConfig {
            sched,
            window,
            ..AcceleratorConfig::chason()
        });
        let entry = outcome.per_kind.entry(kind.name()).or_default();
        entry.applied += 1;
        let (updated, spliced) = match splice(&engine, matrix, &delta) {
            Ok(pair) => pair,
            Err(detail) => {
                escape(detail, &mut outcome);
                continue;
            }
        };

        // Oracle 1: spliced ≡ scratch, bit for bit.
        match engine.plan(&updated) {
            Ok(scratch) if spliced == scratch => {
                if let Some(entry) = outcome.per_kind.get_mut(kind.name()) {
                    entry.equivalent += 1;
                }
            }
            Ok(_) => {
                escape(
                    "spliced plan diverges from scratch plan".to_string(),
                    &mut outcome,
                );
                continue;
            }
            Err(e) => {
                escape(format!("scratch planning failed: {e}"), &mut outcome);
                continue;
            }
        }

        // Oracle 2: bare-PEG replay of the spliced plan.
        match replay_spliced(&spliced, &updated) {
            Ok(()) => {
                if let Some(entry) = outcome.per_kind.get_mut(kind.name()) {
                    entry.replay_clean += 1;
                }
            }
            Err(detail) => escape(detail, &mut outcome),
        }
    }
    outcome
}

/// Splices `delta` into a fresh plan of `matrix`, returning the updated
/// matrix and the spliced plan (or a description of the failure).
fn splice(
    engine: &ChasonEngine,
    matrix: &CooMatrix,
    delta: &chason_sparse::MatrixDelta,
) -> Result<(CooMatrix, chason_core::plan::SpmvPlan), String> {
    let updated = delta
        .apply(matrix)
        .map_err(|e| format!("generated delta failed to apply: {e}"))?;
    let mut spliced = engine
        .plan(matrix)
        .map_err(|e| format!("base planning failed: {e}"))?;
    engine
        .replan_delta(&mut spliced, &updated, delta)
        .map_err(|e| format!("replan_delta rejected a valid delta: {e}"))?;
    Ok((updated, spliced))
}

/// Replays every window schedule of a (single-pass) spliced plan on bare
/// [`Peg`]s, sums the per-window outputs, and holds the result against the
/// reference SpMV of the updated matrix.
fn replay_spliced(plan: &chason_core::plan::SpmvPlan, updated: &CooMatrix) -> Result<(), String> {
    let [pass] = plan.passes.as_slice() else {
        // Pool matrices are far below the partial-sum capacity; more than
        // one pass here means the skeleton itself is wrong.
        return Err(format!(
            "expected a single pass, found {}",
            plan.passes.len()
        ));
    };
    let x: Vec<f32> = (0..updated.cols())
        .map(|i| ((i as f32) * 0.61).cos().mul_add(3.0, 3.5))
        .collect();
    let mut y = vec![0.0f32; plan.rows];
    let mut mac_ops = 0u64;
    for w in &pass.windows {
        // Window schedules index columns window-locally; feed each the
        // matching x slice, exactly as the engines reload between windows.
        let (wy, wmac, hazards) = bare_replay(&w.schedule, &x[w.col_start..w.col_end])
            .map_err(|e| format!("bare replay errored: {e}"))?;
        if hazards > 0 {
            return Err(format!("replay observed {hazards} pipeline hazards"));
        }
        mac_ops += wmac;
        for (acc, v) in y.iter_mut().zip(wy) {
            *acc += v;
        }
    }
    if mac_ops != updated.nnz() as u64 {
        return Err(format!(
            "replay performed {mac_ops} MACs for {} non-zeros",
            updated.nnz()
        ));
    }
    let want = reference::spmv(updated, &x);
    let scales = row_scales(updated, &x);
    let diverging = compare(&want, &y, &scales, &UlpTolerance::default());
    if let Some((i, w, g)) = diverging.first() {
        return Err(format!(
            "replay y[{i}] = {g} vs reference {w} beyond tolerance"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedules_replay_clean() {
        for (name, matrix) in pool() {
            let config = SchedulerConfig::toy(3, 3, 4);
            let schedule = Crhcs::new().schedule(&matrix, &config);
            assert_eq!(
                replay_catches(&schedule, &matrix),
                None,
                "false positive on uncorrupted {name}"
            );
        }
    }

    #[test]
    fn fuzz_is_deterministic() {
        let a = fuzz(7, 20);
        let b = fuzz(7, 20);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.escapes.len(), b.escapes.len());
    }

    #[test]
    fn every_corruption_is_caught_by_some_layer() {
        let outcome = fuzz(1, 40);
        assert!(
            outcome.covered_all_corruptions(),
            "{:?}",
            outcome.detections
        );
        assert!(
            outcome.is_clean(),
            "escapes: {:?}\n{}",
            outcome
                .escapes
                .iter()
                .map(|e| (e.corruption.name(), e.matrix.as_str(), e.iteration))
                .collect::<Vec<_>>(),
            outcome.detection_table()
        );
        // The static checker alone must catch every corruption too — the
        // dynamic layer is defence in depth, not a crutch.
        for c in Corruption::ALL {
            let (_, layers) = &outcome.detections[c.name()];
            assert!(
                layers.contains(&CaughtBy::Static),
                "{} escaped the static checker: {layers:?}",
                c.name()
            );
        }
    }

    #[test]
    fn detection_table_lists_all_ten() {
        let table = fuzz(3, 30).detection_table();
        for c in Corruption::ALL {
            assert!(table.contains(c.name()), "{table}");
        }
    }

    #[test]
    fn delta_fuzz_is_deterministic() {
        let a = fuzz_deltas(11, 16);
        let b = fuzz_deltas(11, 16);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.per_kind, b.per_kind);
        assert_eq!(a.escapes.len(), b.escapes.len());
    }

    #[test]
    fn every_delta_kind_splices_equivalent_and_replays_clean() {
        let outcome = fuzz_deltas(5, 32);
        assert!(outcome.covered_all_kinds(), "{:?}", outcome.per_kind);
        assert!(
            outcome.is_clean(),
            "escapes: {:?}\n{}",
            outcome
                .escapes
                .iter()
                .map(|e| (
                    e.kind.name(),
                    e.matrix.as_str(),
                    e.iteration,
                    e.detail.as_str()
                ))
                .collect::<Vec<_>>(),
            outcome.equivalence_table()
        );
        // Every applied delta must have passed *both* oracles, not merely
        // avoided escaping.
        for (kind, stats) in &outcome.per_kind {
            assert_eq!(stats.equivalent, stats.applied, "{kind}: {stats:?}");
            assert_eq!(stats.replay_clean, stats.applied, "{kind}: {stats:?}");
        }
    }

    #[test]
    fn equivalence_table_lists_all_kinds() {
        let table = fuzz_deltas(9, 12).equivalence_table();
        for kind in DeltaKind::ALL {
            assert!(table.contains(kind.name()), "{table}");
        }
    }
}
