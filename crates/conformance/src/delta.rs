//! Delta-splice oracles: a spliced plan must be indistinguishable from a
//! plan built from scratch.
//!
//! Dynamic matrices arrive as [`MatrixDelta`] batches (inserts at vacant
//! coordinates, deletions and revaluations of existing entries). The
//! engines splice a delta into a cached [`SpmvPlan`] by re-scheduling only
//! the column windows the delta's footprint dirties
//! (`PlanningEngine::replan_delta`). This module proves that splicing is
//! *sound*, per corpus case × delta kind × engine:
//!
//! 1. **Splice ≡ scratch** — the spliced plan is *bit-identical*
//!    (`SpmvPlan: PartialEq`) to planning the updated matrix from scratch.
//!    Both engines' schedulers are deterministic and the pass/window
//!    skeleton depends only on the matrix shape, which deltas never
//!    change, so full structural equality is the oracle — not an
//!    approximation of it.
//! 2. **Numeric** — replaying the spliced plan reproduces the CPU
//!    reference SpMV of the *updated* matrix within the ULP tolerance.
//! 3. **Conservation** — the replay's cycle report agrees with the
//!    spliced plan (stalls, window count) and performs exactly one MAC
//!    per updated-matrix non-zero.
//! 4. **Static** — `chason-verify`'s full plan rule set (P001 and
//!    friends, plus fingerprint/conservation against the updated source)
//!    passes on every spliced plan.
//!
//! Deltas are generated deterministically from a [`SplitMix64`] stream, so
//! a violation is reproducible from `(seed, case, kind, round)` alone.

use crate::corpus::CorpusCase;
use crate::harness::{probe_vector, Violation};
use crate::ulp::{compare, row_scales, UlpTolerance};
use chason_baselines::reference;
use chason_core::plan::SpmvPlan;
use chason_core::schedule::SchedulerConfig;
use chason_sim::{AcceleratorConfig, ChasonEngine, PlanningEngine, SerpensEngine};
use chason_sparse::{CooMatrix, MatrixDelta};
use chason_verify::verify_plan;
use std::collections::BTreeSet;

/// The structural shape of a generated delta batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaKind {
    /// Only insertions at vacant coordinates.
    Insert,
    /// Only deletions of existing entries.
    Delete,
    /// Only revaluations of existing entries.
    Revalue,
    /// One batch mixing all three operation kinds.
    Mixed,
}

impl DeltaKind {
    /// Every kind, in table order.
    pub const ALL: [DeltaKind; 4] = [
        DeltaKind::Insert,
        DeltaKind::Delete,
        DeltaKind::Revalue,
        DeltaKind::Mixed,
    ];

    /// Short stable label for tables and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            DeltaKind::Insert => "insert",
            DeltaKind::Delete => "delete",
            DeltaKind::Revalue => "revalue",
            DeltaKind::Mixed => "mixed",
        }
    }
}

/// Options controlling a delta-oracle run.
#[derive(Debug, Clone)]
pub struct DeltaOptions {
    /// Scheduler geometry both engines run under.
    pub sched: SchedulerConfig,
    /// Column-window width override (`None` keeps the engines' paper
    /// `W = 8192`). Small corpus matrices fit one paper window, so tests
    /// shrink `W` to force genuine partial splices.
    pub window: Option<usize>,
    /// Numeric tolerance for replay-vs-reference comparisons.
    pub tol: UlpTolerance,
    /// Independent delta batches generated per case × kind.
    pub deltas_per_case: usize,
    /// Seed for the deterministic delta generator.
    pub seed: u64,
}

impl Default for DeltaOptions {
    fn default() -> Self {
        DeltaOptions {
            sched: SchedulerConfig::paper(),
            window: None,
            tol: UlpTolerance::default(),
            deltas_per_case: 2,
            seed: 0xC0FF_EE00,
        }
    }
}

/// Aggregate result of a delta-oracle run.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Case × kind × engine checks executed.
    pub checks: usize,
    /// Delta batches generated and spliced.
    pub deltas: usize,
    /// Every violation found, in corpus order.
    pub violations: Vec<Violation>,
}

impl DeltaReport {
    /// True when every spliced plan passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "delta oracle: {} delta(s), {} splice check(s), {} violation(s)",
            self.deltas,
            self.checks,
            self.violations.len()
        )
    }
}

/// SplitMix64 — tiny, deterministic, and independent of the OS. The only
/// randomness the delta generator and both fuzzers use, so every run is
/// reproducible from its seed alone.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, bound)` (`0` when `bound == 0`).
    pub fn pick(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// A finite, non-zero, schedulable value in roughly `±[0.25, 4.25]`.
    fn value(&mut self) -> f32 {
        let magnitude = 0.25 + (self.next_u64() % 1_000) as f32 / 250.0;
        if self.next_u64().is_multiple_of(2) {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// Generates a random *valid* delta of the given kind against `matrix`:
/// every value finite and non-zero, inserts at vacant coordinates,
/// deletes/revalues at existing ones, each coordinate touched at most
/// once. Returns `None` when the matrix cannot host the kind (no entries
/// to delete, no vacancy to fill) — never the case on the corpus.
pub fn random_delta(
    matrix: &CooMatrix,
    kind: DeltaKind,
    rng: &mut SplitMix64,
) -> Option<MatrixDelta> {
    let triplets = matrix.triplets();
    let occupied: BTreeSet<(usize, usize)> = triplets.iter().map(|&(r, c, _)| (r, c)).collect();
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut delta = MatrixDelta::for_matrix(matrix);

    // 1–4 operations per selected op kind keeps batches small relative to
    // the corpus matrices (so deletion can never empty one) while still
    // exercising multi-op batches.
    let ops = 1 + rng.pick(4);
    let (inserts, deletes, revalues) = match kind {
        DeltaKind::Insert => (ops, 0, 0),
        DeltaKind::Delete => (0, ops, 0),
        DeltaKind::Revalue => (0, 0, ops),
        DeltaKind::Mixed => (1 + rng.pick(2), 1 + rng.pick(2), 1 + rng.pick(2)),
    };

    for _ in 0..inserts {
        let mut placed = false;
        for _ in 0..64 {
            let coord = (rng.pick(matrix.rows()), rng.pick(matrix.cols()));
            if occupied.contains(&coord) || used.contains(&coord) {
                continue;
            }
            let value = rng.value();
            #[allow(clippy::expect_used)] // coord proven vacant and unused above
            delta
                .push_insert(coord.0, coord.1, value)
                .expect("vacant coordinate must be insertable");
            used.insert(coord);
            placed = true;
            break;
        }
        if !placed {
            return None; // matrix too dense to find a vacancy by sampling
        }
    }
    for _ in 0..deletes.min(triplets.len().saturating_sub(used.len())) {
        let Some((r, c)) = pick_existing(triplets, &used, rng) else {
            break;
        };
        #[allow(clippy::expect_used)] // coordinate taken from the triplet list
        delta
            .push_delete(r, c)
            .expect("existing coordinate must be deletable");
        used.insert((r, c));
    }
    for _ in 0..revalues.min(triplets.len().saturating_sub(used.len())) {
        let Some((r, c)) = pick_existing(triplets, &used, rng) else {
            break;
        };
        let value = rng.value();
        #[allow(clippy::expect_used)] // coordinate taken from the triplet list
        delta
            .push_revalue(r, c, value)
            .expect("existing coordinate must be revaluable");
        used.insert((r, c));
    }

    if delta.is_empty() {
        None
    } else {
        Some(delta)
    }
}

/// Picks an existing entry's coordinate not yet used in this batch.
fn pick_existing(
    triplets: &[(usize, usize, f32)],
    used: &BTreeSet<(usize, usize)>,
    rng: &mut SplitMix64,
) -> Option<(usize, usize)> {
    for _ in 0..64 {
        let (r, c, _) = triplets[rng.pick(triplets.len())];
        if !used.contains(&(r, c)) {
            return Some((r, c));
        }
    }
    None
}

fn push(violations: &mut Vec<Violation>, case: &str, oracle: &'static str, detail: String) {
    violations.push(Violation {
        case: case.to_string(),
        oracle,
        detail,
    });
}

/// Runs all four oracles for one `(engine, base plan, delta)` triple.
#[allow(clippy::too_many_arguments)] // internal fan-in of precomputed state
fn check_engine<E: PlanningEngine>(
    engine_name: &'static str,
    engine: &E,
    case_name: &str,
    kind: DeltaKind,
    base_plan: &SpmvPlan,
    delta: &MatrixDelta,
    updated: &CooMatrix,
    tol: &UlpTolerance,
    violations: &mut Vec<Violation>,
) {
    let tag = format!("{engine_name}/{}", kind.name());

    // Splice the delta into a copy of the cached base plan.
    let mut spliced = base_plan.clone();
    let report = match engine.replan_delta(&mut spliced, updated, delta) {
        Ok(report) => report,
        Err(e) => {
            push(
                violations,
                case_name,
                "splice",
                format!("{tag}: replan_delta rejected a valid delta: {e}"),
            );
            return;
        }
    };

    // Oracle 1: bit-identical to a from-scratch plan of the updated matrix.
    match engine.plan(updated) {
        Ok(scratch) => {
            if spliced != scratch {
                push(
                    violations,
                    case_name,
                    "splice",
                    format!(
                        "{tag}: spliced plan diverges from scratch plan \
                         ({}/{} windows replanned)",
                        report.windows_replanned, report.windows_total
                    ),
                );
                return; // downstream oracles would only echo the divergence
            }
        }
        Err(e) => {
            push(
                violations,
                case_name,
                "splice",
                format!("{tag}: scratch planning of the updated matrix failed: {e}"),
            );
            return;
        }
    }

    // Replan-report bookkeeping must describe the plan it produced.
    if report.windows_total != spliced.window_count()
        || report.windows_replanned > report.windows_total
        || report.nnz_after != updated.nnz()
    {
        push(
            violations,
            case_name,
            "metamorphic",
            format!(
                "{tag}: replan report inconsistent with spliced plan \
                 (replanned {}/{} windows, nnz_after {} vs {})",
                report.windows_replanned,
                report.windows_total,
                report.nnz_after,
                updated.nnz()
            ),
        );
    }

    // Oracle 2: replaying the spliced plan matches the CPU reference on
    // the updated matrix.
    let x = probe_vector(updated.cols());
    let exec = match engine.run_planned(&spliced, &x) {
        Ok(exec) => exec,
        Err(e) => {
            push(
                violations,
                case_name,
                "execution",
                format!("{tag}: spliced plan failed to replay: {e}"),
            );
            return;
        }
    };
    let want = reference::spmv(updated, &x);
    let scales = row_scales(updated, &x);
    for (i, w, g) in compare(&want, &exec.y, &scales, tol) {
        push(
            violations,
            case_name,
            "numeric",
            format!("{tag}: y[{i}] = {g} vs reference {w} beyond tolerance"),
        );
    }

    // Oracle 3: cycle-report conservation between plan and replay.
    if exec.stalls != spliced.stalls() {
        push(
            violations,
            case_name,
            "metamorphic",
            format!(
                "{tag}: replay stalls {} disagree with spliced plan {}",
                exec.stalls,
                spliced.stalls()
            ),
        );
    }
    if exec.windows != spliced.window_count() {
        push(
            violations,
            case_name,
            "metamorphic",
            format!(
                "{tag}: replay processed {} windows, plan holds {}",
                exec.windows,
                spliced.window_count()
            ),
        );
    }
    if exec.mac_ops != updated.nnz() as u64 {
        push(
            violations,
            case_name,
            "metamorphic",
            format!(
                "{tag}: replay performed {} MACs for {} non-zeros",
                exec.mac_ops,
                updated.nnz()
            ),
        );
    }

    // Oracle 4: the static plan checker (P001 and the full rule set, plus
    // fingerprint/conservation against the updated source) stays clean.
    let verdict = verify_plan(&spliced, Some(updated));
    if verdict.has_errors() {
        let first = verdict
            .diagnostics()
            .iter()
            .map(|d| d.render())
            .next()
            .unwrap_or_default();
        push(
            violations,
            case_name,
            "static",
            format!("{tag}: spliced plan fails verification: {first}"),
        );
    }
}

/// Runs the delta oracles over an explicit case list.
pub fn run_delta_cases(cases: &[CorpusCase], options: &DeltaOptions) -> DeltaReport {
    let mut chason_cfg = AcceleratorConfig::chason();
    chason_cfg.sched = options.sched;
    let mut serpens_cfg = AcceleratorConfig::serpens();
    serpens_cfg.sched = options.sched;
    if let Some(w) = options.window {
        chason_cfg.window = w;
        serpens_cfg.window = w;
    }
    let chason = ChasonEngine::new(chason_cfg);
    let serpens = SerpensEngine::new(serpens_cfg);

    let mut report = DeltaReport::default();
    for case in cases {
        let m = &case.matrix;
        // One base plan per engine, spliced repeatedly — exactly how a
        // serving cache reuses a resident plan across updates.
        let (chason_base, serpens_base) = match (chason.plan(m), serpens.plan(m)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                push(
                    &mut report.violations,
                    &case.name,
                    "execution",
                    format!("base planning failed: {e}"),
                );
                continue;
            }
        };
        for round in 0..options.deltas_per_case {
            for kind in DeltaKind::ALL {
                // Seed from (global seed, case, kind, round) so any single
                // combination reproduces in isolation.
                let mut rng = SplitMix64(
                    options
                        .seed
                        .wrapping_add(fingerprint(&case.name))
                        .wrapping_add((round as u64) << 8)
                        .wrapping_add(kind as u64 + 1),
                );
                let Some(delta) = random_delta(m, kind, &mut rng) else {
                    continue;
                };
                let updated = match delta.apply(m) {
                    Ok(updated) => updated,
                    Err(e) => {
                        push(
                            &mut report.violations,
                            &case.name,
                            "splice",
                            format!("generated delta failed to apply: {e}"),
                        );
                        continue;
                    }
                };
                report.deltas += 1;
                check_engine(
                    "chason",
                    &chason,
                    &case.name,
                    kind,
                    &chason_base,
                    &delta,
                    &updated,
                    &options.tol,
                    &mut report.violations,
                );
                report.checks += 1;
                check_engine(
                    "serpens",
                    &serpens,
                    &case.name,
                    kind,
                    &serpens_base,
                    &delta,
                    &updated,
                    &options.tol,
                    &mut report.violations,
                );
                report.checks += 1;
            }
        }
    }
    report
}

/// Tiny FNV-1a so case names perturb the per-combination seed.
fn fingerprint(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{corpus, CorpusSize};

    /// Toy geometry + a narrow window so the small corpus matrices span
    /// several column windows — splices must then be genuinely partial.
    fn toy_options() -> DeltaOptions {
        DeltaOptions {
            sched: SchedulerConfig::toy(4, 4, 6),
            window: Some(32),
            deltas_per_case: 2,
            ..DeltaOptions::default()
        }
    }

    #[test]
    fn generated_deltas_match_their_kind_and_apply_cleanly() {
        let cases = corpus(CorpusSize::Small);
        let m = &cases[0].matrix;
        let mut rng = SplitMix64(99);
        for kind in DeltaKind::ALL {
            let delta = random_delta(m, kind, &mut rng).expect("corpus case hosts every kind");
            match kind {
                DeltaKind::Insert => {
                    assert!(!delta.inserts().is_empty());
                    assert!(delta.deletes().is_empty() && delta.revalues().is_empty());
                }
                DeltaKind::Delete => {
                    assert!(!delta.deletes().is_empty());
                    assert!(delta.inserts().is_empty() && delta.revalues().is_empty());
                }
                DeltaKind::Revalue => {
                    assert!(!delta.revalues().is_empty());
                    assert!(delta.inserts().is_empty() && delta.deletes().is_empty());
                }
                DeltaKind::Mixed => {
                    assert!(!delta.inserts().is_empty());
                    assert!(!delta.deletes().is_empty());
                    assert!(!delta.revalues().is_empty());
                }
            }
            for v in delta.written_values() {
                assert!(v.is_finite() && v != 0.0, "unschedulable value {v}");
            }
            let updated = delta.apply(m).expect("generated delta applies");
            assert_eq!(
                updated.nnz() as isize,
                m.nnz() as isize + delta.nnz_change()
            );
        }
    }

    #[test]
    fn corpus_splices_are_clean_under_multi_window_toy_geometry() {
        let cases = corpus(CorpusSize::Small);
        let report = run_delta_cases(&cases[..4], &toy_options());
        assert_eq!(report.deltas, 4 * 2 * DeltaKind::ALL.len());
        assert_eq!(report.checks, report.deltas * 2);
        assert!(
            report.is_clean(),
            "{}\n{}",
            report.summary(),
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn paper_window_splices_are_clean_too() {
        // Full-width W = 8192: every small case is a single window, so the
        // splice degenerates to a full replan — it must still be
        // bit-identical and verifiable.
        let cases = corpus(CorpusSize::Small);
        let options = DeltaOptions {
            deltas_per_case: 1,
            ..DeltaOptions::default()
        };
        let report = run_delta_cases(&cases[..3], &options);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn delta_runs_are_deterministic() {
        let cases = corpus(CorpusSize::Small);
        let a = run_delta_cases(&cases[..2], &toy_options());
        let b = run_delta_cases(&cases[..2], &toy_options());
        assert_eq!(a.deltas, b.deltas);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violations.len(), b.violations.len());
    }
}
