//! Golden snapshot files with a blessed-update flow.
//!
//! A golden check compares freshly rendered content byte-for-byte against
//! a file committed under `tests/golden/`. Setting `UPDATE_GOLDEN=1`
//! regenerates the file instead of comparing — the *bless* flow — after
//! which `git diff` shows exactly what changed and CI's dirty-tree check
//! rejects any drift that was not blessed and committed.

use std::fs;
use std::path::Path;

/// Whether the current process was asked to bless (regenerate) goldens.
pub fn blessing() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Checks `content` against the golden file at `path`, or rewrites the
/// file when `UPDATE_GOLDEN=1`.
///
/// # Errors
///
/// Returns a human-readable message when the golden is missing, stale, or
/// unwritable. A mismatch names the first differing line.
pub fn check_or_bless(path: &Path, content: &str) -> Result<(), String> {
    check_or_bless_bytes(path, content.as_bytes())
}

/// Byte-level variant of [`check_or_bless`] for binary goldens.
///
/// # Errors
///
/// As [`check_or_bless`].
pub fn check_or_bless_bytes(path: &Path, content: &[u8]) -> Result<(), String> {
    if blessing() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
        return fs::write(path, content).map_err(|e| format!("cannot bless {path:?}: {e}"));
    }
    let existing = fs::read(path).map_err(|e| {
        format!("missing golden {path:?} ({e}); run with UPDATE_GOLDEN=1 to bless it")
    })?;
    if existing == content {
        return Ok(());
    }
    // Locate the first differing line for text goldens; fall back to a
    // byte offset for binary content.
    let detail = match (std::str::from_utf8(&existing), std::str::from_utf8(content)) {
        (Ok(old), Ok(new)) => {
            let line = old
                .lines()
                .zip(new.lines())
                .position(|(a, b)| a != b)
                .map_or_else(
                    || old.lines().count().min(new.lines().count()) + 1,
                    |i| i + 1,
                );
            format!("first difference at line {line}")
        }
        _ => {
            let offset = existing
                .iter()
                .zip(content.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| existing.len().min(content.len()));
            format!("first difference at byte {offset}")
        }
    };
    Err(format!(
        "golden {path:?} is stale ({detail}); if the change is intended, re-bless with \
         UPDATE_GOLDEN=1 and commit the diff"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chason-golden-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn matching_golden_passes_and_stale_golden_names_the_line() {
        let path = temp("text.golden");
        fs::write(&path, "a\nb\nc\n").unwrap();
        assert!(check_or_bless(&path, "a\nb\nc\n").is_ok());
        let err = check_or_bless(&path, "a\nX\nc\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("UPDATE_GOLDEN"), "{err}");
    }

    #[test]
    fn missing_golden_mentions_the_bless_flow() {
        let path = temp("missing.golden");
        let _ = fs::remove_file(&path);
        let err = check_or_bless(&path, "x").unwrap_err();
        assert!(err.contains("UPDATE_GOLDEN=1"), "{err}");
    }

    #[test]
    fn binary_mismatch_reports_a_byte_offset() {
        let path = temp("bin.golden");
        fs::write(&path, [0u8, 1, 2, 255]).unwrap();
        let err = check_or_bless_bytes(&path, &[0u8, 1, 9, 255]).unwrap_err();
        assert!(err.contains("byte 2"), "{err}");
    }
}
