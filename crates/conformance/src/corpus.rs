//! The seeded conformance corpus: every `chason-sparse` generator family
//! crossed with a size grid, plus on-disk `.mtx` fixtures.
//!
//! Cases are built from explicit seeds, so the corpus is identical on
//! every machine and every run — a prerequisite for the golden cycle
//! traces, which snapshot the exact cycle accounting of these matrices.

use chason_sparse::generators::{
    arrow_with_nnz, banded_with_nnz, block_diagonal, diagonal, mycielskian, optimal_control,
    power_law, rmat, uniform_random, OptimalControlConfig, RmatProbabilities,
};
use chason_sparse::market::read_matrix_market;
use chason_sparse::CooMatrix;
use std::fs::File;
use std::io;
use std::path::Path;

/// Which slice of the corpus to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusSize {
    /// One modest matrix per generator family — fast enough for every
    /// push (and for `cargo test` on one core).
    Small,
    /// The small grid plus a larger size per family; the scheduled CI job
    /// runs this tier.
    Extended,
}

impl CorpusSize {
    /// Parses `"small"` / `"extended"`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "small" => Some(CorpusSize::Small),
            "extended" => Some(CorpusSize::Extended),
            _ => None,
        }
    }
}

/// One named matrix of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable case name (`family/rowsxcols`), used in reports and golden
    /// trace lines.
    pub name: String,
    /// The matrix itself.
    pub matrix: CooMatrix,
}

impl CorpusCase {
    fn new(family: &str, matrix: CooMatrix) -> Self {
        CorpusCase {
            name: format!("{family}/{}x{}", matrix.rows(), matrix.cols()),
            matrix,
        }
    }
}

/// Builds the seeded corpus: every generator family × the size grid.
pub fn corpus(size: CorpusSize) -> Vec<CorpusCase> {
    let mut cases = vec![
        CorpusCase::new("uniform", uniform_random(96, 96, 700, 101)),
        CorpusCase::new("uniform-rect", uniform_random(64, 160, 500, 102)),
        CorpusCase::new("power-law", power_law(96, 96, 800, 1.8, 103)),
        CorpusCase::new("rmat", rmat(7, 600, RmatProbabilities::GRAPH500, 104)),
        CorpusCase::new("banded", banded_with_nnz(128, 6, 700, 105)),
        CorpusCase::new("diagonal", diagonal(80, 106)),
        CorpusCase::new("block-diagonal", block_diagonal(96, 12, 0.5, 107)),
        CorpusCase::new("mycielskian", mycielskian(6, 108)),
        CorpusCase::new(
            "optimal-control",
            optimal_control(OptimalControlConfig::small(), 109),
        ),
        CorpusCase::new("arrow", arrow_with_nnz(120, 4, 3, 800, 110)),
    ];
    if size == CorpusSize::Extended {
        cases.extend([
            CorpusCase::new("uniform", uniform_random(512, 512, 8_000, 201)),
            CorpusCase::new("power-law", power_law(512, 512, 10_000, 1.8, 202)),
            CorpusCase::new("rmat", rmat(9, 6_000, RmatProbabilities::GRAPH500, 203)),
            CorpusCase::new("banded", banded_with_nnz(768, 8, 9_000, 204)),
            CorpusCase::new("diagonal", diagonal(600, 205)),
            CorpusCase::new("block-diagonal", block_diagonal(512, 32, 0.4, 206)),
            CorpusCase::new("mycielskian", mycielskian(8, 207)),
            CorpusCase::new(
                "optimal-control",
                optimal_control(
                    OptimalControlConfig {
                        stages: 48,
                        vars_per_stage: 10,
                        ..OptimalControlConfig::small()
                    },
                    208,
                ),
            ),
            CorpusCase::new("arrow", arrow_with_nnz(640, 6, 4, 10_000, 209)),
        ]);
    }
    cases
}

/// Loads every `.mtx` file under `dir` (non-recursive) as extra corpus
/// cases, named after the file stem. Returns an empty list when the
/// directory does not exist.
///
/// # Errors
///
/// Propagates I/O and MatrixMarket parse failures for files that do exist.
pub fn load_fixtures(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let mut cases = Vec::new();
    if !dir.is_dir() {
        return Ok(cases);
    }
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mtx"))
        .collect();
    paths.sort();
    for path in paths {
        let matrix = read_matrix_market(File::open(&path)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "fixture".to_string());
        cases.push(CorpusCase {
            name: format!("fixture/{stem}"),
            matrix,
        });
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_covers_every_family_deterministically() {
        let a = corpus(CorpusSize::Small);
        let b = corpus(CorpusSize::Small);
        assert_eq!(a.len(), 10);
        for (ca, cb) in a.iter().zip(b.iter()) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.matrix, cb.matrix);
            assert!(ca.matrix.nnz() > 0, "{} is empty", ca.name);
        }
        let families: std::collections::BTreeSet<_> = a
            .iter()
            .map(|c| c.name.split('/').next().unwrap_or(""))
            .collect();
        assert!(families.len() >= 9, "{families:?}");
    }

    #[test]
    fn extended_corpus_is_a_superset() {
        let small = corpus(CorpusSize::Small);
        let extended = corpus(CorpusSize::Extended);
        assert!(extended.len() > small.len());
        for (s, e) in small.iter().zip(extended.iter()) {
            assert_eq!(s.name, e.name);
        }
    }

    #[test]
    fn missing_fixture_dir_is_empty_not_an_error() {
        let cases = load_fixtures(Path::new("/nonexistent/fixtures")).unwrap();
        assert!(cases.is_empty());
    }
}
