//! Units-in-the-last-place comparison for FP32 vectors.
//!
//! The engines and the CPU reference accumulate the same products in
//! different orders, so their outputs differ only by FP32 reassociation.
//! For well-conditioned sums that divergence is a handful of ULPs; when a
//! row's terms nearly cancel, the *relative* error of the tiny result can
//! be arbitrarily large even though every path is correct. The tolerance
//! therefore accepts a value when it is within `max_ulps` of the reference
//! **or** within an absolute bound proportional to the row's condition
//! scale `Σ |a_ij · x_j|` (the classic backward-error bound for
//! reassociated summation).

/// Tolerance for comparing two FP32 results of the same reassociated sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UlpTolerance {
    /// Maximum acceptable distance in units-in-the-last-place.
    pub max_ulps: u32,
    /// Relative factor applied to the row's condition scale for the
    /// cancellation fallback (`|a - b| ≤ rel_scale · Σ|terms|`).
    pub rel_scale: f32,
}

impl Default for UlpTolerance {
    fn default() -> Self {
        // 256 ULPs ≈ a relative error of 3e-5 — generous for reassociation
        // over the ≤ few-hundred-term rows the corpus produces, and far
        // below what any dropped or duplicated element causes.
        UlpTolerance {
            max_ulps: 256,
            rel_scale: 1e-4,
        }
    }
}

impl UlpTolerance {
    /// Whether `got` is acceptably close to `want`, given the row's
    /// condition scale `Σ |a_ij · x_j|`.
    pub fn accepts(&self, want: f32, got: f32, scale: f32) -> bool {
        if !want.is_finite() || !got.is_finite() {
            return false;
        }
        if want.to_bits() == got.to_bits() {
            return true;
        }
        ulp_distance(want, got) <= self.max_ulps || (want - got).abs() <= self.rel_scale * scale
    }
}

/// Distance between two finite `f32`s in units-in-the-last-place.
///
/// Uses the standard order-preserving mapping of IEEE-754 bit patterns to
/// a signed integer line, so the distance is well defined across zero
/// (`-0.0` and `+0.0` are 0 apart). Returns `u32::MAX` when either value
/// is NaN.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let to_ordered = |f: f32| {
        let bits = f.to_bits();
        if bits & 0x8000_0000 != 0 {
            -i64::from(bits & 0x7fff_ffff)
        } else {
            i64::from(bits)
        }
    };
    let d = (to_ordered(a) - to_ordered(b)).unsigned_abs();
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// The per-row condition scales `Σ_j |a_ij · x_j|` of one SpMV — the
/// denominators of the cancellation-aware fallback bound.
pub fn row_scales(matrix: &chason_sparse::CooMatrix, x: &[f32]) -> Vec<f32> {
    let mut scales = vec![0.0f32; matrix.rows()];
    for &(r, c, v) in matrix.iter() {
        scales[r] += (v * x[c]).abs();
    }
    scales
}

/// Compares a computed vector against the reference, returning the indices
/// (with values) the tolerance rejects.
pub fn compare(
    want: &[f32],
    got: &[f32],
    scales: &[f32],
    tol: &UlpTolerance,
) -> Vec<(usize, f32, f32)> {
    if want.len() != got.len() {
        // A length mismatch is reported as a rejection of index 0 with the
        // lengths encoded as values; callers check lengths first in
        // practice.
        return vec![(usize::MAX, want.len() as f32, got.len() as f32)];
    }
    want.iter()
        .zip(got.iter())
        .enumerate()
        .filter(|&(i, (&w, &g))| !tol.accepts(w, g, scales.get(i).copied().unwrap_or(0.0)))
        .map(|(i, (&w, &g))| (i, w, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_bits_are_zero_apart() {
        assert_eq!(ulp_distance(1.5, 1.5), 0);
        assert_eq!(ulp_distance(-0.0, 0.0), 0);
    }

    #[test]
    fn adjacent_floats_are_one_apart() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance(a, b), 1);
        let na = -1.0f32;
        let nb = f32::from_bits(na.to_bits() + 1); // toward -inf
        assert_eq!(ulp_distance(na, nb), 1);
    }

    #[test]
    fn distance_crosses_zero_smoothly() {
        let tiny = f32::from_bits(1); // smallest subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
    }

    #[test]
    fn nan_is_never_accepted() {
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        assert!(!UlpTolerance::default().accepts(f32::NAN, f32::NAN, 1.0));
    }

    #[test]
    fn cancellation_fallback_uses_the_row_scale() {
        let tol = UlpTolerance {
            max_ulps: 0,
            rel_scale: 1e-4,
        };
        // 1e-3 apart: far in ULPs of the tiny result, but small against a
        // row whose terms sum to ~100 in magnitude.
        assert!(tol.accepts(1e-4, 1e-4 + 1e-3, 100.0));
        assert!(!tol.accepts(1e-4, 1e-4 + 1e-3, 0.1));
    }

    #[test]
    fn compare_reports_offending_indices() {
        let want = [1.0f32, 2.0, 3.0];
        let mut got = want;
        got[1] = 2.5;
        let scales = [1.0f32, 2.0, 3.0];
        let bad = compare(&want, &got, &scales, &UlpTolerance::default());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 1);
    }
}
