//! `chason-conformance`: the differential testing harness.
//!
//! PR 2's `chason-verify` is a *static* checker: it proves a schedule obeys
//! the wire-format and scheduling rules without running it. This crate is
//! the *dynamic* half — it actually executes every path the workspace
//! offers for computing `y = A·x` and cross-checks them against each other
//! with three oracle kinds:
//!
//! 1. **Numeric equivalence** ([`ulp`]): every engine's output must match
//!    the CPU reference within an explicit ULP tolerance (with a
//!    cancellation-aware absolute fallback, since FP32 reassociation is the
//!    only legitimate source of divergence), and the threaded CPU kernels
//!    must match the serial kernel *bit for bit*.
//! 2. **Metamorphic cycle-report invariants** ([`harness`]): Chasoň's
//!    latency never exceeds Serpens' on the same matrix (CrHCS fills
//!    Serpens' stall slots — §4/Fig. 5), window cycle accounting is
//!    conserved between a plan and its execution, replaying a plan is
//!    idempotent, and planning is thread-count independent.
//! 3. **Golden snapshot traces** ([`golden`]): integer-only cycle traces
//!    committed under `tests/golden/`, byte-compared on every run and
//!    re-blessed with `UPDATE_GOLDEN=1`.
//!
//! On top sit two adversarial stages:
//!
//! * a deterministic schedule [`fuzz`]er that reuses the ten-corruption
//!   mutation library from `chason-verify` as fault injection: every
//!   injected corruption must be caught by the static checker or by a
//!   dynamic oracle, proving the two layers compose into a net with no
//!   holes; and
//! * the [`delta`] oracles for dynamic matrices: every spliced plan
//!   (`PlanningEngine::replan_delta`) must be bit-identical to a
//!   from-scratch plan of the updated matrix, replay to the reference
//!   SpMV, conserve its cycle report, and pass `chason-verify` — with a
//!   delta-splice fuzzer ([`fuzz_deltas`]) replaying spliced plans on
//!   bare PEGs across random insert/delete/revalue batches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod delta;
pub mod fuzz;
pub mod golden;
pub mod harness;
pub mod ulp;

pub use corpus::{corpus, load_fixtures, CorpusCase, CorpusSize};
pub use delta::{random_delta, run_delta_cases, DeltaKind, DeltaOptions, DeltaReport, SplitMix64};
pub use fuzz::{fuzz, fuzz_deltas, CaughtBy, DeltaFuzzOutcome, FuzzOutcome};
pub use harness::{run_case, CaseOutcome, HarnessOptions, Violation};
pub use ulp::UlpTolerance;

/// The aggregate result of running the differential harness over a corpus.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Cases executed.
    pub cases: usize,
    /// Execution paths compared across all cases.
    pub paths: usize,
    /// Every violation found, in corpus order.
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// True when every case passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "conformance: {} case(s), {} path comparison(s), {} violation(s)",
            self.cases,
            self.paths,
            self.violations.len()
        )
    }
}

/// Runs the full differential harness over the given corpus size.
///
/// This is the library entry behind `chason conformance`: build the seeded
/// corpus, run every case through every execution path, and collect all
/// oracle violations.
pub fn run_corpus(size: CorpusSize, options: &HarnessOptions) -> ConformanceReport {
    run_cases(&corpus(size), options)
}

/// Runs the differential harness over an explicit case list (the corpus,
/// `.mtx` fixtures, or both).
pub fn run_cases(cases: &[CorpusCase], options: &HarnessOptions) -> ConformanceReport {
    let mut report = ConformanceReport::default();
    for case in cases {
        let outcome = run_case(case, options);
        report.cases += 1;
        report.paths += outcome.paths;
        report.violations.extend(outcome.violations);
    }
    report
}
