//! The differential harness: one corpus case through every execution path.
//!
//! Paths compared, per case:
//!
//! | path | oracle vs. |
//! |------|------------|
//! | `reference::spmv` (COO, serial) | — (the oracle) |
//! | `reference::spmv_csr` (CSR, serial) | ULP vs. oracle |
//! | `parallel::spmv_static` (threads ∈ grid) | bit-identical vs. CSR serial |
//! | `parallel::spmv_dynamic` (threads ∈ grid) | bit-identical vs. CSR serial |
//! | `SerpensEngine::run` | ULP vs. oracle |
//! | `SerpensEngine::run_planned` | bit-identical vs. direct |
//! | `ChasonEngine::run` | ULP vs. oracle |
//! | `ChasonEngine::run_planned` (twice) | bit-identical vs. direct, idempotent |
//!
//! plus the metamorphic cycle-report invariants: Chasoň never slower than
//! Serpens (latency, stream cycles, streamed bytes), plan↔execution cycle
//! conservation, and thread-count-independent planning.

use crate::corpus::CorpusCase;
use crate::ulp::{compare, row_scales, UlpTolerance};
use chason_baselines::{parallel, reference};
use chason_core::schedule::SchedulerConfig;
use chason_sim::{AcceleratorConfig, ChasonEngine, Execution, SerpensEngine};
use chason_sparse::{CooMatrix, CsrMatrix};

/// Options controlling a harness run.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Scheduler geometry both engines run under.
    pub sched: SchedulerConfig,
    /// Numeric tolerance for engine-vs-reference comparisons.
    pub tol: UlpTolerance,
    /// Thread counts exercised by the parallel CPU kernels and the
    /// parallel window planner.
    pub thread_counts: Vec<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            sched: SchedulerConfig::paper(),
            tol: UlpTolerance::default(),
            thread_counts: vec![1, 2, 5],
        }
    }
}

/// One oracle violation found by the harness.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Corpus case the violation occurred on.
    pub case: String,
    /// Oracle kind (`"numeric"`, `"metamorphic"`, or `"execution"`).
    pub oracle: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.oracle, self.case, self.detail)
    }
}

/// The result of one case: the engine executions (for golden traces) and
/// every violation found.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case name.
    pub name: String,
    /// Execution paths compared.
    pub paths: usize,
    /// Chasoň execution (when it ran).
    pub chason: Option<Execution>,
    /// Serpens execution (when it ran).
    pub serpens: Option<Execution>,
    /// Violations found across all oracles.
    pub violations: Vec<Violation>,
}

/// The deterministic probe vector fed to every path: signed, irrational
/// spacing, no zeros — exercises cancellation without being adversarial.
pub fn probe_vector(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let v = ((i as f32) * 0.37).sin() * 4.0;
            if v == 0.0 {
                0.5
            } else {
                v
            }
        })
        .collect()
}

fn push(violations: &mut Vec<Violation>, case: &str, oracle: &'static str, detail: String) {
    violations.push(Violation {
        case: case.to_string(),
        oracle,
        detail,
    });
}

/// Runs one corpus case through every execution path and every oracle.
pub fn run_case(case: &CorpusCase, options: &HarnessOptions) -> CaseOutcome {
    let m = &case.matrix;
    let name = &case.name;
    let x = probe_vector(m.cols());
    let mut violations = Vec::new();
    let mut paths = 1usize; // the COO reference itself

    // --- CPU paths -------------------------------------------------------
    let oracle = reference::spmv(m, &x);
    let scales = row_scales(m, &x);
    let csr = CsrMatrix::from(m);
    let csr_serial = reference::spmv_csr(&csr, &x);
    paths += 1;
    for (i, w, g) in compare(&oracle, &csr_serial, &scales, &options.tol) {
        push(
            &mut violations,
            name,
            "numeric",
            format!("CSR serial row {i}: reference {w:e} vs {g:e}"),
        );
    }
    for &threads in &options.thread_counts {
        let st = parallel::spmv_static(&csr, &x, threads);
        let dy = parallel::spmv_dynamic(&csr, &x, threads, 7);
        paths += 2;
        if st != csr_serial {
            push(
                &mut violations,
                name,
                "numeric",
                format!("spmv_static({threads}) is not bit-identical to the serial CSR kernel"),
            );
        }
        if dy != csr_serial {
            push(
                &mut violations,
                name,
                "numeric",
                format!("spmv_dynamic({threads}) is not bit-identical to the serial CSR kernel"),
            );
        }
    }

    // --- Engine paths ----------------------------------------------------
    let chason_engine = ChasonEngine::new(AcceleratorConfig {
        sched: options.sched,
        ..AcceleratorConfig::chason()
    });
    let serpens_engine = SerpensEngine::new(AcceleratorConfig {
        sched: options.sched,
        ..AcceleratorConfig::serpens()
    });

    let chason = run_engine_paths(
        name,
        "chason",
        &chason_engine,
        m,
        &x,
        &oracle,
        &scales,
        options,
        &mut paths,
        &mut violations,
    );
    let serpens = run_engine_paths(
        name,
        "serpens",
        &serpens_engine,
        m,
        &x,
        &oracle,
        &scales,
        options,
        &mut paths,
        &mut violations,
    );

    // --- Cross-engine metamorphic invariants (§4/Fig. 5) -----------------
    if let (Some(ce), Some(se)) = (&chason, &serpens) {
        if ce.latency_seconds() > se.latency_seconds() {
            push(
                &mut violations,
                name,
                "metamorphic",
                format!(
                    "Chasoň latency {:.3e}s exceeds Serpens {:.3e}s",
                    ce.latency_seconds(),
                    se.latency_seconds()
                ),
            );
        }
        if ce.cycles.stream > se.cycles.stream {
            push(
                &mut violations,
                name,
                "metamorphic",
                format!(
                    "Chasoň stream cycles {} exceed Serpens {}",
                    ce.cycles.stream, se.cycles.stream
                ),
            );
        }
        if ce.bytes_streamed > se.bytes_streamed {
            push(
                &mut violations,
                name,
                "metamorphic",
                format!(
                    "Chasoň streams {} bytes, more than Serpens' {}",
                    ce.bytes_streamed, se.bytes_streamed
                ),
            );
        }
    }

    CaseOutcome {
        name: name.clone(),
        paths,
        chason,
        serpens,
        violations,
    }
}

/// Trait object over the two engine families for the per-engine paths.
trait EnginePaths {
    fn stream_ii(&self) -> f64;
    fn run(&self, m: &CooMatrix, x: &[f32]) -> Result<Execution, chason_sim::SimError>;
    fn plan_threads(
        &self,
        m: &CooMatrix,
        threads: usize,
    ) -> Result<chason_core::plan::SpmvPlan, chason_sim::SimError>;
    fn run_planned(
        &self,
        plan: &chason_core::plan::SpmvPlan,
        x: &[f32],
    ) -> Result<Execution, chason_sim::SimError>;
}

impl EnginePaths for ChasonEngine {
    fn stream_ii(&self) -> f64 {
        self.config().stream_ii
    }
    fn run(&self, m: &CooMatrix, x: &[f32]) -> Result<Execution, chason_sim::SimError> {
        ChasonEngine::run(self, m, x)
    }
    fn plan_threads(
        &self,
        m: &CooMatrix,
        threads: usize,
    ) -> Result<chason_core::plan::SpmvPlan, chason_sim::SimError> {
        self.plan_with_threads(m, threads)
    }
    fn run_planned(
        &self,
        plan: &chason_core::plan::SpmvPlan,
        x: &[f32],
    ) -> Result<Execution, chason_sim::SimError> {
        ChasonEngine::run_planned(self, plan, x)
    }
}

impl EnginePaths for SerpensEngine {
    fn stream_ii(&self) -> f64 {
        self.config().stream_ii
    }
    fn run(&self, m: &CooMatrix, x: &[f32]) -> Result<Execution, chason_sim::SimError> {
        SerpensEngine::run(self, m, x)
    }
    fn plan_threads(
        &self,
        m: &CooMatrix,
        threads: usize,
    ) -> Result<chason_core::plan::SpmvPlan, chason_sim::SimError> {
        self.plan_with_threads(m, threads)
    }
    fn run_planned(
        &self,
        plan: &chason_core::plan::SpmvPlan,
        x: &[f32],
    ) -> Result<Execution, chason_sim::SimError> {
        SerpensEngine::run_planned(self, plan, x)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_engine_paths(
    case: &str,
    engine_name: &str,
    engine: &dyn EnginePaths,
    m: &CooMatrix,
    x: &[f32],
    oracle: &[f32],
    scales: &[f32],
    options: &HarnessOptions,
    paths: &mut usize,
    violations: &mut Vec<Violation>,
) -> Option<Execution> {
    // Direct execution + numeric oracle.
    *paths += 1;
    let direct = match engine.run(m, x) {
        Ok(e) => e,
        Err(e) => {
            push(
                violations,
                case,
                "execution",
                format!("{engine_name} direct run failed: {e}"),
            );
            return None;
        }
    };
    for (i, w, g) in compare(oracle, &direct.y, scales, &options.tol) {
        push(
            violations,
            case,
            "numeric",
            format!("{engine_name} row {i}: reference {w:e} vs {g:e}"),
        );
    }

    // Planning: serial is the baseline; every thread count must agree.
    let plan = match engine.plan_threads(m, 1) {
        Ok(p) => p,
        Err(e) => {
            push(
                violations,
                case,
                "execution",
                format!("{engine_name} planning failed: {e}"),
            );
            return Some(direct);
        }
    };
    for &threads in &options.thread_counts {
        if threads <= 1 {
            continue;
        }
        match engine.plan_threads(m, threads) {
            Ok(p) if p == plan => {}
            Ok(_) => push(
                violations,
                case,
                "metamorphic",
                format!("{engine_name} plan differs between 1 and {threads} planning threads"),
            ),
            Err(e) => push(
                violations,
                case,
                "execution",
                format!("{engine_name} planning with {threads} threads failed: {e}"),
            ),
        }
    }

    // Plan ↔ execution cycle conservation.
    if direct.stalls != plan.stalls() {
        push(
            violations,
            case,
            "metamorphic",
            format!(
                "{engine_name} executed {} stalls but the plan schedules {}",
                direct.stalls,
                plan.stalls()
            ),
        );
    }
    if direct.windows != plan.window_count() {
        push(
            violations,
            case,
            "metamorphic",
            format!(
                "{engine_name} executed {} windows but the plan holds {}",
                direct.windows,
                plan.window_count()
            ),
        );
    }
    if direct.mac_ops as usize != m.nnz() {
        push(
            violations,
            case,
            "metamorphic",
            format!(
                "{engine_name} performed {} MACs for {} non-zeros",
                direct.mac_ops,
                m.nnz()
            ),
        );
    }
    let ii = engine.stream_ii();
    let expected_stream: u64 = plan
        .passes
        .iter()
        .flat_map(|p| p.windows.iter())
        .map(|w| (w.stream_cycles as f64 * ii).ceil() as u64)
        .sum();
    if direct.cycles.stream != expected_stream {
        push(
            violations,
            case,
            "metamorphic",
            format!(
                "{engine_name} stream cycles {} != Σ ceil(window · II) = {expected_stream}",
                direct.cycles.stream
            ),
        );
    }

    // Planned replay: bit-identical to direct, and idempotent.
    *paths += 1;
    match (engine.run_planned(&plan, x), engine.run_planned(&plan, x)) {
        (Ok(first), Ok(second)) => {
            if first != direct {
                push(
                    violations,
                    case,
                    "metamorphic",
                    format!("{engine_name} planned replay diverges from direct execution"),
                );
            }
            if first != second {
                push(
                    violations,
                    case,
                    "metamorphic",
                    format!("{engine_name} planned replay is not idempotent"),
                );
            }
        }
        (Err(e), _) | (_, Err(e)) => push(
            violations,
            case,
            "execution",
            format!("{engine_name} planned replay failed: {e}"),
        ),
    }

    Some(direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{corpus, CorpusSize};

    #[test]
    fn probe_vector_is_deterministic_and_zero_free() {
        let a = probe_vector(64);
        assert_eq!(a, probe_vector(64));
        assert!(a.iter().all(|&v| v != 0.0));
    }

    /// A single small case runs clean end to end under a toy geometry.
    #[test]
    fn one_case_passes_all_oracles() {
        let case = &corpus(CorpusSize::Small)[0];
        let options = HarnessOptions {
            sched: chason_core::schedule::SchedulerConfig::toy(4, 4, 6),
            ..HarnessOptions::default()
        };
        let outcome = run_case(case, &options);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.paths >= 10);
        assert!(outcome.chason.is_some() && outcome.serpens.is_some());
    }
}
