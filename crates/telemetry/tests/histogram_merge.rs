//! Property tests for concurrent histogram shard merging: any partition of
//! a sample stream across per-thread shards, merged in any order, is
//! indistinguishable from recording every sample into one histogram on a
//! single thread.

#![cfg(not(feature = "telemetry-off"))]

use chason_telemetry::metrics::{Histogram, HistogramShard, HISTOGRAM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

fn merged_equals(direct: &Histogram, merged: &Histogram) {
    assert_eq!(merged.count(), direct.count());
    assert_eq!(merged.sum(), direct.sum());
    assert_eq!(merged.max(), direct.max());
    assert_eq!(merged.bucket_counts(), direct.bucket_counts());
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(merged.quantile(q), direct.quantile(q));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sharded recording ≡ single-threaded recording, for every partition
    /// of the samples and every merge order.
    #[test]
    fn sharded_recording_matches_single_threaded(
        samples in vec(any::<u64>(), 0..400),
        assignment in vec(0usize..7, 0..400),
        merge_order_seed in any::<u64>(),
    ) {
        let shards_n = 7;
        let mut shards = vec![HistogramShard::new(); shards_n];
        let direct = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            let shard = assignment.get(i).copied().unwrap_or(0) % shards_n;
            shards[shard].record(v);
            direct.record(v);
        }
        prop_assert_eq!(
            shards.iter().map(HistogramShard::count).sum::<u64>(),
            samples.len() as u64
        );

        // Merge in a seed-derived order: order independence is part of the
        // law.
        let mut order: Vec<usize> = (0..shards_n).collect();
        let mut state = merge_order_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let merged = Histogram::new();
        for &s in &order {
            shards[s].merge_into(&merged);
        }
        merged_equals(&direct, &merged);

        // Folding shards into one another first (absorb), then merging,
        // changes nothing either.
        let mut folded = HistogramShard::new();
        for shard in &shards {
            folded.absorb(shard);
        }
        let via_fold = Histogram::new();
        folded.merge_into(&via_fold);
        merged_equals(&direct, &via_fold);
    }

    /// Real threads, real interleavings: workers record into private
    /// shards and merge into one shared histogram concurrently.
    #[test]
    fn concurrent_shard_merges_lose_nothing(
        per_thread in vec(vec(any::<u64>(), 0..120), 1..5),
    ) {
        let shared = Arc::new(Histogram::new());
        let direct = Histogram::new();
        for samples in &per_thread {
            for &v in samples {
                direct.record(v);
            }
        }
        let handles: Vec<_> = per_thread
            .iter()
            .map(|samples| {
                let shared = Arc::clone(&shared);
                let samples = samples.clone();
                std::thread::spawn(move || {
                    let mut shard = HistogramShard::new();
                    for v in samples {
                        shard.record(v);
                    }
                    shard.merge_into(&shared);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker threads do not panic");
        }
        merged_equals(&direct, &shared);
    }

    /// Quantile estimates never under-report: the estimate is an upper
    /// bound of the true quantile and never exceeds the true maximum.
    #[test]
    fn quantile_estimates_bound_the_truth(
        mut samples in vec(any::<u64>(), 1..300),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let truth = samples[rank - 1];
        let estimate = h.quantile(q);
        prop_assert!(estimate >= truth, "estimate {estimate} < true quantile {truth}");
        prop_assert!(estimate <= *samples.last().expect("non-empty"));
    }
}

#[test]
fn bucket_count_is_stable() {
    // The exposition format and the shard layout both bake this in; a
    // change must be deliberate.
    assert_eq!(HISTOGRAM_BUCKETS, 64);
}
