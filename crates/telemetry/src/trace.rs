//! Span tracing: a bounded flight recorder and lossless JSONL export.
//!
//! A [`SpanEvent`] is a named `[start, end]` interval with typed
//! attributes. Events land in a [`FlightRecorder`] — a fixed-capacity ring
//! that keeps the newest spans and counts what it dropped — and export as
//! one JSON object per line ([`to_jsonl`]), a format [`parse_jsonl`] reads
//! back *losslessly*: integers round-trip exactly and `f64` attributes are
//! written with Rust's shortest round-trip formatting.
//!
//! Timestamps come from a [`Clock`]: [`Clock::wall`] for live services
//! (microseconds since clock creation) and [`Clock::fixed`] — a
//! deterministic tick counter — for golden tests, where byte-identical
//! traces across runs, machines, and thread counts are required.

use crate::lock_unpoisoned;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A typed span-attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only negatives need this arm).
    I64(i64),
    /// A finite double. Non-finite values are serialized as strings since
    /// JSON has no representation for them.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

/// One completed span: a named interval with ordered attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`component.operation`, see DESIGN.md §10).
    pub name: String,
    /// Start timestamp in the recording clock's unit.
    pub start: u64,
    /// End timestamp in the recording clock's unit.
    pub end: u64,
    /// Attributes in insertion order (preserved by the JSONL codec).
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanEvent {
    /// Creates a span with no attributes.
    pub fn new(name: impl Into<String>, start: u64, end: u64) -> Self {
        SpanEvent {
            name: name.into(),
            start,
            end,
            attrs: Vec::new(),
        }
    }

    /// Appends an attribute, builder-style.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

/// A timestamp source for spans.
#[derive(Debug)]
pub enum Clock {
    /// Microseconds elapsed since the clock was created.
    Wall(Instant),
    /// A deterministic counter: every [`Clock::now`] call returns the next
    /// integer, starting at 0. Traces recorded under a fixed clock are
    /// byte-identical across runs and machines.
    Fixed(AtomicU64),
}

impl Clock {
    /// A wall clock starting now.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A deterministic tick counter starting at 0.
    pub fn fixed() -> Self {
        Clock::Fixed(AtomicU64::new(0))
    }

    /// The current timestamp (micros for wall clocks, the next tick for
    /// fixed clocks).
    pub fn now(&self) -> u64 {
        match self {
            Clock::Wall(start) => start.elapsed().as_micros() as u64,
            Clock::Fixed(tick) => tick.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// `true` for the deterministic source.
    pub fn is_fixed(&self) -> bool {
        matches!(self, Clock::Fixed(_))
    }
}

#[derive(Debug, Default)]
struct Flight {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

/// A bounded ring buffer of the most recent spans.
///
/// When full, recording a span evicts the oldest and bumps the dropped
/// counter — a crashed or slow consumer can never exhaust memory, and the
/// loss is observable.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Flight>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Flight::default()),
        }
    }

    /// Maximum spans kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a completed span. A no-op under `telemetry-off`.
    pub fn record(&self, event: SpanEvent) {
        if !crate::enabled() {
            return;
        }
        let mut flight = lock_unpoisoned(&self.inner);
        if flight.events.len() == self.capacity {
            flight.events.pop_front();
            flight.dropped += 1;
        }
        flight.events.push_back(event);
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).events.len()
    }

    /// `true` when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        lock_unpoisoned(&self.inner).dropped
    }

    /// Clones the held spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        lock_unpoisoned(&self.inner)
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the held spans, oldest first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        lock_unpoisoned(&self.inner).events.drain(..).collect()
    }

    /// Renders the held spans as JSONL (see [`to_jsonl`]).
    pub fn export_jsonl(&self) -> String {
        to_jsonl(&self.snapshot())
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) if v.is_finite() => {
            // Rust's Display for f64 is the shortest string that parses
            // back to the same bits — lossless by construction. Integral
            // doubles get an explicit ".0" so the parser keeps the type.
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            out.push_str(&s);
        }
        AttrValue::F64(v) => {
            // JSON has no NaN/Infinity; a quoted string keeps the line
            // parseable (the value degrades to Str on the way back).
            let _ = write!(out, "\"{v}\"");
        }
        AttrValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// Renders spans as JSONL: one
/// `{"name":…,"start":…,"end":…,"attrs":{…}}` object per line, fields in
/// that fixed order, attributes in recording order.
pub fn to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &event.name);
        let _ = write!(
            out,
            "\",\"start\":{},\"end\":{},\"attrs\":{{",
            event.start, event.end
        );
        for (i, (key, value)) in event.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, key);
            out.push_str("\":");
            write_attr_value(&mut out, value);
        }
        out.push_str("}}\n");
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("byte {}: {what}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected {:?}", c as char))
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(())
        } else {
            self.fail(&format!("expected {s:?}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.fail("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return self.fail(&format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<AttrValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return self.fail("expected a number");
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(AttrValue::F64)
                .map_err(|e| format!("{text:?}: {e}"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| AttrValue::I64(-(v as i64)))
                .map_err(|e| format!("{text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(AttrValue::U64)
                .map_err(|e| format!("{text:?}: {e}"))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        match self.parse_number()? {
            AttrValue::U64(v) => Ok(v),
            other => self.fail(&format!("expected unsigned integer, got {other:?}")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parses one [`to_jsonl`] line back into a [`SpanEvent`].
///
/// # Errors
///
/// Returns a message with the byte offset of the first deviation from the
/// emitted schema.
pub fn parse_span(line: &str) -> Result<SpanEvent, String> {
    let mut p = Parser::new(line.trim_end());
    p.expect_str("{\"name\":")?;
    let name = p.parse_string()?;
    p.expect_str(",\"start\":")?;
    let start = p.parse_u64()?;
    p.expect_str(",\"end\":")?;
    let end = p.parse_u64()?;
    p.expect_str(",\"attrs\":{")?;
    let mut attrs = Vec::new();
    if p.peek() != Some(b'}') {
        loop {
            let key = p.parse_string()?;
            p.expect(b':')?;
            let value = match p.peek() {
                Some(b'"') => AttrValue::Str(p.parse_string()?),
                _ => p.parse_number()?,
            };
            attrs.push((key, value));
            match p.peek() {
                Some(b',') => p.pos += 1,
                _ => break,
            }
        }
    }
    p.expect_str("}}")?;
    if !p.at_end() {
        return p.fail("trailing bytes after span object");
    }
    Ok(SpanEvent {
        name,
        start,
        end,
        attrs,
    })
}

/// Parses a whole [`to_jsonl`] document (blank lines are skipped).
///
/// # Errors
///
/// Returns the first failing line's number and parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_span(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clock_is_deterministic() {
        let clock = Clock::fixed();
        assert!(clock.is_fixed());
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 1);
        assert_eq!(clock.now(), 2);
        assert!(!Clock::wall().is_fixed());
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn recorder_keeps_the_newest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(SpanEvent::new(format!("s{i}"), i, i + 1));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let names: Vec<_> = rec.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["s2", "s3", "s4"]);
        let drained = rec.drain();
        assert_eq!(drained.len(), 3);
        assert!(rec.is_empty());
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn disabled_build_records_no_spans() {
        let rec = FlightRecorder::new(3);
        rec.record(SpanEvent::new("s", 0, 1));
        assert!(rec.is_empty());
    }

    #[test]
    fn jsonl_round_trips_every_attribute_type() {
        let events = vec![
            SpanEvent::new("cg.iteration", 3, 9)
                .attr("iteration", 4u64)
                .attr("residual", 0.001953125f64)
                .attr("delta", -7i64)
                .attr("engine", "chasoň"),
            SpanEvent::new("weird \"name\"\n", 0, 0).attr("k\\ey", "\tv"),
            SpanEvent::new("empty", 1, 2),
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, events);
        // Re-rendering is byte-identical: the codec is a bijection on its
        // own output.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn f64_attributes_are_bit_exact() {
        let tricky = [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 12345.0];
        for v in tricky {
            let event = SpanEvent::new("f", 0, 1).attr("v", v);
            let parsed = parse_jsonl(&to_jsonl(&[event])).expect("parse");
            match parsed[0].attrs[0].1 {
                AttrValue::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "{v}"),
                ref other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_positions() {
        assert!(parse_jsonl("{\"nope\":1}").is_err());
        assert!(
            parse_jsonl("{\"name\":\"x\",\"start\":1,\"end\":2,\"attrs\":{}} extra")
                .unwrap_err()
                .contains("line 1")
        );
        assert!(parse_span("{\"name\":\"x\",\"start\":-1,\"end\":2,\"attrs\":{}}").is_err());
    }
}
